//! Plain-text rendering of the paper's tables.

use std::fmt::Write as _;

use crate::charmodel::CharacterizedFront;
use crate::system_opt::SystemSolution;

/// Renders Table 1 (performance and variation values of selected Pareto
/// designs): Kvco, ∆Kvco, Jvco, ∆Jvco, Ivco, ∆Ivco.
pub fn format_table1(front: &CharacterizedFront) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} | {:>10} {:>8} | {:>9} {:>8} | {:>9} {:>8}",
        "Dsg", "Kvco(MHz/V)", "dKvco%", "Jvco(ps)", "dJvco%", "Ivco(mA)", "dIvco%"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for (i, p) in front.points.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>4} | {:>10.0} {:>8.2} | {:>9.3} {:>8.1} | {:>9.2} {:>8.1}",
            i,
            p.perf.kvco / 1e6,
            p.delta.kvco,
            p.perf.jvco * 1e12,
            p.delta.jvco,
            p.perf.ivco * 1e3,
            p.delta.ivco,
        );
    }
    out
}

/// Renders Table 2 (PLL system-level solution samples) with the same
/// columns as the paper: Kv/Iv (nom, min, max), C1, C2, R1, lock time,
/// jitter sum (nom, min, max), current (nom, min, max).
pub fn format_table2(solutions: &[SystemSolution]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>8} | {:>6} {:>6} {:>6} | {:>7} {:>7} {:>7} | {:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} | spec",
        "Kv", "Kvmin", "Kvmax", "Iv", "Ivmin", "Ivmax", "C1(pF)", "C2(pF)", "R1(k)",
        "Lt(us)", "Jit", "Jitmn", "Jitmx", "Curr", "Currmn", "Currmx"
    );
    let _ = writeln!(out, "{}", "-".repeat(132));
    for s in solutions {
        let _ = writeln!(
            out,
            "{:>8.0} {:>8.0} {:>8.0} | {:>6.2} {:>6.2} {:>6.2} | {:>7.2} {:>7.2} {:>7.2} | {:>6.2} | {:>6.2} {:>6.2} {:>6.2} | {:>6.2} {:>6.2} {:>6.2} | {}",
            s.kvco / 1e6,
            s.kvco_min / 1e6,
            s.kvco_max / 1e6,
            s.ivco * 1e3,
            s.ivco_min * 1e3,
            s.ivco_max * 1e3,
            s.c1 * 1e12,
            s.c2 * 1e12,
            s.r1 / 1e3,
            s.lock_time * 1e6,
            s.jitter * 1e12,
            s.jitter_min * 1e12,
            s.jitter_max * 1e12,
            s.current * 1e3,
            s.current_min * 1e3,
            s.current_max * 1e3,
            if s.meets_spec { "PASS" } else { "----" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charmodel::{CharPoint, VcoDeltas};
    use crate::vco_eval::VcoPerf;
    use netlist::topology::VcoSizing;

    #[test]
    fn table1_contains_all_rows_and_units() {
        let front = CharacterizedFront {
            points: vec![CharPoint {
                sizing: VcoSizing::nominal(),
                perf: VcoPerf {
                    kvco: 997e6,
                    jvco: 0.13e-12,
                    ivco: 8.62e-3,
                    fmin: 0.5e9,
                    fmax: 1.4e9,
                },
                delta: VcoDeltas {
                    kvco: 0.50,
                    ivco: 2.9,
                    jvco: 22.0,
                    fmin: 1.0,
                    fmax: 1.1,
                },
                mc_accepted: 100,
                mc_failed: 0,
            }],
        };
        let s = format_table1(&front);
        assert!(s.contains("997"), "{s}");
        assert!(s.contains("22.0"), "{s}");
        assert!(s.contains("8.62"), "{s}");
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn table2_marks_spec_compliance() {
        let sol = SystemSolution {
            kvco: 1540e6,
            kvco_min: 1536e6,
            kvco_max: 1545e6,
            ivco: 4.0e-3,
            ivco_min: 3.9e-3,
            ivco_max: 4.1e-3,
            c1: 5e-12,
            c2: 0.5e-12,
            r1: 20e3,
            lock_time: 0.9e-6,
            lock_time_worst: 0.95e-6,
            jitter: 4.30e-12,
            jitter_min: 4.23e-12,
            jitter_max: 4.38e-12,
            current: 14.0e-3,
            current_min: 13.9e-3,
            current_max: 14.1e-3,
            meets_spec: true,
        };
        let s = format_table2(&[sol]);
        assert!(s.contains("PASS"), "{s}");
        assert!(s.contains("1540"), "{s}");
        let mut failing = sol;
        failing.meets_spec = false;
        assert!(format_table2(&[failing]).contains("----"));
    }
}
