//! Stage checkpointing: persisting each stage's artifact to a run
//! directory so an interrupted flow resumes instead of recomputing.
//!
//! A paper-scale run spends hours in stage 1 (3 000 transistor-level
//! evaluations) and stage 2 (100-sample Monte Carlo per Pareto point);
//! a crash during stage 4 or 5 must not discard that work. The flow
//! writes one JSON artifact per completed stage into a [`RunDir`]:
//!
//! | file                       | contents                                   |
//! |----------------------------|--------------------------------------------|
//! | `manifest.json`            | config digest guarding artifact reuse      |
//! | `stage1_front.json`        | thinned circuit-level Pareto front         |
//! | `stage2_characterized.json`| Monte-Carlo-characterised front            |
//! | `stage4_system.json`       | system-level front and Table-2 rows        |
//! | `stage5_selected.json`     | selected design, sizing and verification   |
//! | `events.json`              | the run's [`FlowEvents`](crate::events) log|
//!
//! Stage 3 (the table model) is rebuilt from the stage-2 artifact on
//! every run — it is cheap and its internals are not serialisable.
//!
//! Writes are atomic (temp file + rename), so a kill mid-write leaves
//! the previous artifact intact rather than a truncated file. A
//! manifest digest of the flow configuration guards against resuming
//! with artifacts produced under different budgets.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use moea::problem::Individual;
use netlist::topology::VcoSizing;
use serde::{Deserialize, Serialize};

use crate::error::FlowError;
use crate::system_opt::SystemSolution;
use crate::verify::VerificationReport;

/// Stage-1 artifact file name.
pub const STAGE1_FRONT: &str = "stage1_front.json";
/// Stage-2 artifact file name.
pub const STAGE2_CHARACTERIZED: &str = "stage2_characterized.json";
/// Stage-4 artifact file name.
pub const STAGE4_SYSTEM: &str = "stage4_system.json";
/// Stage-5 artifact file name.
pub const STAGE5_SELECTED: &str = "stage5_selected.json";
/// Event-log file name.
pub const EVENTS_FILE: &str = "events.json";
/// Manifest file name.
pub const MANIFEST_FILE: &str = "manifest.json";
/// Telemetry trace file name (JSON lines, one span/event per line;
/// written only when the run executes with telemetry enabled).
pub const TRACE_FILE: &str = "trace.jsonl";
/// Telemetry metrics/profile file name (written only when the run
/// executes with telemetry enabled).
pub const METRICS_FILE: &str = "metrics.json";

/// Stage-1 artifact: the thinned circuit-level Pareto front and the
/// evaluation budget it cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage1Artifact {
    /// Thinned feasible Pareto front.
    pub front: Vec<Individual>,
    /// Transistor-level evaluations spent producing it.
    pub evaluations: usize,
}

/// Stage-4 artifact: the system-level front, its Table-2 rows and the
/// evaluation budget it cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage4Artifact {
    /// System-level non-dominated front.
    pub front: Vec<Individual>,
    /// Corner-aware Table-2 rows of the front.
    pub rows: Vec<SystemSolution>,
    /// Model-based evaluations spent producing it.
    pub evaluations: usize,
}

/// Stage-5 artifact: the selected design and its bottom-up verification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage5Artifact {
    /// Decision vector of the selected system solution.
    pub x: Vec<f64>,
    /// The selected Table-2 row.
    pub solution: SystemSolution,
    /// Transistor sizing recovered by spec propagation.
    pub sizing: VcoSizing,
    /// Bottom-up Monte-Carlo verification outcome.
    pub verification: VerificationReport,
}

/// The run manifest: identifies which configuration produced the
/// directory's artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// FNV-1a digest of the flow configuration's debug representation.
    pub config_digest: u64,
    /// Artifact format version.
    pub version: u32,
}

/// Current artifact format version.
pub const ARTIFACT_VERSION: u32 = 1;

/// Stable FNV-1a digest of a configuration description, used to refuse
/// resuming from artifacts produced under a different configuration.
pub fn config_digest(description: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in description.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Distinguishes quarantine file names when one run trips over several
/// corrupt artifacts (or several processes share a directory).
static QUARANTINE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Stage artifact and event-log file names, in stage order — everything
/// a conservative reset must sweep aside when the manifest itself is
/// unreadable.
pub const ARTIFACT_FILES: [&str; 5] = [
    STAGE1_FRONT,
    STAGE2_CHARACTERIZED,
    STAGE4_SYSTEM,
    STAGE5_SELECTED,
    EVENTS_FILE,
];

/// Outcome of a lenient artifact load ([`RunDir::load_or_quarantine`]).
#[derive(Debug)]
pub enum LoadOutcome<T> {
    /// The artifact parsed cleanly.
    Loaded(T),
    /// No artifact file exists — the stage has not completed yet.
    Absent,
    /// The artifact was present but unreadable, truncated or garbage.
    /// It has been renamed aside (or, failing that, deleted) so the
    /// stage can be recomputed and its checkpoint rewritten cleanly.
    Quarantined {
        /// Where the corrupt bytes went, when the rename succeeded —
        /// kept for post-mortem, never re-read by the flow.
        quarantined_to: Option<PathBuf>,
        /// The read or parse error text.
        reason: String,
    },
}

/// A checkpoint run directory.
#[derive(Debug, Clone)]
pub struct RunDir {
    root: PathBuf,
}

impl RunDir {
    /// Opens (creating if necessary) a run directory.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] when the directory cannot be
    /// created.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, FlowError> {
        let root = path.as_ref().to_path_buf();
        fs::create_dir_all(&root)
            .map_err(|e| FlowError::checkpoint(root.display().to_string(), e.to_string()))?;
        Ok(RunDir { root })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    fn file(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Whether an artifact file exists.
    pub fn has(&self, name: &str) -> bool {
        self.file(name).is_file()
    }

    /// Atomically writes `value` as pretty JSON to `name`: the payload
    /// lands in a temp file first and is renamed into place, so a kill
    /// mid-write never leaves a truncated artifact.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] on I/O failure.
    pub fn save<T: Serialize>(&self, name: &str, value: &T) -> Result<(), FlowError> {
        let path = self.file(name);
        let tmp = self.file(&format!("{name}.tmp"));
        let text = serde_json::to_string_pretty(value)
            .map_err(|e| FlowError::checkpoint(path.display().to_string(), e.to_string()))?;
        fs::write(&tmp, text)
            .map_err(|e| FlowError::checkpoint(tmp.display().to_string(), e.to_string()))?;
        fs::rename(&tmp, &path)
            .map_err(|e| FlowError::checkpoint(path.display().to_string(), e.to_string()))?;
        Ok(())
    }

    /// Loads an artifact, returning `Ok(None)` when the file does not
    /// exist (the stage has not completed yet).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] when the file exists but cannot
    /// be read or parsed — a present-but-corrupt artifact is reported,
    /// never silently recomputed.
    pub fn load<T: Deserialize>(&self, name: &str) -> Result<Option<T>, FlowError> {
        let path = self.file(name);
        if !path.is_file() {
            return Ok(None);
        }
        let text = fs::read_to_string(&path)
            .map_err(|e| FlowError::checkpoint(path.display().to_string(), e.to_string()))?;
        let value = serde_json::from_str(&text)
            .map_err(|e| FlowError::checkpoint(path.display().to_string(), e.to_string()))?;
        Ok(Some(value))
    }

    /// Moves a (presumed corrupt) artifact aside so the stage that
    /// produced it can be recomputed and the checkpoint rewritten. The
    /// bytes are preserved under `<name>.corrupt-<pid>-<n>` for
    /// post-mortem; if even the rename fails the file is deleted, and
    /// if *that* fails there is nothing more a recovery path can do.
    /// Returns the quarantine path when the rename succeeded.
    pub fn quarantine(&self, name: &str) -> Option<PathBuf> {
        let path = self.file(name);
        if !path.is_file() {
            return None;
        }
        let aside = self.file(&format!(
            "{name}.corrupt-{}-{}",
            std::process::id(),
            QUARANTINE_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        if fs::rename(&path, &aside).is_ok() {
            Some(aside)
        } else {
            let _ = fs::remove_file(&path);
            None
        }
    }

    /// Loads an artifact leniently: a present-but-corrupt file is
    /// quarantined (see [`RunDir::quarantine`]) and reported as
    /// [`LoadOutcome::Quarantined`] rather than an error, so resume can
    /// degrade to recomputing the stage instead of refusing to run.
    pub fn load_or_quarantine<T: Deserialize>(&self, name: &str) -> LoadOutcome<T> {
        let path = self.file(name);
        if !path.is_file() {
            return LoadOutcome::Absent;
        }
        let parsed = fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()));
        match parsed {
            Ok(value) => LoadOutcome::Loaded(value),
            Err(reason) => LoadOutcome::Quarantined {
                quarantined_to: self.quarantine(name),
                reason,
            },
        }
    }

    /// Validates (or creates) the run manifest for a configuration
    /// digest. A mismatching digest means the directory's artifacts were
    /// produced under different budgets and must not be mixed into this
    /// run.
    ///
    /// An *unreadable* manifest is handled conservatively: without a
    /// trustworthy digest none of the directory's artifacts can be
    /// attributed to any configuration, so every artifact (and the
    /// event log) is quarantined alongside the manifest and the run
    /// starts clean. The quarantined manifest path is returned so the
    /// caller can record provenance.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] on digest mismatch, version
    /// mismatch, or I/O failure.
    pub fn ensure_manifest(&self, digest: u64) -> Result<Option<PathBuf>, FlowError> {
        let existing = match self.load_or_quarantine::<RunManifest>(MANIFEST_FILE) {
            LoadOutcome::Loaded(m) => Some(m),
            LoadOutcome::Absent => None,
            LoadOutcome::Quarantined { quarantined_to, .. } => {
                for name in ARTIFACT_FILES {
                    self.quarantine(name);
                }
                self.save(
                    MANIFEST_FILE,
                    &RunManifest {
                        config_digest: digest,
                        version: ARTIFACT_VERSION,
                    },
                )?;
                return Ok(quarantined_to.or_else(|| Some(self.file(MANIFEST_FILE))));
            }
        };
        match existing {
            Some(existing) => {
                if existing.version != ARTIFACT_VERSION {
                    return Err(FlowError::checkpoint(
                        self.file(MANIFEST_FILE).display().to_string(),
                        format!(
                            "artifact version {} does not match supported version {}",
                            existing.version, ARTIFACT_VERSION
                        ),
                    ));
                }
                if existing.config_digest != digest {
                    return Err(FlowError::checkpoint(
                        self.file(MANIFEST_FILE).display().to_string(),
                        "run directory was produced by a different flow configuration; \
                         use a fresh directory or the original configuration",
                    ));
                }
                Ok(None)
            }
            None => {
                self.save(
                    MANIFEST_FILE,
                    &RunManifest {
                        config_digest: digest,
                        version: ARTIFACT_VERSION,
                    },
                )?;
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moea::problem::Evaluation;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hierflow_ckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stage1_artifact_round_trips() {
        let dir = tmp_dir("stage1");
        let run = RunDir::create(&dir).unwrap();
        let artifact = Stage1Artifact {
            front: vec![Individual::new(
                vec![1.0, 2.0],
                Evaluation::feasible(vec![0.5, 0.25]),
            )],
            evaluations: 320,
        };
        run.save(STAGE1_FRONT, &artifact).unwrap();
        assert!(run.has(STAGE1_FRONT));
        let back: Stage1Artifact = run.load(STAGE1_FRONT).unwrap().unwrap();
        assert_eq!(back, artifact);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_artifact_loads_as_none() {
        let dir = tmp_dir("missing");
        let run = RunDir::create(&dir).unwrap();
        let loaded: Option<Stage1Artifact> = run.load(STAGE1_FRONT).unwrap();
        assert!(loaded.is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifact_is_an_error_not_a_recompute() {
        let dir = tmp_dir("corrupt");
        let run = RunDir::create(&dir).unwrap();
        fs::write(dir.join(STAGE1_FRONT), "{ truncated").unwrap();
        let loaded: Result<Option<Stage1Artifact>, _> = run.load(STAGE1_FRONT);
        assert!(matches!(loaded, Err(FlowError::Checkpoint { .. })));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_guards_against_config_drift() {
        let dir = tmp_dir("manifest");
        let run = RunDir::create(&dir).unwrap();
        run.ensure_manifest(42).unwrap();
        // Same digest: fine (idempotent).
        run.ensure_manifest(42).unwrap();
        // Different digest: refused.
        let err = run.ensure_manifest(43).unwrap_err();
        assert!(matches!(err, FlowError::Checkpoint { .. }));
        assert!(err.to_string().contains("different flow configuration"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_quarantine_moves_garbage_aside() {
        let dir = tmp_dir("lenient");
        let run = RunDir::create(&dir).unwrap();
        fs::write(dir.join(STAGE1_FRONT), "{ truncated").unwrap();
        match run.load_or_quarantine::<Stage1Artifact>(STAGE1_FRONT) {
            LoadOutcome::Quarantined {
                quarantined_to,
                reason,
            } => {
                assert!(!reason.is_empty());
                let aside = quarantined_to.expect("rename succeeded");
                assert!(aside.is_file());
                assert!(!dir.join(STAGE1_FRONT).exists());
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // A second load of the same name is now a clean absence.
        assert!(matches!(
            run.load_or_quarantine::<Stage1Artifact>(STAGE1_FRONT),
            LoadOutcome::Absent
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_quarantines_everything_and_starts_clean() {
        let dir = tmp_dir("manifest_corrupt");
        let run = RunDir::create(&dir).unwrap();
        run.ensure_manifest(7).unwrap();
        let artifact = Stage1Artifact {
            front: Vec::new(),
            evaluations: 1,
        };
        run.save(STAGE1_FRONT, &artifact).unwrap();
        fs::write(dir.join(MANIFEST_FILE), "\u{0}not a manifest").unwrap();

        let quarantined = run.ensure_manifest(7).unwrap();
        assert!(quarantined.is_some(), "corruption reported to the caller");
        // The stage artifact was swept aside with the manifest: nothing
        // in the directory can be attributed to a configuration any
        // more, so nothing may be reused.
        assert!(!run.has(STAGE1_FRONT));
        // The fresh manifest is trustworthy and idempotent again.
        run.ensure_manifest(7).unwrap();
        assert!(run.ensure_manifest(8).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_is_stable_and_discriminating() {
        let a = config_digest("FlowConfig { population: 100 }");
        let b = config_digest("FlowConfig { population: 100 }");
        let c = config_digest("FlowConfig { population: 101 }");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
