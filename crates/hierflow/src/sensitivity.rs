//! Sensitivity analysis: finite-difference derivatives of the five VCO
//! performances with respect to the seven designable parameters — the
//! designer-facing companion to the variation model (which parameter
//! moves which performance, and how hard).

use netlist::topology::VcoSizing;
use serde::{Deserialize, Serialize};

use crate::error::FlowError;
use crate::vco_eval::{VcoPerf, VcoTestbench};

/// Sensitivities at one design point: `d perf / d param`, normalised to
/// percent change of performance per percent change of parameter
/// (elasticities), in a 5×7 matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityMatrix {
    /// The design point analysed.
    pub sizing: VcoSizing,
    /// Nominal performance at the point.
    pub nominal: VcoPerf,
    /// `elasticity[perf][param]` — percent per percent; rows in
    /// [`VcoPerf::NAMES`] order, columns in [`VcoSizing::NAMES`] order.
    pub elasticity: Vec<Vec<f64>>,
}

impl SensitivityMatrix {
    /// Renders the matrix as a table.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{:>6}", "");
        for name in VcoSizing::NAMES {
            let _ = write!(out, " {name:>9}");
        }
        let _ = writeln!(out);
        for (row, perf_name) in VcoPerf::NAMES.iter().enumerate() {
            let _ = write!(out, "{perf_name:>6}");
            for col in 0..VcoSizing::DIM {
                let _ = write!(out, " {:>9.3}", self.elasticity[row][col]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// The parameter with the strongest influence (largest absolute
    /// elasticity) on performance index `perf_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `perf_idx >= 5`.
    pub fn dominant_param(&self, perf_idx: usize) -> (&'static str, f64) {
        let row = &self.elasticity[perf_idx];
        let (idx, value) = row
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.abs()
                    .partial_cmp(&b.1.abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("seven parameters");
        (VcoSizing::NAMES[idx], *value)
    }
}

/// Computes the elasticity matrix by central finite differences with a
/// relative step `rel_step` (e.g. 0.05 = ±5 %) on each parameter,
/// clamped to the sizing bounds.
///
/// Cost: `1 + 2×7` transistor-level evaluations.
///
/// # Errors
///
/// Propagates evaluation failures ([`FlowError::Sim`]) — a perturbed
/// design that stops oscillating aborts the analysis.
pub fn sensitivity_matrix(
    testbench: &VcoTestbench,
    sizing: &VcoSizing,
    rel_step: f64,
) -> Result<SensitivityMatrix, FlowError> {
    assert!(
        rel_step > 0.0 && rel_step < 0.5,
        "relative step must be in (0, 0.5)"
    );
    let nominal = testbench.evaluate_sizing(sizing)?;
    let nominal_arr = nominal.to_array();
    let base = sizing.to_array();

    let mut elasticity = vec![vec![0.0; VcoSizing::DIM]; 5];
    for param in 0..VcoSizing::DIM {
        let (lo, hi) = VcoSizing::BOUNDS[param];
        let step = base[param] * rel_step;
        let mut up = base;
        up[param] = (base[param] + step).min(hi);
        let mut down = base;
        down[param] = (base[param] - step).max(lo);
        let span = up[param] - down[param];
        if span <= 0.0 {
            continue;
        }
        let perf_up = testbench.evaluate_sizing(&VcoSizing::from_array(&up))?;
        let perf_down = testbench.evaluate_sizing(&VcoSizing::from_array(&down))?;
        let up_arr = perf_up.to_array();
        let down_arr = perf_down.to_array();
        for metric in 0..5 {
            let d_perf = (up_arr[metric] - down_arr[metric]) / nominal_arr[metric];
            let d_param = span / base[param];
            elasticity[metric][param] = d_perf / d_param;
        }
    }

    Ok(SensitivityMatrix {
        sizing: *sizing,
        nominal,
        elasticity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Expensive (15 transistor-level evaluations) — the physics
    /// assertions the matrix must satisfy.
    #[test]
    #[ignore = "15 transistor-level evaluations; run with --ignored"]
    fn elasticities_have_physical_signs() {
        let tb = VcoTestbench::default();
        let m = sensitivity_matrix(&tb, &VcoSizing::nominal(), 0.08).unwrap();
        // ivco (row 1) rises with the starve widths (columns 2, 3).
        assert!(
            m.elasticity[1][2] > 0.0,
            "ivco vs wsn: {}",
            m.elasticity[1][2]
        );
        assert!(
            m.elasticity[1][3] > 0.0,
            "ivco vs wsp: {}",
            m.elasticity[1][3]
        );
        // fmax (row 4) falls with the inverter widths (more load).
        assert!(
            m.elasticity[4][0] < 0.0,
            "fmax vs wn: {}",
            m.elasticity[4][0]
        );
        // jvco (row 2) falls as inverter width grows (bigger C).
        assert!(
            m.elasticity[2][0] < 0.0,
            "jvco vs wn: {}",
            m.elasticity[2][0]
        );
        let table = m.to_table();
        assert!(table.contains("kvco") && table.contains("w_bias"));
    }

    #[test]
    fn dominant_param_picks_largest_magnitude() {
        let m = SensitivityMatrix {
            sizing: VcoSizing::nominal(),
            nominal: VcoPerf {
                kvco: 1e9,
                jvco: 0.2e-12,
                ivco: 4e-3,
                fmin: 0.5e9,
                fmax: 1.5e9,
            },
            elasticity: vec![
                vec![0.1, -0.9, 0.2, 0.0, 0.0, 0.0, 0.0],
                vec![0.0; 7],
                vec![0.0; 7],
                vec![0.0; 7],
                vec![0.0; 7],
            ],
        };
        let (name, value) = m.dominant_param(0);
        assert_eq!(name, "wp");
        assert_eq!(value, -0.9);
    }

    #[test]
    #[should_panic(expected = "relative step")]
    fn rejects_bad_step() {
        let tb = VcoTestbench::default();
        let _ = sensitivity_matrix(&tb, &VcoSizing::nominal(), 0.9);
    }
}
