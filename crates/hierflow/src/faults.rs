//! Deterministic fault injection for the characterisation stage.
//!
//! A [`FaultInjector`] wraps the [`VcoTestbench`] evaluation inside the
//! Monte-Carlo loop and makes selected `(point, sample)` evaluations
//! fail with a chosen [`FaultKind`] — a singular matrix, solver
//! non-convergence, NaN outputs, or a timeout. Faults are keyed by
//! index, so a test reproduces the same failure pattern on every run
//! and every thread count (the MC engine already guarantees sample
//! determinism).
//!
//! Faults can be *transient*: they fire only on the first
//! characterisation attempt of a point, so the
//! [`DegradePolicy::RetryRelaxed`](crate::policy::DegradePolicy) path
//! can be exercised end to end — the retry with relaxed solver options
//! genuinely succeeds.

use std::collections::BTreeMap;
use std::time::Duration;

use exec::FaultClass;
use netlist::topology::RingVco;
use netlist::Circuit;
use spicesim::SimError;

use crate::error::FlowError;
use crate::vco_eval::{VcoPerf, VcoTestbench};

/// The failure modes a long transistor-level run actually produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The linearised system became singular.
    SingularMatrix,
    /// Newton iteration failed to converge.
    NonConvergence,
    /// The measurement returned NaN without erroring (the nastiest
    /// mode: it must be caught by output validation, not error
    /// handling).
    NanOutput,
    /// The evaluation exceeded its time budget.
    Timeout,
}

impl FaultKind {
    /// The error this fault surfaces as (not applicable to
    /// [`FaultKind::NanOutput`], which succeeds with poisoned values).
    pub fn to_error(self) -> FlowError {
        match self {
            FaultKind::SingularMatrix => FlowError::Sim(SimError::Singular {
                analysis: "injected",
            }),
            FaultKind::NonConvergence => FlowError::Sim(SimError::NoConvergence {
                analysis: "injected",
                time: 0.0,
                iterations: 0,
            }),
            FaultKind::NanOutput => FlowError::Sim(SimError::Measurement {
                message: "injected nan output".into(),
            }),
            FaultKind::Timeout => FlowError::Sim(SimError::Measurement {
                message: "injected timeout: evaluation exceeded budget".into(),
            }),
        }
    }

    /// How the supervised runtime should classify this fault for retry
    /// purposes: non-convergence is a transient solver condition (a
    /// retry with different options can succeed); the rest are
    /// permanent properties of the evaluation.
    pub fn class(self) -> FaultClass {
        match self {
            FaultKind::NonConvergence => FaultClass::Transient,
            FaultKind::SingularMatrix | FaultKind::NanOutput | FaultKind::Timeout => {
                FaultClass::Permanent
            }
        }
    }
}

/// Deterministic fault plan over `(point, sample)` evaluation indices.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    sample_faults: BTreeMap<(usize, usize), FaultKind>,
    point_faults: BTreeMap<usize, FaultKind>,
    transient: bool,
    timeout_stall: Option<Duration>,
}

impl FaultInjector {
    /// An injector with no faults planned.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fails one Monte-Carlo sample of one point.
    pub fn fail_sample(mut self, point: usize, sample: usize, kind: FaultKind) -> Self {
        self.sample_faults.insert((point, sample), kind);
        self
    }

    /// Fails every Monte-Carlo sample of a point.
    pub fn fail_point(mut self, point: usize, kind: FaultKind) -> Self {
        self.point_faults.insert(point, kind);
        self
    }

    /// Fails an evenly spread `fraction` of a point's `samples`
    /// Monte-Carlo samples: every ⌈1/fraction⌉-th index starting at 0.
    /// Deterministic by construction.
    pub fn fail_fraction(
        mut self,
        point: usize,
        samples: usize,
        fraction: f64,
        kind: FaultKind,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        if fraction > 0.0 {
            let step = ((1.0 / fraction).ceil() as usize).max(1);
            for sample in (0..samples).step_by(step) {
                self.sample_faults.insert((point, sample), kind);
            }
        }
        self
    }

    /// Makes all planned faults transient: they fire only on attempt 0,
    /// so a retry (e.g. with relaxed solver options) succeeds.
    pub fn transient(mut self) -> Self {
        self.transient = true;
        self
    }

    /// Makes [`FaultKind::Timeout`] faults actually consume wall-clock
    /// time: the injected evaluation sleeps for `stall` before
    /// returning its error, so a supervised runtime with a per-task
    /// deadline shorter than the stall observes a *real* deadline
    /// overrun, not a simulated one.
    pub fn with_timeout_stall(mut self, stall: Duration) -> Self {
        self.timeout_stall = Some(stall);
        self
    }

    /// The configured wall-clock stall for injected timeouts, if any.
    pub fn timeout_stall(&self) -> Option<Duration> {
        self.timeout_stall
    }

    /// The fault planned for this `(point, sample)` evaluation on the
    /// given characterisation attempt, if any.
    pub fn fault_for(&self, point: usize, sample: usize, attempt: usize) -> Option<FaultKind> {
        if self.transient && attempt > 0 {
            return None;
        }
        self.point_faults
            .get(&point)
            .or_else(|| self.sample_faults.get(&(point, sample)))
            .copied()
    }

    /// Evaluates one Monte-Carlo sample through the testbench, applying
    /// any fault planned for `(point, sample)` at this `attempt`.
    ///
    /// [`FaultKind::NanOutput`] *succeeds* with NaN performances —
    /// callers must validate outputs, exactly as with a real measurement
    /// gone quietly wrong.
    ///
    /// # Errors
    ///
    /// Returns the injected fault's error, or the testbench's own error
    /// when the (unfaulted) evaluation fails for real.
    pub fn evaluate(
        &self,
        point: usize,
        sample: usize,
        attempt: usize,
        testbench: &VcoTestbench,
        circuit: &Circuit,
        handles: &RingVco,
    ) -> Result<VcoPerf, FlowError> {
        match self.fault_for(point, sample, attempt) {
            Some(FaultKind::NanOutput) => Ok(VcoPerf {
                kvco: f64::NAN,
                jvco: f64::NAN,
                ivco: f64::NAN,
                fmin: f64::NAN,
                fmax: f64::NAN,
            }),
            Some(kind) => {
                if kind == FaultKind::Timeout {
                    if let Some(stall) = self.timeout_stall {
                        std::thread::sleep(stall);
                    }
                }
                Err(kind.to_error())
            }
            None => testbench.evaluate_circuit(circuit, handles),
        }
    }

    /// Number of faults planned (point faults count once).
    pub fn planned(&self) -> usize {
        self.sample_faults.len() + self.point_faults.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_lookup_is_deterministic() {
        let inj = FaultInjector::new()
            .fail_sample(0, 3, FaultKind::SingularMatrix)
            .fail_point(2, FaultKind::NonConvergence);
        assert_eq!(inj.fault_for(0, 3, 0), Some(FaultKind::SingularMatrix));
        assert_eq!(inj.fault_for(0, 4, 0), None);
        // Point faults hit every sample.
        assert_eq!(inj.fault_for(2, 0, 0), Some(FaultKind::NonConvergence));
        assert_eq!(inj.fault_for(2, 99, 0), Some(FaultKind::NonConvergence));
    }

    #[test]
    fn fraction_spreads_failures_evenly() {
        let inj = FaultInjector::new().fail_fraction(1, 10, 0.2, FaultKind::Timeout);
        let failing: Vec<usize> = (0..10)
            .filter(|&s| inj.fault_for(1, s, 0).is_some())
            .collect();
        assert_eq!(failing, vec![0, 5], "20% of 10 samples, evenly spread");
    }

    #[test]
    fn transient_faults_clear_on_retry() {
        let inj = FaultInjector::new()
            .fail_point(0, FaultKind::NonConvergence)
            .transient();
        assert!(inj.fault_for(0, 0, 0).is_some());
        assert!(inj.fault_for(0, 0, 1).is_none());
    }

    #[test]
    fn fault_classes_match_retryability() {
        assert_eq!(FaultKind::NonConvergence.class(), FaultClass::Transient);
        assert_eq!(FaultKind::SingularMatrix.class(), FaultClass::Permanent);
        assert_eq!(FaultKind::NanOutput.class(), FaultClass::Permanent);
        assert_eq!(FaultKind::Timeout.class(), FaultClass::Permanent);
    }

    #[test]
    fn timeout_stall_is_recorded() {
        let inj = FaultInjector::new()
            .fail_sample(0, 0, FaultKind::Timeout)
            .with_timeout_stall(Duration::from_millis(25));
        assert_eq!(inj.timeout_stall(), Some(Duration::from_millis(25)));
        assert_eq!(FaultInjector::new().timeout_stall(), None);
    }

    #[test]
    fn fault_kinds_map_to_sim_errors() {
        assert!(matches!(
            FaultKind::SingularMatrix.to_error(),
            FlowError::Sim(SimError::Singular { .. })
        ));
        assert!(matches!(
            FaultKind::NonConvergence.to_error(),
            FlowError::Sim(SimError::NoConvergence { .. })
        ));
        let msg = FaultKind::Timeout.to_error().to_string();
        assert!(msg.contains("timeout"));
    }
}
