//! Spec propagation: selecting the system-level solution and backing it
//! out to transistor dimensions (top-down step of Fig 3).

use behavioral::jitter::pll_jitter_sum;
use behavioral::params::{PllParams, PLL_FIXED_CURRENT};
use behavioral::spec::{PllPerformance, PllSpec};
use behavioral::timesim::{simulate_lock, LockSimConfig};
use moea::problem::Individual;
use netlist::topology::VcoSizing;

use crate::error::FlowError;
use crate::model::PerfVariationModel;
use crate::system_opt::{PllArchitecture, PllSystemProblem, SystemSolution};
use crate::vco_eval::{VcoPerf, VcoTestbench};

/// Selects the design solution from a system-level Pareto front: among
/// solutions that meet every specification *including the variation
/// corners* (the paper's shaded Table-2 row), the one with the lowest
/// nominal jitter; ties break on current.
///
/// Returns the winning decision vector and its Table-2 row.
///
/// # Errors
///
/// Returns [`FlowError::Stage`] when no solution meets the
/// specification.
pub fn select_design(
    problem: &PllSystemProblem,
    front: &[Individual],
) -> Result<(Vec<f64>, SystemSolution), FlowError> {
    let mut best: Option<(Vec<f64>, SystemSolution)> = None;
    for ind in front {
        let Ok(sol) = problem.detail(&ind.x) else {
            continue;
        };
        if !sol.meets_spec {
            continue;
        }
        let better = match &best {
            None => true,
            Some((_, b)) => {
                sol.jitter < b.jitter || (sol.jitter == b.jitter && sol.current < b.current)
            }
        };
        if better {
            best = Some((ind.x.clone(), sol));
        }
    }
    best.ok_or_else(|| {
        FlowError::stage(
            "propagate",
            format!(
                "no system-level solution meets the specification ({} candidates)",
                front.len()
            ),
        )
    })
}

/// Backs a selected system solution out to transistor dimensions.
///
/// This **snaps to the nearest characterised design** rather than
/// interpolating the 5-D inverse p1…p7 tables
/// ([`PerfVariationModel::sizing_for`], which remains available): on
/// the paper's dense 3,000-sample fronts interpolation and snapping
/// coincide, but on reproduction-budget fronts inverse interpolation
/// between distant designs fabricates sizings whose real performance
/// matches neither neighbour. Snapping guarantees the propagated design
/// is one that was actually characterised — the selection stage then
/// re-verifies it at transistor level (see [`select_verified_design`]).
pub fn backout_sizing(model: &PerfVariationModel, sol: &SystemSolution) -> VcoSizing {
    model.nearest_point(sol.kvco, sol.ivco).sizing
}

/// A design that survived verification-in-the-loop selection.
#[derive(Debug, Clone)]
pub struct VerifiedSelection {
    /// Decision vector of the accepted system solution.
    pub x: Vec<f64>,
    /// The model-based Table-2 row.
    pub solution: SystemSolution,
    /// Transistor sizing recovered by spec propagation.
    pub sizing: VcoSizing,
    /// The sizing's *actual* transistor-level performance.
    pub actual: VcoPerf,
    /// Candidates rejected before this one was accepted.
    pub rejected: usize,
}

/// Verification-in-the-loop selection (the two-way arrows of the paper's
/// Fig 3): walk the spec-compliant system solutions in ascending jitter
/// order, back each out to a transistor sizing, re-measure that sizing
/// once at transistor level, and accept the first whose **actual**
/// performance still meets the PLL specification. Model interpolation
/// error on sparse fronts is thereby caught before the expensive
/// Monte-Carlo verification.
///
/// # Errors
///
/// Returns [`FlowError::Stage`] when no candidate survives (at most
/// `max_candidates` transistor evaluations are spent).
#[allow(clippy::too_many_arguments)]
pub fn select_verified_design(
    problem: &PllSystemProblem,
    front: &[Individual],
    model: &PerfVariationModel,
    testbench: &VcoTestbench,
    arch: &PllArchitecture,
    spec: &PllSpec,
    sim_cfg: &LockSimConfig,
    max_candidates: usize,
) -> Result<VerifiedSelection, FlowError> {
    // Rank the model-compliant candidates by nominal jitter.
    let mut candidates: Vec<(Vec<f64>, SystemSolution)> = front
        .iter()
        .filter_map(|ind| {
            problem
                .detail(&ind.x)
                .ok()
                .filter(|sol| sol.meets_spec)
                .map(|sol| (ind.x.clone(), sol))
        })
        .collect();
    candidates.sort_by(|a, b| {
        a.1.jitter
            .partial_cmp(&b.1.jitter)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if candidates.is_empty() {
        return Err(FlowError::stage(
            "propagate",
            format!(
                "no system-level solution meets the specification ({} candidates)",
                front.len()
            ),
        ));
    }

    // The GA front carries many near-duplicate solutions; walk at most
    // one candidate per snapped (characterised) design so the budget is
    // spent on genuinely distinct circuits.
    let mut seen_designs: Vec<usize> = Vec::new();
    let mut distinct = Vec::new();
    for (x, solution) in candidates {
        let nearest_ref = model.nearest_point(solution.kvco, solution.ivco);
        let nearest = model
            .points()
            .iter()
            .position(|p| std::ptr::eq(p, nearest_ref))
            .unwrap_or(usize::MAX);
        if seen_designs.contains(&nearest) {
            continue;
        }
        seen_designs.push(nearest);
        distinct.push((x, solution));
    }

    let mut rejected = 0usize;
    for (x, solution) in distinct.into_iter().take(max_candidates.max(1)) {
        let sizing = backout_sizing(model, &solution);
        let Ok(actual) = testbench.evaluate_sizing(&sizing) else {
            rejected += 1;
            continue;
        };
        // Re-run the behavioural PLL on the actual performance.
        let params = PllParams {
            fref: arch.fref,
            divider: arch.divider,
            icp: arch.icp,
            c1: solution.c1,
            c2: solution.c2,
            r1: solution.r1,
            kvco: actual.kvco,
            f0: 0.5 * (actual.fmin + actual.fmax),
            vctrl_ref: 0.5 * (arch.vctrl_lo + arch.vctrl_hi),
            fmin: actual.fmin,
            fmax: actual.fmax,
            ivco: actual.ivco,
            jvco: actual.jvco,
        };
        let lock_time = match simulate_lock(&params, sim_cfg) {
            Ok(r) => r.lock_time.unwrap_or(f64::INFINITY),
            Err(_) => f64::INFINITY,
        };
        let perf = PllPerformance {
            fmin: actual.fmin,
            fmax: actual.fmax,
            lock_time,
            jitter: pll_jitter_sum(actual.jvco, arch.divider),
            current: actual.ivco + PLL_FIXED_CURRENT,
        };
        if spec.passes(&perf) {
            return Ok(VerifiedSelection {
                x,
                solution,
                sizing,
                actual,
                rejected,
            });
        }
        rejected += 1;
    }
    Err(FlowError::stage(
        "propagate",
        format!(
            "no candidate survived verification-in-the-loop ({rejected} rejected) —              the model over-estimates in this region; increase the characterisation budget"
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charmodel::{CharPoint, CharacterizedFront, VcoDeltas};
    use crate::system_opt::PllArchitecture;
    use behavioral::spec::PllSpec;
    use behavioral::timesim::LockSimConfig;
    use moea::problem::Evaluation;
    use moea::Problem;
    use std::sync::Arc;

    fn model() -> Arc<PerfVariationModel> {
        let n = 14;
        let points = (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                let mut sizing = VcoSizing::nominal();
                sizing.wsn = 15e-6 + 50e-6 * t;
                CharPoint {
                    sizing,
                    perf: VcoPerf {
                        kvco: 0.8e9 + 1.6e9 * t,
                        ivco: 1.5e-3 + 3.0e-3 * t,
                        jvco: 0.32e-12 - 0.2e-12 * t,
                        fmin: 0.30e9 + 0.15e9 * t,
                        fmax: 1.5e9 + 1.1e9 * t,
                    },
                    delta: VcoDeltas {
                        kvco: 0.4,
                        ivco: 2.8,
                        jvco: 23.0,
                        fmin: 1.0,
                        fmax: 1.1,
                    },
                    mc_accepted: 100,
                    mc_failed: 0,
                }
            })
            .collect();
        Arc::new(PerfVariationModel::from_front(&CharacterizedFront { points }).unwrap())
    }

    fn problem() -> PllSystemProblem {
        PllSystemProblem::new(
            model(),
            PllArchitecture::default(),
            PllSpec::default(),
            LockSimConfig::default(),
        )
    }

    fn candidate(p: &PllSystemProblem, x: Vec<f64>) -> Individual {
        let eval = p.evaluate(&x);
        Individual::new(x, eval)
    }

    #[test]
    fn selects_lowest_jitter_spec_compliant_solution() {
        let p = problem();
        let front = vec![
            candidate(&p, vec![1.6e9, 3.0e-3, 30e-12, 3e-12, 4e3]),
            candidate(&p, vec![2.2e9, 4.2e-3, 30e-12, 3e-12, 4e3]),
        ];
        let (x, sol) = select_design(&p, &front).unwrap();
        assert!(sol.meets_spec);
        // The higher-gain/higher-current design has lower VCO jitter on
        // this synthetic front; it should win if both meet spec.
        let other = p.detail(&front[0].x).unwrap();
        if other.meets_spec {
            assert!(sol.jitter <= other.jitter);
        }
        assert_eq!(x.len(), 5);
    }

    #[test]
    fn no_compliant_solution_is_an_error() {
        let p = problem();
        // A hopeless candidate: lowest gain cannot cover the band at
        // worst case AND current-heavy filter — craft one out of domain
        // so detail() fails for it.
        let front = vec![Individual::new(
            vec![9e9, 3e-3, 30e-12, 3e-12, 4e3],
            Evaluation::failed(3),
        )];
        assert!(matches!(
            select_design(&p, &front),
            Err(FlowError::Stage { .. })
        ));
    }

    #[test]
    fn backout_recovers_nearby_front_sizing() {
        let m = model();
        let p = problem();
        let sol = p.detail(&[1.6e9, 3.0e-3, 30e-12, 3e-12, 4e3]).unwrap();
        let sizing = backout_sizing(&m, &sol);
        // The recovered sizing interpolates the front designs, whose
        // wsn spans 15–65 µm.
        assert!(
            (10e-6..=100e-6).contains(&sizing.wsn),
            "wsn {} outside bounds",
            sizing.wsn
        );
    }
}
