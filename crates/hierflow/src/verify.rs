//! Bottom-up verification (paper §4.5): Monte Carlo on the final
//! transistor-level design, re-running the behavioural PLL per sample
//! and confirming the predicted yield.

use behavioral::jitter::pll_jitter_sum;
use behavioral::params::{PllParams, PLL_FIXED_CURRENT};
use behavioral::spec::{PllPerformance, PllSpec};
use behavioral::timesim::{simulate_lock, LockSimConfig};
use netlist::topology::VcoSizing;
use numkit::stats::wilson_interval;
use serde::{Deserialize, Serialize};
use variation::mc::{McConfig, MonteCarlo};

use crate::error::FlowError;
use crate::system_opt::PllArchitecture;
use crate::vco_eval::{VcoPerf, VcoTestbench};

/// Verification outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Samples meeting every PLL spec.
    pub passed: usize,
    /// Total Monte-Carlo samples.
    pub total: usize,
    /// Yield point estimate.
    pub yield_value: f64,
    /// 95 % Wilson confidence bounds on the yield.
    pub yield_ci: (f64, f64),
    /// Per-sample VCO performances (for post-mortem analysis).
    pub vco_samples: Vec<VcoPerf>,
    /// Samples whose transistor-level evaluation failed outright
    /// (counted as spec failures).
    pub evaluation_failures: usize,
}

/// Runs the bottom-up verification: `mc.samples` transistor-level
/// Monte-Carlo evaluations of the final sizing, each fed through the
/// behavioural PLL with the loop filter of the selected solution, then
/// checked against the spec.
///
/// # Errors
///
/// Returns [`FlowError::Stage`] when every sample fails to evaluate
/// (the design is broken, not merely low-yield).
#[allow(clippy::too_many_arguments)]
pub fn verify_design(
    sizing: &VcoSizing,
    filter: (f64, f64, f64),
    testbench: &VcoTestbench,
    arch: &PllArchitecture,
    spec: &PllSpec,
    engine: &MonteCarlo,
    mc: &McConfig,
    sim_cfg: &LockSimConfig,
) -> Result<VerificationReport, FlowError> {
    let (c1, c2, r1) = filter;
    let ring = testbench.build(sizing);
    let run = engine.run(&ring.circuit, mc, |_i, perturbed| {
        testbench
            .evaluate_circuit(perturbed, &ring)
            .ok()
            .map(|p| p.to_array().to_vec())
    });
    if run.accepted == 0 {
        return Err(FlowError::stage(
            "verify",
            "every monte-carlo sample failed transistor-level evaluation",
        ));
    }

    let vctrl_ref = 0.5 * (arch.vctrl_lo + arch.vctrl_hi);
    let mut passed = 0usize;
    let mut vco_samples = Vec::with_capacity(run.accepted);
    for row in &run.metrics {
        let perf = VcoPerf::from_array(row);
        vco_samples.push(perf);
        let params = PllParams {
            fref: arch.fref,
            divider: arch.divider,
            icp: arch.icp,
            c1,
            c2,
            r1,
            kvco: perf.kvco,
            f0: 0.5 * (perf.fmin + perf.fmax),
            vctrl_ref,
            fmin: perf.fmin,
            fmax: perf.fmax,
            ivco: perf.ivco,
            jvco: perf.jvco,
        };
        let lock_time = match simulate_lock(&params, sim_cfg) {
            Ok(r) => r.lock_time.unwrap_or(f64::INFINITY),
            Err(_) => f64::INFINITY,
        };
        let pll_perf = PllPerformance {
            fmin: perf.fmin,
            fmax: perf.fmax,
            lock_time,
            jitter: pll_jitter_sum(perf.jvco, arch.divider),
            current: perf.ivco + PLL_FIXED_CURRENT,
        };
        if spec.passes(&pll_perf) {
            passed += 1;
        }
    }

    // Failed transistor-level evaluations count as spec failures.
    let total = run.accepted + run.failed;
    let (lo, hi) = wilson_interval(passed, total, 1.96)
        .expect("accepted >= 1 was checked above and passed <= total by construction");
    Ok(VerificationReport {
        passed,
        total,
        yield_value: passed as f64 / total as f64,
        yield_ci: (lo, hi),
        vco_samples,
        evaluation_failures: run.failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use variation::process::ProcessSpec;

    /// Transistor-level verification on the nominal sizing with a small
    /// MC budget; the full 500-sample run lives in the yield_verify
    /// experiment binary.
    #[test]
    fn small_verification_run_reports_yield() {
        let sizing = VcoSizing::nominal();
        let tb = VcoTestbench::default();
        let engine = MonteCarlo::new(ProcessSpec::default());
        let mc = McConfig {
            samples: 8,
            seed: 3,
            threads: 2,
        };
        // A very permissive spec the nominal VCO easily meets — the
        // point here is plumbing, not the paper numbers.
        let spec = PllSpec {
            f_out_min: 1.0e9,
            f_out_max: 1.1e9,
            lock_time_max: 5e-6,
            current_max: 60e-3,
        };
        let arch = PllArchitecture {
            divider: 21, // 1.05 GHz target, inside the nominal VCO range
            ..Default::default()
        };
        let report = verify_design(
            &sizing,
            (30e-12, 3e-12, 4e3),
            &tb,
            &arch,
            &spec,
            &engine,
            &mc,
            &LockSimConfig::default(),
        )
        .unwrap();
        assert_eq!(report.total, 8);
        assert!(report.yield_value > 0.5, "yield {}", report.yield_value);
        assert!(report.yield_ci.0 <= report.yield_value);
        assert!(report.yield_ci.1 >= report.yield_value);
        assert_eq!(
            report.vco_samples.len(),
            report.total - report.evaluation_failures
        );
    }

    #[test]
    fn impossible_spec_gives_zero_yield() {
        let sizing = VcoSizing::nominal();
        let tb = VcoTestbench::default();
        let engine = MonteCarlo::new(ProcessSpec::default());
        let mc = McConfig {
            samples: 4,
            seed: 9,
            threads: 2,
        };
        let spec = PllSpec {
            f_out_min: 1e6, // requires fmin below 1 MHz — impossible
            f_out_max: 50e9,
            lock_time_max: 1e-9,
            current_max: 1e-6,
        };
        let report = verify_design(
            &sizing,
            (30e-12, 3e-12, 4e3),
            &tb,
            &PllArchitecture::default(),
            &spec,
            &engine,
            &mc,
            &LockSimConfig::default(),
        )
        .unwrap();
        assert_eq!(report.passed, 0);
        assert_eq!(report.yield_value, 0.0);
    }
}
