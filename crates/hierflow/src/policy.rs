//! Graceful-degradation policies for the characterisation stage.
//!
//! The paper-scale flow spends hours of transistor-level simulation; a
//! single Pareto point whose Monte-Carlo samples all fail should not
//! discard that investment. A [`DegradePolicy`] decides what happens
//! instead: abort with full provenance ([`DegradePolicy::Strict`]),
//! drop the point and continue
//! ([`DegradePolicy::SkipFailedPoints`]), or re-characterise with
//! progressively relaxed solver options before dropping
//! ([`DegradePolicy::RetryRelaxed`]). Both degrading policies enforce a
//! minimum surviving-point count before the combined table model
//! ([`crate::model::PerfVariationModel`]) is attempted, since a model
//! built from too few points extrapolates wildly.

use spicesim::SimOptions;

/// What to do when a Pareto point fails characterisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradePolicy {
    /// Any failed Monte-Carlo sample aborts the run with stage, point
    /// and sample provenance. For CI and debugging: nothing is papered
    /// over.
    Strict,
    /// Points that fail characterisation outright (no usable samples or
    /// undefined spreads) are dropped and reported in the event log.
    /// Partial sample failures are tolerated and recorded.
    SkipFailedPoints {
        /// Minimum points that must survive for the flow to continue.
        min_surviving_points: usize,
    },
    /// Like `SkipFailedPoints`, but a failing point is first retried
    /// with progressively relaxed solver options.
    RetryRelaxed {
        /// Maximum retries per point (each one relaxes further).
        max_retries: usize,
        /// Minimum points that must survive for the flow to continue.
        min_surviving_points: usize,
    },
}

impl Default for DegradePolicy {
    /// Skip failed points, requiring the two survivors the table model
    /// needs as an absolute floor.
    fn default() -> Self {
        DegradePolicy::SkipFailedPoints {
            min_surviving_points: 2,
        }
    }
}

impl DegradePolicy {
    /// The surviving-point floor this policy enforces (1 under
    /// [`DegradePolicy::Strict`], where no point may be dropped at
    /// all).
    pub fn min_surviving_points(&self) -> usize {
        match *self {
            DegradePolicy::Strict => 1,
            DegradePolicy::SkipFailedPoints {
                min_surviving_points,
            }
            | DegradePolicy::RetryRelaxed {
                min_surviving_points,
                ..
            } => min_surviving_points.max(1),
        }
    }

    /// Retries this policy allows per point.
    pub fn max_retries(&self) -> usize {
        match *self {
            DegradePolicy::RetryRelaxed { max_retries, .. } => max_retries,
            _ => 0,
        }
    }

    /// Whether partial sample failures abort the run.
    pub fn is_strict(&self) -> bool {
        matches!(self, DegradePolicy::Strict)
    }
}

/// Solver options for retry `attempt` (attempt 0 = the originals).
///
/// Each retry relaxes the Newton iteration by a decade of `gmin`, a
/// decade of `reltol` (capped at 1e-2 — beyond that the "measurement"
/// is noise), and 50% more iterations: the standard SPICE ladder for
/// coaxing a non-convergent operating point.
pub fn relaxed_options(base: &SimOptions, attempt: usize) -> SimOptions {
    if attempt == 0 {
        return *base;
    }
    let decades = 10f64.powi(attempt as i32);
    let mut opts = *base;
    opts.gmin = base.gmin * decades;
    opts.reltol = (base.reltol * decades).min(1e-2);
    opts.max_newton_iterations =
        base.max_newton_iterations + base.max_newton_iterations / 2 * attempt;
    opts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_skips_with_model_floor() {
        let p = DegradePolicy::default();
        assert_eq!(p.min_surviving_points(), 2);
        assert_eq!(p.max_retries(), 0);
        assert!(!p.is_strict());
    }

    #[test]
    fn strict_never_drops_points() {
        let p = DegradePolicy::Strict;
        assert!(p.is_strict());
        assert_eq!(p.max_retries(), 0);
    }

    #[test]
    fn relaxation_ladder_is_monotone() {
        let base = SimOptions::default();
        let r0 = relaxed_options(&base, 0);
        assert_eq!(r0, base, "attempt 0 must not alter the solver");
        let r1 = relaxed_options(&base, 1);
        let r2 = relaxed_options(&base, 2);
        assert!(r1.gmin > base.gmin && r2.gmin > r1.gmin);
        assert!(r1.reltol > base.reltol);
        assert!(r2.reltol <= 1e-2, "reltol capped");
        assert!(r1.max_newton_iterations > base.max_newton_iterations);
        assert!(r2.max_newton_iterations > r1.max_newton_iterations);
    }
}
