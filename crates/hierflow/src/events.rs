//! Structured per-run event log: what each stage did, which points were
//! skipped or retried, which checkpoints were written or reused.
//!
//! The flow appends [`FlowEvent`]s as it executes; the log rides along
//! in [`crate::flow::FlowReport`], is persisted to `events.json` in the
//! checkpoint directory, and is printed by the example and bench
//! binaries. Long paper-scale runs degrade gracefully (points skipped,
//! solvers relaxed) — the event log is how those silent decisions stay
//! visible afterwards.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The five stages of the hierarchical flow (paper Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowStage {
    /// Stage 1: circuit-level multi-objective sizing.
    CircuitOpt,
    /// Stage 2: Monte-Carlo characterisation of the Pareto front.
    Characterize,
    /// Stage 3: combined performance + variation table model.
    Model,
    /// Stage 4: system-level optimisation with the model in the loop.
    SystemOpt,
    /// Stage 5: spec propagation and bottom-up verification.
    Verify,
}

impl FlowStage {
    /// Stable lower-case stage name (used in error messages and
    /// checkpoint file names).
    pub fn name(self) -> &'static str {
        match self {
            FlowStage::CircuitOpt => "circuit-opt",
            FlowStage::Characterize => "characterise",
            FlowStage::Model => "model",
            FlowStage::SystemOpt => "system-opt",
            FlowStage::Verify => "verify",
        }
    }
}

impl fmt::Display for FlowStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One entry in the per-run event log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlowEvent {
    /// A stage began computing (not emitted when its checkpoint is
    /// reused).
    StageStarted {
        /// The stage.
        stage: FlowStage,
    },
    /// A stage finished computing.
    StageFinished {
        /// The stage.
        stage: FlowStage,
    },
    /// A stage's artifact was written to the checkpoint directory.
    CheckpointSaved {
        /// The stage.
        stage: FlowStage,
        /// Artifact file name within the run directory.
        file: String,
    },
    /// A stage was skipped because its artifact was already present.
    CheckpointLoaded {
        /// The stage.
        stage: FlowStage,
        /// Artifact file name within the run directory.
        file: String,
    },
    /// A Pareto point was dropped under a degradation policy.
    PointSkipped {
        /// The stage.
        stage: FlowStage,
        /// Index of the point within the (thinned) front.
        point: usize,
        /// Why it was dropped.
        reason: String,
    },
    /// A failed point is being re-characterised with relaxed solver
    /// options.
    RetryAttempted {
        /// The stage.
        stage: FlowStage,
        /// Index of the point within the (thinned) front.
        point: usize,
        /// Retry number (1 = first retry).
        attempt: usize,
    },
    /// Some (but not all) Monte-Carlo samples of a point failed; the
    /// point survived.
    SampleFailures {
        /// The stage.
        stage: FlowStage,
        /// Index of the point within the (thinned) front.
        point: usize,
        /// Failing sample indices.
        samples: Vec<usize>,
        /// Total samples drawn.
        total: usize,
    },
    /// One task (a Monte-Carlo sample or GA candidate) blew its
    /// per-task wall-clock deadline; its result was discarded.
    TaskTimedOut {
        /// The stage.
        stage: FlowStage,
        /// Pareto-point index, when the task belongs to one.
        point: Option<usize>,
        /// Task index within its batch (sample or candidate index).
        task: usize,
        /// Observed duration in milliseconds.
        elapsed_ms: u64,
        /// The per-task limit in milliseconds.
        limit_ms: u64,
    },
    /// Scheduling summary of one supervised batch: worker utilisation,
    /// stolen-task count (work a static chunking would have stranded on
    /// a slow worker), retries, timeouts.
    PoolBatch {
        /// The stage.
        stage: FlowStage,
        /// Pareto-point index, when the batch belongs to one.
        point: Option<usize>,
        /// Tasks in the batch.
        tasks: usize,
        /// Worker threads used.
        workers: usize,
        /// Tasks executed per worker.
        per_worker: Vec<usize>,
        /// Tasks executed by a different worker than static chunking
        /// would have assigned.
        stolen: usize,
        /// Retry attempts performed.
        retries: usize,
        /// Per-task deadline overruns.
        timeouts: usize,
    },
    /// Evaluation memo-cache counters after a stage's batch of work
    /// (only emitted when the flow's cache is enabled; see
    /// [`crate::flow::CacheConfig`]). Counters are cumulative over the
    /// cache's lifetime, which spans every stage sharing it.
    CacheStats {
        /// The stage whose work the snapshot follows.
        stage: FlowStage,
        /// In-memory cache hits.
        hits: u64,
        /// Misses (evaluations actually performed).
        misses: u64,
        /// Hits served by the on-disk tier (subset of `hits`).
        disk_hits: u64,
        /// Entries evicted from the in-memory tier.
        evictions: u64,
    },
    /// The run's cancellation token fired; the stage stopped claiming
    /// work and the run ended (resumable from its checkpoints).
    RunCancelled {
        /// The stage that observed the cancellation.
        stage: FlowStage,
    },
    /// A wall-clock budget expired and the run ended (resumable from
    /// its checkpoints).
    BudgetExhausted {
        /// The stage that observed the expiry.
        stage: FlowStage,
        /// Which budget scope expired.
        scope: DeadlineScope,
    },
    /// A checkpoint artifact (or the event log itself) was present but
    /// unreadable — truncated, garbage, or written by an incompatible
    /// version. The file has been quarantined (renamed aside) and the
    /// stage recomputed; resume degrades, it never panics and never
    /// builds a report from a half-trusted artifact.
    CheckpointCorrupt {
        /// The stage whose artifact was corrupt; `None` when the event
        /// log itself (which belongs to no single stage) was the
        /// casualty.
        stage: Option<FlowStage>,
        /// Artifact file name within the run directory.
        file: String,
        /// Parse or I/O error text.
        reason: String,
    },
    /// An event this build does not recognise — typically one written
    /// into `events.json` by a newer flow version. The raw payload is
    /// preserved verbatim, so loading and re-persisting an event log
    /// never drops a future variant's history.
    #[serde(other)]
    Unrecognized(serde::Value),
}

/// Which wall-clock budget scope expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeadlineScope {
    /// A single task's deadline.
    Task,
    /// A stage's deadline.
    Stage,
    /// The whole-run deadline.
    Run,
}

impl fmt::Display for DeadlineScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeadlineScope::Task => "per-task",
            DeadlineScope::Stage => "per-stage",
            DeadlineScope::Run => "whole-run",
        })
    }
}

impl fmt::Display for FlowEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowEvent::StageStarted { stage } => write!(f, "[{stage}] started"),
            FlowEvent::StageFinished { stage } => write!(f, "[{stage}] finished"),
            FlowEvent::CheckpointSaved { stage, file } => {
                write!(f, "[{stage}] checkpoint saved: {file}")
            }
            FlowEvent::CheckpointLoaded { stage, file } => {
                write!(f, "[{stage}] checkpoint reused: {file}")
            }
            FlowEvent::PointSkipped {
                stage,
                point,
                reason,
            } => write!(f, "[{stage}] point {point} skipped: {reason}"),
            FlowEvent::RetryAttempted {
                stage,
                point,
                attempt,
            } => write!(
                f,
                "[{stage}] point {point}: retry {attempt} with relaxed solver options"
            ),
            FlowEvent::SampleFailures {
                stage,
                point,
                samples,
                total,
            } => write!(
                f,
                "[{stage}] point {point}: {}/{} monte-carlo samples failed (indices {:?})",
                samples.len(),
                total,
                samples
            ),
            FlowEvent::TaskTimedOut {
                stage,
                point,
                task,
                elapsed_ms,
                limit_ms,
            } => {
                write!(f, "[{stage}] ")?;
                if let Some(p) = point {
                    write!(f, "point {p}, ")?;
                }
                write!(
                    f,
                    "task {task}: timed out ({elapsed_ms} ms against a {limit_ms} ms deadline)"
                )
            }
            FlowEvent::PoolBatch {
                stage,
                point,
                tasks,
                workers,
                per_worker,
                stolen,
                retries,
                timeouts,
            } => {
                write!(f, "[{stage}] ")?;
                if let Some(p) = point {
                    write!(f, "point {p}: ")?;
                }
                write!(
                    f,
                    "pool ran {tasks} tasks on {workers} workers \
                     (per-worker {per_worker:?}, {stolen} stolen, \
                     {retries} retries, {timeouts} timeouts)"
                )
            }
            FlowEvent::CacheStats {
                stage,
                hits,
                misses,
                disk_hits,
                evictions,
            } => write!(
                f,
                "[{stage}] eval cache: {hits} hits ({disk_hits} from disk), \
                 {misses} misses, {evictions} evictions"
            ),
            FlowEvent::RunCancelled { stage } => {
                write!(f, "[{stage}] run cancelled (resumable from checkpoints)")
            }
            FlowEvent::BudgetExhausted { stage, scope } => {
                write!(
                    f,
                    "[{stage}] {scope} deadline exceeded (resumable from checkpoints)"
                )
            }
            FlowEvent::CheckpointCorrupt {
                stage,
                file,
                reason,
            } => {
                match stage {
                    Some(s) => write!(f, "[{s}] ")?,
                    None => write!(f, "[run] ")?,
                }
                write!(
                    f,
                    "corrupt checkpoint {file} quarantined, recomputing: {reason}"
                )
            }
            FlowEvent::Unrecognized(value) => {
                write!(
                    f,
                    "[unknown] unrecognised event (newer flow version?): {value:?}"
                )
            }
        }
    }
}

/// The per-run event log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowEvents {
    events: Vec<FlowEvent>,
}

impl FlowEvents {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event. When telemetry is active, the event is also
    /// mirrored into the trace as an annotation on the current span,
    /// carrying its index in this log so `events.json` entries and
    /// `trace.jsonl` spans correlate.
    pub fn push(&mut self, event: FlowEvent) {
        if telemetry::enabled() {
            telemetry::event_indexed(self.events.len(), &event.to_string());
        }
        self.events.push(event);
    }

    /// All events, in order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEvent> {
        self.events.iter()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Indices of points skipped during `stage`.
    pub fn skipped_points(&self, stage: FlowStage) -> Vec<usize> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FlowEvent::PointSkipped {
                    stage: s, point, ..
                } if *s == stage => Some(*point),
                _ => None,
            })
            .collect()
    }

    /// Whether a stage's checkpoint was reused instead of recomputed.
    pub fn stage_resumed(&self, stage: FlowStage) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FlowEvent::CheckpointLoaded { stage: s, .. } if *s == stage))
    }

    /// Number of per-task deadline overruns recorded during `stage`.
    pub fn task_timeouts(&self, stage: FlowStage) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, FlowEvent::TaskTimedOut { stage: s, .. } if *s == stage))
            .count()
    }

    /// The last evaluation-cache snapshot recorded during `stage`, as
    /// `(hits, misses, disk_hits, evictions)`. `None` when the stage
    /// ran without a cache (or was resumed from its checkpoint).
    pub fn cache_stats(&self, stage: FlowStage) -> Option<(u64, u64, u64, u64)> {
        self.events.iter().rev().find_map(|e| match e {
            FlowEvent::CacheStats {
                stage: s,
                hits,
                misses,
                disk_hits,
                evictions,
            } if *s == stage => Some((*hits, *misses, *disk_hits, *evictions)),
            _ => None,
        })
    }

    /// The `(file, reason)` pairs of every quarantined-checkpoint
    /// event, in order — the provenance trail a degraded resume leaves
    /// behind.
    pub fn checkpoint_corruptions(&self) -> Vec<(String, String)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FlowEvent::CheckpointCorrupt { file, reason, .. } => {
                    Some((file.clone(), reason.clone()))
                }
                _ => None,
            })
            .collect()
    }

    /// Whether the run was interrupted (cancelled or out of budget) —
    /// the conditions under which the checkpoint directory is worth
    /// resuming.
    pub fn interrupted(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                FlowEvent::RunCancelled { .. } | FlowEvent::BudgetExhausted { .. }
            )
        })
    }
}

impl fmt::Display for FlowEvents {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for event in &self.events {
            writeln!(f, "{event}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_and_queries() {
        let mut log = FlowEvents::new();
        assert!(log.is_empty());
        log.push(FlowEvent::StageStarted {
            stage: FlowStage::Characterize,
        });
        log.push(FlowEvent::PointSkipped {
            stage: FlowStage::Characterize,
            point: 3,
            reason: "all samples failed".into(),
        });
        log.push(FlowEvent::CheckpointLoaded {
            stage: FlowStage::CircuitOpt,
            file: "stage1_front.json".into(),
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.skipped_points(FlowStage::Characterize), vec![3]);
        assert!(log.stage_resumed(FlowStage::CircuitOpt));
        assert!(!log.stage_resumed(FlowStage::SystemOpt));
        let text = log.to_string();
        assert!(text.contains("point 3 skipped"));
        assert!(text.contains("checkpoint reused"));
    }

    #[test]
    fn log_round_trips_through_json() {
        let mut log = FlowEvents::new();
        log.push(FlowEvent::SampleFailures {
            stage: FlowStage::Characterize,
            point: 1,
            samples: vec![0, 4],
            total: 10,
        });
        log.push(FlowEvent::RetryAttempted {
            stage: FlowStage::Characterize,
            point: 1,
            attempt: 1,
        });
        log.push(FlowEvent::CacheStats {
            stage: FlowStage::CircuitOpt,
            hits: 12,
            misses: 340,
            disk_hits: 3,
            evictions: 0,
        });
        let text = serde_json::to_string(&log).unwrap();
        let back: FlowEvents = serde_json::from_str(&text).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn unknown_event_variants_survive_a_round_trip() {
        // A hand-crafted `events.json` fragment from a hypothetical
        // future flow version: one variant this build has never heard
        // of, mixed in with known ones. Loading must not error, the
        // foreign payload must be preserved verbatim, and re-persisting
        // must write it back out unchanged.
        let text = r#"{"events": [
            {"StageStarted": {"stage": "CircuitOpt"}},
            {"WarpDriveEngaged": {"stage": "CircuitOpt", "dilithium": 7, "notes": ["a", "b"]}},
            "QuantumFlush",
            {"StageFinished": {"stage": "CircuitOpt"}}
        ]}"#;
        let log: FlowEvents = serde_json::from_str(text).expect("future variants must not error");
        assert_eq!(log.len(), 4);
        assert_eq!(
            log.iter().next(),
            Some(&FlowEvent::StageStarted {
                stage: FlowStage::CircuitOpt
            })
        );
        let unknown: Vec<&FlowEvent> = log
            .iter()
            .filter(|e| matches!(e, FlowEvent::Unrecognized(_)))
            .collect();
        assert_eq!(unknown.len(), 2, "both foreign shapes are caught");
        // Display never panics on foreign payloads.
        assert!(log.to_string().contains("unrecognised event"));
        // Round trip: the foreign payloads re-serialise verbatim.
        let reserialized = serde_json::to_string(&log).unwrap();
        assert!(reserialized.contains("WarpDriveEngaged"));
        assert!(reserialized.contains("dilithium"));
        assert!(reserialized.contains("QuantumFlush"));
        let back: FlowEvents = serde_json::from_str(&reserialized).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn cache_stats_query_returns_latest_snapshot_per_stage() {
        let mut log = FlowEvents::new();
        assert!(log.cache_stats(FlowStage::CircuitOpt).is_none());
        log.push(FlowEvent::CacheStats {
            stage: FlowStage::CircuitOpt,
            hits: 1,
            misses: 9,
            disk_hits: 0,
            evictions: 0,
        });
        log.push(FlowEvent::CacheStats {
            stage: FlowStage::Characterize,
            hits: 50,
            misses: 50,
            disk_hits: 20,
            evictions: 2,
        });
        assert_eq!(log.cache_stats(FlowStage::CircuitOpt), Some((1, 9, 0, 0)));
        assert_eq!(
            log.cache_stats(FlowStage::Characterize),
            Some((50, 50, 20, 2))
        );
        assert!(log.cache_stats(FlowStage::Verify).is_none());
        let text = log.to_string();
        assert!(
            text.contains("eval cache: 50 hits (20 from disk)"),
            "{text}"
        );
    }
}
