//! The circuit-level sizing problem (paper §4.1–4.2): seven W/L
//! designables, five objectives, transistor-level evaluation.

use moea::problem::{Evaluation, Problem};
use netlist::topology::VcoSizing;

use crate::vco_eval::{VcoPerf, VcoTestbench};

/// The VCO sizing problem handed to NSGA-II.
///
/// Objectives (all minimised, matching the paper's trade-off directions):
/// jitter ↓, current ↓, gain ↑ (negated), fmin ↓, fmax ↑ (negated).
/// Candidates whose circuit fails to oscillate are marked failed and
/// sink to the bottom under constrained domination.
///
/// An optional **band-coverage constraint** implements the paper's
/// specification propagation (Fig 3): the system-level output band
/// becomes `fmin ≤ band.0` and `fmax ≥ band.1` constraints at circuit
/// level, steering the front into the region the system optimiser can
/// actually use.
#[derive(Debug, Clone)]
pub struct VcoSizingProblem {
    testbench: VcoTestbench,
    band: Option<(f64, f64)>,
}

impl VcoSizingProblem {
    /// Creates the problem around a testbench, without band constraints
    /// (the pure five-objective formulation of §4.1).
    pub fn new(testbench: VcoTestbench) -> Self {
        VcoSizingProblem {
            testbench,
            band: None,
        }
    }

    /// Adds the propagated system-band constraint: every feasible design
    /// must tune below `f_lo` and above `f_hi`.
    ///
    /// # Panics
    ///
    /// Panics if `f_lo >= f_hi` or either is non-positive.
    pub fn with_band(testbench: VcoTestbench, f_lo: f64, f_hi: f64) -> Self {
        assert!(
            f_lo > 0.0 && f_hi > f_lo,
            "band must satisfy 0 < f_lo < f_hi"
        );
        VcoSizingProblem {
            testbench,
            band: Some((f_lo, f_hi)),
        }
    }

    /// The testbench in use.
    pub fn testbench(&self) -> &VcoTestbench {
        &self.testbench
    }

    /// Converts a performance measurement into the minimised objective
    /// vector `(jvco, ivco, −kvco, fmin, −fmax)`.
    pub fn objectives_of(perf: &VcoPerf) -> Vec<f64> {
        vec![perf.jvco, perf.ivco, -perf.kvco, perf.fmin, -perf.fmax]
    }

    /// Recovers the performance from an objective vector produced by
    /// [`VcoSizingProblem::objectives_of`].
    ///
    /// # Panics
    ///
    /// Panics if `objectives.len() != 5`.
    pub fn perf_of(objectives: &[f64]) -> VcoPerf {
        assert_eq!(objectives.len(), 5, "five objectives expected");
        VcoPerf {
            jvco: objectives[0],
            ivco: objectives[1],
            kvco: -objectives[2],
            fmin: objectives[3],
            fmax: -objectives[4],
        }
    }
}

impl Problem for VcoSizingProblem {
    fn num_vars(&self) -> usize {
        VcoSizing::DIM
    }

    fn bounds(&self, i: usize) -> (f64, f64) {
        VcoSizing::BOUNDS[i]
    }

    fn num_objectives(&self) -> usize {
        5
    }

    fn num_constraints(&self) -> usize {
        if self.band.is_some() {
            2
        } else {
            0
        }
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let sizing = VcoSizing::from_array(x);
        match self.testbench.evaluate_sizing(&sizing) {
            Ok(perf) => {
                let constraints = match self.band {
                    Some((f_lo, f_hi)) => {
                        vec![(f_lo - perf.fmin) / f_lo, (perf.fmax - f_hi) / f_hi]
                    }
                    None => Vec::new(),
                };
                Evaluation {
                    objectives: Self::objectives_of(&perf),
                    constraints,
                }
            }
            Err(_) => Evaluation::failed(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moea::nsga2::{run_nsga2, Nsga2Config};

    #[test]
    fn objective_mapping_round_trips() {
        let perf = VcoPerf {
            kvco: 1.2e9,
            jvco: 0.15e-12,
            ivco: 3e-3,
            fmin: 0.6e9,
            fmax: 1.6e9,
        };
        let obj = VcoSizingProblem::objectives_of(&perf);
        assert_eq!(VcoSizingProblem::perf_of(&obj), perf);
        // Gain and fmax are maximised → negated.
        assert!(obj[2] < 0.0 && obj[4] < 0.0);
    }

    #[test]
    fn problem_dimensions_match_paper() {
        let p = VcoSizingProblem::new(VcoTestbench::default());
        assert_eq!(p.num_vars(), 7);
        assert_eq!(p.num_objectives(), 5);
        assert_eq!(p.num_constraints(), 0);
        assert_eq!(p.bounds(0), (10e-6, 100e-6));
        assert_eq!(p.bounds(4), (0.12e-6, 1e-6));
    }

    #[test]
    fn band_constraint_scores_coverage() {
        let p = VcoSizingProblem::with_band(VcoTestbench::default(), 500e6, 1.2e9);
        assert_eq!(p.num_constraints(), 2);
        // A known band-covering sizing is feasible; the nominal (fmin
        // above 500 MHz) violates the low-side constraint.
        let lean = VcoSizing {
            wn: 10e-6,
            wp: 12e-6,
            wsn: 15e-6,
            wsp: 30e-6,
            l_inv: 0.12e-6,
            l_starve: 0.3e-6,
            w_bias: 15e-6,
        };
        let eval = p.evaluate(&lean.to_array());
        assert!(
            eval.is_feasible(),
            "lean sizing should cover the band: {:?}",
            eval.constraints
        );
    }

    /// A miniature end-to-end sizing run: tiny GA budget, but enough to
    /// confirm transistor-level evaluations flow through NSGA-II and a
    /// usable front emerges. (The paper-scale run lives in the fig7
    /// experiment binary.)
    #[test]
    fn tiny_sizing_run_produces_a_front() {
        let problem = VcoSizingProblem::new(VcoTestbench::default());
        let cfg = Nsga2Config {
            population: 8,
            generations: 2,
            seed: 42,
            eval_threads: 2,
            ..Default::default()
        };
        let result = run_nsga2(&problem, &cfg);
        let front = result.pareto_front();
        assert!(!front.is_empty(), "no feasible VCO designs found");
        for ind in &front {
            let perf = VcoSizingProblem::perf_of(&ind.objectives);
            assert!(perf.kvco > 0.0 && perf.fmax > perf.fmin);
        }
    }
}
