//! The combined performance + variation model (paper §3.4, Listings
//! 1–2): table models over the characterised Pareto front.
//!
//! Mirrors the paper's Verilog-A structure:
//!
//! * 1-D ∆ tables per performance (`kvco_delta.tbl`, …) give the
//!   relative spread at a performance value;
//! * a forward model `(kvco, ivco) → jvco` (plus `fmin`, `fmax`)
//!   interpolates the Pareto trade-off surface;
//! * 5-D inverse tables `(kvco, ivco, jvco, fmin, fmax) → p1…p7`
//!   recover transistor dimensions for spec propagation.

use std::path::Path;

use netlist::topology::VcoSizing;
use serde::{Deserialize, Serialize};
use tablemodel::control::ControlSpec;
use tablemodel::interp::Table1d;
use tablemodel::scattered::{ScatterMethod, ScatteredTable};
use tablemodel::tbl_io::read_tbl_file;

use crate::charmodel::{CharPoint, CharacterizedFront, VcoDeltas};
use crate::error::FlowError;
use crate::vco_eval::VcoPerf;

/// Fractional bounding-box margin allowed on scattered lookups: the
/// variation corners sit just off the nominal surface, so a small
/// tolerance keeps legitimate corner queries inside the model while
/// still refusing genuine extrapolation (paper control string `"3E"`).
const SCATTER_MARGIN: f64 = 0.05;

/// Manifold guard: a query (kvco, ivco) is trusted only when **each
/// axis** lies within this relative distance of the nearest
/// characterised design. A Pareto cloud is a thin manifold inside its
/// bounding box; bounding-box or euclidean guards cannot express that a
/// "small" absolute current drift is a large relative error — and it is
/// the relative error that fabricates un-realisable designs (maximum
/// gain at half the nearest design's current). On dense paper-scale
/// fronts neighbouring designs differ by far less than this tolerance,
/// so continuous interpolation is retained; on sparse quick-budget
/// fronts the trusted region collapses towards the samples themselves,
/// which is the honest behaviour.
const MANIFOLD_REL_TOLERANCE: f64 = 0.15;

/// A ∆ model: interpolated when the front has enough spread in the key
/// performance, constant otherwise.
#[derive(Debug, Clone)]
enum DeltaModel {
    Table(Table1d),
    Constant(f64),
}

impl DeltaModel {
    fn build(keys: &[f64], deltas: &[f64]) -> Self {
        // Cubic splines oscillate on noisy MC spreads; the paper's ∆
        // columns vary slowly, so piecewise-linear with clamping is the
        // robust choice for the ∆ tables specifically.
        let control: ControlSpec = "1C".parse().expect("static control string");
        match Table1d::new(keys.to_vec(), deltas.to_vec(), control) {
            Ok(t) => DeltaModel::Table(t),
            Err(_) => {
                let mean = deltas.iter().sum::<f64>() / deltas.len().max(1) as f64;
                DeltaModel::Constant(mean)
            }
        }
    }

    fn eval(&self, key: f64) -> f64 {
        match self {
            // 1C clamps, so the error arm is unreachable; keep a safe value.
            DeltaModel::Table(t) => t.eval(key).unwrap_or(0.0),
            DeltaModel::Constant(c) => *c,
        }
    }
}

/// The Listing-2 query result: nominal, minimum and maximum values of
/// the VCO performances at a (kvco, ivco) design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcoQuery {
    /// Nominal gain (Hz/V).
    pub kvco: f64,
    /// Gain at the −∆ corner.
    pub kvco_min: f64,
    /// Gain at the +∆ corner.
    pub kvco_max: f64,
    /// Nominal current (A).
    pub ivco: f64,
    /// Current at the −∆ corner.
    pub ivco_min: f64,
    /// Current at the +∆ corner.
    pub ivco_max: f64,
    /// Nominal jitter (s), interpolated from the Pareto surface.
    pub jvco: f64,
    /// Jitter at the minimum corner.
    pub jvco_min: f64,
    /// Jitter at the maximum corner.
    pub jvco_max: f64,
    /// Nominal minimum VCO frequency (Hz).
    pub fmin: f64,
    /// Worst-case (highest) minimum frequency across variation (Hz).
    pub fmin_worst: f64,
    /// Nominal maximum VCO frequency (Hz).
    pub fmax: f64,
    /// Worst-case (lowest) maximum frequency across variation (Hz).
    pub fmax_worst: f64,
}

/// The combined performance and variation model.
#[derive(Debug, Clone)]
pub struct PerfVariationModel {
    delta_kvco: DeltaModel,
    delta_ivco: DeltaModel,
    delta_jvco: DeltaModel,
    delta_fmin: DeltaModel,
    delta_fmax: DeltaModel,
    jvco_of: ScatteredTable,
    fmin_of: ScatteredTable,
    fmax_of: ScatteredTable,
    /// Inverse sizing tables, one per parameter p1…p7.
    inverse: Vec<ScatteredTable>,
    /// The raw characterised points, for nearest-design fallback.
    points: Vec<CharPoint>,
}

impl PerfVariationModel {
    /// Builds the model from an in-memory characterised front.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Stage`] for fronts with fewer than two
    /// points and [`FlowError::Table`] when a scattered table cannot be
    /// constructed.
    pub fn from_front(front: &CharacterizedFront) -> Result<Self, FlowError> {
        let pts = &front.points;
        if pts.len() < 2 {
            return Err(FlowError::stage(
                "model",
                format!("need at least two pareto points, got {}", pts.len()),
            ));
        }
        let perf: Vec<[f64; 5]> = pts.iter().map(|p| p.perf.to_array()).collect();
        let delta: Vec<[f64; 5]> = pts.iter().map(|p| p.delta.to_array()).collect();

        let keys = |k: usize| -> Vec<f64> { perf.iter().map(|p| p[k]).collect() };
        let dels = |k: usize| -> Vec<f64> { delta.iter().map(|d| d[k]).collect() };

        let ki: Vec<Vec<f64>> = perf.iter().map(|p| vec![p[0], p[1]]).collect();
        let scattered = |values: Vec<f64>| -> Result<ScatteredTable, FlowError> {
            Ok(
                ScatteredTable::new(ki.clone(), values, ScatterMethod::default())?
                    .with_margin(SCATTER_MARGIN),
            )
        };
        let perf5: Vec<Vec<f64>> = perf.iter().map(|p| p.to_vec()).collect();
        let mut inverse = Vec::with_capacity(VcoSizing::DIM);
        for idx in 0..VcoSizing::DIM {
            let values: Vec<f64> = pts.iter().map(|p| p.sizing.to_array()[idx]).collect();
            inverse.push(
                ScatteredTable::new(perf5.clone(), values, ScatterMethod::default())?
                    .with_margin(SCATTER_MARGIN),
            );
        }

        Ok(PerfVariationModel {
            delta_kvco: DeltaModel::build(&keys(0), &dels(0)),
            delta_ivco: DeltaModel::build(&keys(1), &dels(1)),
            delta_jvco: DeltaModel::build(&keys(2), &dels(2)),
            delta_fmin: DeltaModel::build(&keys(3), &dels(3)),
            delta_fmax: DeltaModel::build(&keys(4), &dels(4)),
            jvco_of: scattered(perf.iter().map(|p| p[2]).collect())?,
            fmin_of: scattered(perf.iter().map(|p| p[3]).collect())?,
            fmax_of: scattered(perf.iter().map(|p| p[4]).collect())?,
            inverse,
            points: pts.clone(),
        })
    }

    /// Loads the model from a directory of `.tbl` files written by
    /// [`CharacterizedFront::write_tbl_files`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Table`] on missing or malformed files.
    pub fn from_tbl_dir<P: AsRef<Path>>(dir: P) -> Result<Self, FlowError> {
        let dir = dir.as_ref();
        // Reconstruct the characterised front from the p-tables (which
        // carry all five performances per row) plus the ∆ tables.
        let p_tables: Vec<_> = (1..=VcoSizing::DIM)
            .map(|i| read_tbl_file(dir.join(format!("p{i}_data.tbl"))))
            .collect::<Result<_, _>>()?;
        let n = p_tables[0].len();
        let mut points = Vec::with_capacity(n);
        let delta_files: Vec<_> = VcoPerf::NAMES
            .iter()
            .map(|name| read_tbl_file(dir.join(format!("{name}_delta.tbl"))))
            .collect::<Result<_, _>>()?;
        for row in 0..n {
            let perf5 = &p_tables[0].points[row];
            let sizing_arr: Vec<f64> = p_tables.iter().map(|t| t.values[row]).collect();
            let delta_arr: Vec<f64> = delta_files.iter().map(|t| t.values[row]).collect();
            points.push(CharPoint {
                sizing: VcoSizing::from_array(&sizing_arr),
                perf: VcoPerf::from_array(perf5),
                delta: VcoDeltas {
                    kvco: delta_arr[0],
                    ivco: delta_arr[1],
                    jvco: delta_arr[2],
                    fmin: delta_arr[3],
                    fmax: delta_arr[4],
                },
                mc_accepted: 0,
                mc_failed: 0,
            });
        }
        Self::from_front(&CharacterizedFront { points })
    }

    /// The characterised points backing the model.
    pub fn points(&self) -> &[CharPoint] {
        &self.points
    }

    /// The (kvco, ivco) domain of the model: per-dimension bounds of the
    /// Pareto cloud.
    pub fn design_domain(&self) -> [(f64, f64); 2] {
        let d = self.jvco_of.domain();
        [d[0], d[1]]
    }

    /// The Listing-2 query: interpolates nominal, minimum and maximum
    /// VCO performances at a (kvco, ivco) design point.
    ///
    /// Corner lookups are clamped into the model domain (the corners sit
    /// a fraction of a percent off the nominal surface).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Table`] when (kvco, ivco) falls outside the
    /// Pareto cloud — the system-level optimiser treats that as an
    /// infeasible candidate.
    pub fn query(&self, kvco: f64, ivco: f64) -> Result<VcoQuery, FlowError> {
        if self.manifold_distance(kvco, ivco) > 1.0 {
            let nearest = self.nearest_point(kvco, ivco);
            let _ = nearest;
            return Err(FlowError::Table(
                tablemodel::TableModelError::TooFarFromSamples {
                    distance: self.manifold_distance(kvco, ivco),
                    max_gap: 1.0,
                },
            ));
        }
        let jvco = self.jvco_of.eval(&[kvco, ivco])?;
        let fmin = self.fmin_of.eval(&[kvco, ivco])?;
        let fmax = self.fmax_of.eval(&[kvco, ivco])?;

        let dk = self.delta_kvco.eval(kvco) / 100.0;
        let di = self.delta_ivco.eval(ivco) / 100.0;
        let dfmin = self.delta_fmin.eval(fmin) / 100.0;
        let dfmax = self.delta_fmax.eval(fmax) / 100.0;

        let kvco_min = kvco * (1.0 - dk);
        let kvco_max = kvco * (1.0 + dk);
        let ivco_min = ivco * (1.0 - di);
        let ivco_max = ivco * (1.0 + di);

        // Paper Listing 2: jvco_min/max interpolated at the corner
        // (kvco, ivco) points; clamp into the model domain first.
        // (Corner lookups reuse the nominal value when the corner slips
        // past the manifold guard — the unwrap_or below.)
        let clamp = |v: f64, (lo, hi): (f64, f64)| v.clamp(lo, hi);
        let dom = self.design_domain();
        let j_at = |k: f64, i: f64| -> f64 {
            self.jvco_of
                .eval(&[clamp(k, dom[0]), clamp(i, dom[1])])
                .unwrap_or(jvco)
        };
        let j1 = j_at(kvco_min, ivco_min);
        let j2 = j_at(kvco_max, ivco_max);
        // Widen by the jitter's own ∆ and order the corners.
        let dj = self.delta_jvco.eval(jvco) / 100.0;
        let candidates = [jvco * (1.0 - dj), jvco * (1.0 + dj), j1, j2];
        let jvco_min = candidates.iter().copied().fold(f64::INFINITY, f64::min);
        let jvco_max = candidates.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        Ok(VcoQuery {
            kvco,
            kvco_min,
            kvco_max,
            ivco,
            ivco_min,
            ivco_max,
            jvco,
            jvco_min,
            jvco_max,
            fmin,
            fmin_worst: fmin * (1.0 + dfmin),
            fmax,
            fmax_worst: fmax * (1.0 - dfmax),
        })
    }

    /// Inverse sizing lookup (the paper's p1…p7 tables): transistor
    /// dimensions for a full performance point, clamped to the sizing
    /// bounds.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Table`] when the performance point lies
    /// outside the characterised cloud.
    pub fn sizing_for(&self, perf: &VcoPerf) -> Result<VcoSizing, FlowError> {
        let key = perf.to_array();
        let mut params = [0.0; VcoSizing::DIM];
        for (idx, table) in self.inverse.iter().enumerate() {
            params[idx] = table.eval(&key)?;
        }
        Ok(VcoSizing::from_array(&params).clamped())
    }

    /// The characterised point nearest to a (kvco, ivco) query — the
    /// discrete design behind an interpolated value.
    pub fn nearest_point(&self, kvco: f64, ivco: f64) -> &CharPoint {
        let (idx, _) = self.jvco_of.nearest(&[kvco, ivco]);
        &self.points[idx]
    }

    /// Distance from a (kvco, ivco) design point to the characterised
    /// Pareto manifold in units of the trust tolerance: the worst
    /// per-axis relative deviation from the nearest characterised
    /// design, divided by [`MANIFOLD_REL_TOLERANCE`]. ≤ 1 means the
    /// point is inside the trusted region. Gives optimisers a smooth
    /// feasibility signal.
    pub fn manifold_distance(&self, kvco: f64, ivco: f64) -> f64 {
        let nearest = self.nearest_point(kvco, ivco);
        let rel_k = (kvco - nearest.perf.kvco).abs() / nearest.perf.kvco.abs().max(1e-30);
        let rel_i = (ivco - nearest.perf.ivco).abs() / nearest.perf.ivco.abs().max(1e-30);
        rel_k.max(rel_i) / MANIFOLD_REL_TOLERANCE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic characterised front with a smooth trade-off:
    /// jvco falls and ivco rises along the front.
    fn synthetic_front(n: usize) -> CharacterizedFront {
        let points = (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                let mut sizing = VcoSizing::nominal();
                sizing.wsn = 15e-6 + 60e-6 * t;
                sizing.wn = 12e-6 + 40e-6 * t;
                CharPoint {
                    sizing,
                    perf: VcoPerf {
                        kvco: 0.8e9 + 1.2e9 * t + 0.05e9 * (t * 7.0).sin(),
                        ivco: 2e-3 + 6e-3 * t,
                        jvco: 0.35e-12 - 0.22e-12 * t,
                        fmin: 0.4e9 + 0.2e9 * t,
                        fmax: 1.3e9 + 1.2e9 * t,
                    },
                    delta: VcoDeltas {
                        kvco: 0.4,
                        ivco: 2.8,
                        jvco: 23.0,
                        fmin: 1.0,
                        fmax: 1.1,
                    },
                    mc_accepted: 100,
                    mc_failed: 0,
                }
            })
            .collect();
        CharacterizedFront { points }
    }

    #[test]
    fn query_inside_domain_produces_ordered_corners() {
        let model = PerfVariationModel::from_front(&synthetic_front(12)).unwrap();
        let q = model.query(1.2e9, 4.5e-3).unwrap();
        assert!(q.kvco_min < q.kvco && q.kvco < q.kvco_max);
        assert!(q.ivco_min < q.ivco && q.ivco < q.ivco_max);
        assert!(q.jvco_min <= q.jvco && q.jvco <= q.jvco_max);
        assert!(q.jvco_max - q.jvco_min > 0.0, "jitter spread present");
        assert!(q.fmin_worst >= q.fmin);
        assert!(q.fmax_worst <= q.fmax);
    }

    #[test]
    fn query_outside_domain_errors() {
        let model = PerfVariationModel::from_front(&synthetic_front(12)).unwrap();
        assert!(model.query(10e9, 4e-3).is_err());
        assert!(model.query(1.2e9, 1.0).is_err());
    }

    #[test]
    fn jitter_interpolation_tracks_the_front() {
        let model = PerfVariationModel::from_front(&synthetic_front(16)).unwrap();
        // Low-current designs jitter more than high-current ones.
        let q_low = model.query(0.9e9, 2.5e-3).unwrap();
        let q_high = model.query(1.9e9, 7.5e-3).unwrap();
        assert!(
            q_low.jvco > q_high.jvco,
            "jitter/current trade-off lost: {} vs {}",
            q_low.jvco,
            q_high.jvco
        );
    }

    #[test]
    fn sizing_inverse_recovers_front_designs() {
        let front = synthetic_front(10);
        let model = PerfVariationModel::from_front(&front).unwrap();
        // At an exact front point the inverse tables reproduce the
        // sizing (IDW is exact at samples).
        let p = &front.points[4];
        let sizing = model.sizing_for(&p.perf).unwrap();
        assert!((sizing.wsn - p.sizing.wsn).abs() < 1e-9);
        assert!((sizing.wn - p.sizing.wn).abs() < 1e-9);
    }

    #[test]
    fn nearest_point_returns_backing_design() {
        let front = synthetic_front(10);
        let model = PerfVariationModel::from_front(&front).unwrap();
        let p = &front.points[7];
        let found = model.nearest_point(p.perf.kvco, p.perf.ivco);
        assert_eq!(found.perf, p.perf);
    }

    #[test]
    fn too_small_front_rejected() {
        let front = synthetic_front(1);
        assert!(matches!(
            PerfVariationModel::from_front(&front),
            Err(FlowError::Stage { .. })
        ));
    }

    #[test]
    fn manifold_guard_rejects_fabricated_combinations() {
        let model = PerfVariationModel::from_front(&synthetic_front(12)).unwrap();
        // On-manifold: kvco at t=0.5 pairs with ivco at t=0.5.
        assert!(model.manifold_distance(1.4e9, 5.0e-3) <= 1.0);
        assert!(model.query(1.4e9, 5.0e-3).is_ok());
        // Fabricated: max gain with min current — inside the bounding
        // box, far from every characterised design.
        assert!(model.manifold_distance(2.0e9, 2.0e-3) > 1.0);
        assert!(matches!(
            model.query(2.0e9, 2.0e-3),
            Err(FlowError::Table(
                tablemodel::TableModelError::TooFarFromSamples { .. }
            ))
        ));
    }

    #[test]
    fn tbl_round_trip_preserves_queries() {
        let front = synthetic_front(12);
        let model = PerfVariationModel::from_front(&front).unwrap();
        let dir = std::env::temp_dir().join("hierflow_model_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        front.write_tbl_files(&dir).unwrap();
        let loaded = PerfVariationModel::from_tbl_dir(&dir).unwrap();
        let a = model.query(1.2e9, 4.5e-3).unwrap();
        let b = loaded.query(1.2e9, 4.5e-3).unwrap();
        assert!((a.jvco - b.jvco).abs() < 1e-18);
        assert!((a.kvco_min - b.kvco_min).abs() < 1.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
