//! Pareto-front characterisation: Monte-Carlo spreads per optimal
//! solution (paper §3.3/§4.3, producing Table 1) and `.tbl` emission
//! (Listing 1).

use std::path::Path;

use evalcache::EvalCache;
use exec::{AbortReason, ExecPolicy, FaultClass, PoolStats, TaskFailure};
use moea::problem::Individual;
use netlist::topology::VcoSizing;
use serde::{Deserialize, Serialize};
use tablemodel::tbl_io::write_tbl_file;
use variation::mc::{McConfig, MonteCarlo};

use crate::error::FlowError;
use crate::events::{DeadlineScope, FlowEvent, FlowEvents, FlowStage};
use crate::faults::FaultInjector;
use crate::policy::{relaxed_options, DegradePolicy};
use crate::vco_eval::{VcoPerf, VcoTestbench};
use crate::vco_problem::VcoSizingProblem;

/// Relative spreads (the paper's ∆ columns, `σ/µ` in percent) of the
/// five VCO performances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcoDeltas {
    /// ∆Kvco (%).
    pub kvco: f64,
    /// ∆Ivco (%).
    pub ivco: f64,
    /// ∆Jvco (%).
    pub jvco: f64,
    /// ∆fmin (%).
    pub fmin: f64,
    /// ∆fmax (%).
    pub fmax: f64,
}

impl VcoDeltas {
    /// Packs in the canonical (kvco, ivco, jvco, fmin, fmax) order.
    pub fn to_array(&self) -> [f64; 5] {
        [self.kvco, self.ivco, self.jvco, self.fmin, self.fmax]
    }
}

/// One characterised Pareto point: sizing, nominal performance and
/// Monte-Carlo spreads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharPoint {
    /// Transistor sizing (the paper's p1…p7).
    pub sizing: VcoSizing,
    /// Nominal performance.
    pub perf: VcoPerf,
    /// Relative spreads from Monte Carlo.
    pub delta: VcoDeltas,
    /// Monte-Carlo samples that evaluated successfully.
    pub mc_accepted: usize,
    /// Monte-Carlo samples that failed (circuit stopped oscillating —
    /// itself a yield signal).
    pub mc_failed: usize,
}

/// The characterised Pareto front: the combined performance + variation
/// model's raw data.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CharacterizedFront {
    /// Characterised points.
    pub points: Vec<CharPoint>,
}

/// Outcome of one characterisation attempt of one point.
struct PointAttempt {
    point: Option<CharPoint>,
    /// `(sample index, failure description)` of every failing sample.
    failures: Vec<(usize, String)>,
    /// `(sample index, elapsed ms, limit ms)` of every per-task
    /// deadline overrun.
    timeouts: Vec<(usize, u64, u64)>,
    /// Scheduling statistics of the Monte-Carlo batch.
    stats: PoolStats,
    /// Set when the batch stopped early (cancellation or batch
    /// deadline) — the point's result is meaningless and the whole
    /// run must wind down.
    aborted: Option<AbortReason>,
}

/// One Monte-Carlo pass over one Pareto point, on the supervised pool.
/// Output validation runs here: a measurement that *returns* non-finite
/// values (the quietest failure mode a simulator has) counts as a
/// failed sample, never as data. Injected faults carry their
/// [`FaultKind::class`](crate::faults::FaultKind::class) so the pool's
/// retry policy can tell transient solver wobbles from permanent
/// failures.
#[allow(clippy::too_many_arguments)]
fn characterize_point(
    point: usize,
    sizing: &VcoSizing,
    nominal: VcoPerf,
    attempt: usize,
    testbench: &VcoTestbench,
    engine: &MonteCarlo,
    mc: &McConfig,
    exec: &ExecPolicy,
    faults: Option<&FaultInjector>,
    cache: Option<&EvalCache<Vec<f64>>>,
) -> PointAttempt {
    let _point_span = telemetry::span("point")
        .attr("stage", FlowStage::Characterize.name())
        .attr("point", point)
        .attr("attempt", attempt);
    let ring = testbench.build(sizing);
    // The memoisation key is the sizing plus the retry attempt: relaxed
    // solver options change what a sample measures, so attempt 1 must
    // never replay attempt 0's metrics. The sample index itself is
    // salted in by the Monte-Carlo engine.
    let mut design: Vec<f64> = sizing.to_array().to_vec();
    design.push(attempt as f64);
    let run = engine.run_cached(&ring.circuit, mc, exec, &design, cache, |i, perturbed| {
        let result = match faults {
            Some(inj) => inj.evaluate(point, i, attempt, testbench, perturbed, &ring),
            None => testbench.evaluate_circuit(perturbed, &ring),
        };
        match result {
            Ok(perf) if perf.is_finite() => Ok(perf.to_array().to_vec()),
            Ok(_) => Err(TaskFailure::permanent(
                "measurement returned non-finite values",
            )),
            Err(e) => Err(TaskFailure::Failed {
                message: e.to_string(),
                class: faults
                    .and_then(|inj| inj.fault_for(point, i, attempt))
                    .map(|kind| kind.class())
                    .unwrap_or(FaultClass::Permanent),
            }),
        }
    });
    let failures: Vec<(usize, String)> = run
        .failures
        .iter()
        .map(|(i, f)| (*i, f.to_string()))
        .collect();
    let timeouts: Vec<(usize, u64, u64)> = run
        .failures
        .iter()
        .filter_map(|(i, f)| match f {
            TaskFailure::TimedOut { elapsed, limit } => {
                Some((*i, elapsed.as_millis() as u64, limit.as_millis() as u64))
            }
            _ => None,
        })
        .collect();

    if run.aborted.is_some() || run.accepted == 0 {
        return PointAttempt {
            point: None,
            failures,
            timeouts,
            stats: run.stats,
            aborted: run.aborted,
        };
    }
    // A spread that cannot be computed (zero-mean metric) is a failed
    // point under every policy — zeroing it silently would tell the
    // system level this design has no variation at all.
    let mut delta = [0.0f64; 5];
    for (k, slot) in delta.iter_mut().enumerate() {
        match run.delta_percent(k) {
            Some(d) => *slot = d,
            None => {
                return PointAttempt {
                    point: None,
                    failures: vec![(
                        usize::MAX,
                        format!(
                            "spread of metric {} undefined (zero mean)",
                            VcoPerf::NAMES[k]
                        ),
                    )],
                    timeouts,
                    stats: run.stats,
                    aborted: None,
                };
            }
        }
    }
    PointAttempt {
        point: Some(CharPoint {
            sizing: *sizing,
            perf: nominal,
            delta: VcoDeltas {
                kvco: delta[0],
                ivco: delta[1],
                jvco: delta[2],
                fmin: delta[3],
                fmax: delta[4],
            },
            mc_accepted: run.accepted,
            mc_failed: run.failed,
        }),
        failures,
        timeouts,
        stats: run.stats,
        aborted: None,
    }
}

/// Characterises every Pareto-front individual under a degradation
/// policy: for each one, a `mc.samples`-sample Monte Carlo re-measures
/// the five performances on perturbed circuits and records the relative
/// spreads. Failures are absorbed per the policy — aborted on with full
/// provenance ([`DegradePolicy::Strict`]), skipped
/// ([`DegradePolicy::SkipFailedPoints`]), or retried with relaxed
/// solver options ([`DegradePolicy::RetryRelaxed`]) — and every
/// decision is appended to `events`. An optional [`FaultInjector`]
/// deterministically fails selected `(point, sample)` evaluations for
/// failure-semantics testing.
///
/// # Errors
///
/// Returns [`FlowError::Stage`] when the front is empty or fewer than
/// the policy's minimum points survive, and
/// [`FlowError::Characterization`] (with stage, point and sample
/// provenance) when a strict policy meets a failed sample.
pub fn characterize_front_with(
    front: &[Individual],
    testbench: &VcoTestbench,
    engine: &MonteCarlo,
    mc: &McConfig,
    policy: DegradePolicy,
    faults: Option<&FaultInjector>,
    events: &mut FlowEvents,
) -> Result<CharacterizedFront, FlowError> {
    characterize_front_supervised(
        front,
        testbench,
        engine,
        mc,
        policy,
        faults,
        &ExecPolicy::default(),
        events,
    )
}

/// [`characterize_front_with`] under an explicit execution policy:
/// per-sample wall-clock deadlines (overruns become
/// [`FlowEvent::TaskTimedOut`] entries and failed samples), cooperative
/// cancellation and batch deadlines (the stage stops claiming work,
/// records the interruption and returns a resumable
/// [`FlowError::Cancelled`] / [`FlowError::DeadlineExceeded`]), and
/// per-sample retries for transient faults. Every batch's scheduling
/// statistics land in `events` as [`FlowEvent::PoolBatch`].
///
/// Worker threads come from `exec.threads` when set (> 0), falling back
/// to `mc.threads`; results are bit-identical across thread counts.
///
/// # Errors
///
/// As [`characterize_front_with`], plus [`FlowError::Cancelled`] when
/// the policy's token fires and [`FlowError::DeadlineExceeded`] when
/// its batch deadline expires mid-stage.
#[allow(clippy::too_many_arguments)]
pub fn characterize_front_supervised(
    front: &[Individual],
    testbench: &VcoTestbench,
    engine: &MonteCarlo,
    mc: &McConfig,
    policy: DegradePolicy,
    faults: Option<&FaultInjector>,
    exec: &ExecPolicy,
    events: &mut FlowEvents,
) -> Result<CharacterizedFront, FlowError> {
    characterize_front_cached(
        front, testbench, engine, mc, policy, faults, exec, None, events,
    )
}

/// [`characterize_front_supervised`] with an optional evaluation memo
/// cache: each `(sizing, retry attempt, sample)` measurement is
/// memoised, so repeated characterisation of the same front — a flow
/// resumed after its stage-2 checkpoint was lost, or Pareto points
/// sharing a sizing — replays metric vectors instead of re-simulating.
/// Results are bit-identical with and without the cache; only
/// successful samples are memoised, failures re-run every time.
///
/// A [`FaultInjector`] disables the cache for the whole call: injected
/// faults are keyed by `(point, sample, attempt)`, and serving a
/// memoised success for a sample the injector intended to fail would
/// defeat the failure-semantics test it exists for.
///
/// # Errors
///
/// As [`characterize_front_supervised`].
#[allow(clippy::too_many_arguments)]
pub fn characterize_front_cached(
    front: &[Individual],
    testbench: &VcoTestbench,
    engine: &MonteCarlo,
    mc: &McConfig,
    policy: DegradePolicy,
    faults: Option<&FaultInjector>,
    exec: &ExecPolicy,
    cache: Option<&EvalCache<Vec<f64>>>,
    events: &mut FlowEvents,
) -> Result<CharacterizedFront, FlowError> {
    const STAGE: FlowStage = FlowStage::Characterize;
    let cache = if faults.is_some() { None } else { cache };
    if front.is_empty() {
        return Err(FlowError::stage(STAGE.name(), "empty pareto front"));
    }
    let mut points = Vec::with_capacity(front.len());
    let mut skipped: Vec<usize> = Vec::new();
    let record_batch = |events: &mut FlowEvents, idx: usize, outcome: &PointAttempt| {
        for &(task, elapsed_ms, limit_ms) in &outcome.timeouts {
            events.push(FlowEvent::TaskTimedOut {
                stage: STAGE,
                point: Some(idx),
                task,
                elapsed_ms,
                limit_ms,
            });
        }
        events.push(FlowEvent::PoolBatch {
            stage: STAGE,
            point: Some(idx),
            tasks: outcome.stats.tasks,
            workers: outcome.stats.workers,
            per_worker: outcome.stats.per_worker.clone(),
            stolen: outcome.stats.stolen,
            retries: outcome.stats.retries,
            timeouts: outcome.stats.timeouts,
        });
    };
    for (idx, ind) in front.iter().enumerate() {
        let sizing = VcoSizing::from_array(&ind.x);
        let nominal = VcoSizingProblem::perf_of(&ind.objectives);

        let mut attempt = 0usize;
        let mut outcome = characterize_point(
            idx, &sizing, nominal, attempt, testbench, engine, mc, exec, faults, cache,
        );
        record_batch(events, idx, &outcome);
        while outcome.aborted.is_none() && outcome.point.is_none() && attempt < policy.max_retries()
        {
            attempt += 1;
            telemetry::counter_add("flow.retry_attempts", 1);
            events.push(FlowEvent::RetryAttempted {
                stage: STAGE,
                point: idx,
                attempt,
            });
            let mut relaxed_tb = testbench.clone();
            relaxed_tb.sim = relaxed_options(&testbench.sim, attempt);
            outcome = characterize_point(
                idx,
                &sizing,
                nominal,
                attempt,
                &relaxed_tb,
                engine,
                mc,
                exec,
                faults,
                cache,
            );
            record_batch(events, idx, &outcome);
        }

        match outcome.aborted {
            Some(AbortReason::Cancelled) => {
                events.push(FlowEvent::RunCancelled { stage: STAGE });
                return Err(FlowError::Cancelled { stage: STAGE });
            }
            Some(AbortReason::DeadlineExceeded) => {
                events.push(FlowEvent::BudgetExhausted {
                    stage: STAGE,
                    scope: DeadlineScope::Stage,
                });
                return Err(FlowError::DeadlineExceeded {
                    stage: STAGE,
                    scope: DeadlineScope::Stage,
                });
            }
            None => {}
        }

        match outcome.point {
            Some(char_point) => {
                if !outcome.failures.is_empty() {
                    if policy.is_strict() {
                        let (sample, message) = outcome.failures[0].clone();
                        return Err(FlowError::characterization(
                            STAGE,
                            idx,
                            Some(sample),
                            message,
                        ));
                    }
                    events.push(FlowEvent::SampleFailures {
                        stage: STAGE,
                        point: idx,
                        samples: outcome.failures.iter().map(|(i, _)| *i).collect(),
                        total: mc.samples,
                    });
                }
                points.push(char_point);
            }
            None => {
                let (sample, message) = outcome
                    .failures
                    .first()
                    .cloned()
                    .unwrap_or((usize::MAX, "characterisation produced no samples".into()));
                let sample = (sample != usize::MAX).then_some(sample);
                if policy.is_strict() {
                    return Err(FlowError::characterization(STAGE, idx, sample, message));
                }
                events.push(FlowEvent::PointSkipped {
                    stage: STAGE,
                    point: idx,
                    reason: format!(
                        "{message} ({} of {} samples failed, {} retries)",
                        outcome.failures.len(),
                        mc.samples,
                        attempt
                    ),
                });
                skipped.push(idx);
            }
        }
    }

    if points.len() < policy.min_surviving_points() {
        return Err(FlowError::stage(
            STAGE.name(),
            format!(
                "only {} of {} pareto points survived characterisation \
                 (minimum {}; skipped points: {:?})",
                points.len(),
                front.len(),
                policy.min_surviving_points(),
                skipped
            ),
        ));
    }
    Ok(CharacterizedFront { points })
}

/// Characterises a front under the default degradation policy
/// ([`DegradePolicy::default`]: skip failed points, keep at least the
/// two survivors the table model needs) with no fault injection and a
/// discarded event log. Prefer [`characterize_front_with`] where the
/// event log matters.
///
/// # Errors
///
/// As [`characterize_front_with`].
pub fn characterize_front(
    front: &[Individual],
    testbench: &VcoTestbench,
    engine: &MonteCarlo,
    mc: &McConfig,
) -> Result<CharacterizedFront, FlowError> {
    let mut events = FlowEvents::new();
    characterize_front_with(
        front,
        testbench,
        engine,
        mc,
        DegradePolicy::default(),
        None,
        &mut events,
    )
}

impl CharacterizedFront {
    /// Writes the paper's data files (Listing 1) into `dir`:
    ///
    /// * `kvco_delta.tbl`, `ivco_delta.tbl`, `jvco_delta.tbl`,
    ///   `fmin_delta.tbl`, `fmax_delta.tbl` — 1-D performance → ∆%;
    /// * `data.tbl` — (kvco, ivco) → jvco, the forward performance
    ///   model used by Listing 2;
    /// * `p1_data.tbl` … `p7_data.tbl` — 5-D performance point →
    ///   transistor dimension (the inverse sizing model).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Table`] on I/O failure.
    pub fn write_tbl_files<P: AsRef<Path>>(&self, dir: P) -> Result<(), FlowError> {
        let dir = dir.as_ref();
        let perf_arrays: Vec<[f64; 5]> = self.points.iter().map(|p| p.perf.to_array()).collect();
        let delta_arrays: Vec<[f64; 5]> = self.points.iter().map(|p| p.delta.to_array()).collect();

        for (k, name) in VcoPerf::NAMES.iter().enumerate() {
            let points: Vec<Vec<f64>> = perf_arrays.iter().map(|p| vec![p[k]]).collect();
            let values: Vec<f64> = delta_arrays.iter().map(|d| d[k]).collect();
            write_tbl_file(
                dir.join(format!("{name}_delta.tbl")),
                &points,
                &values,
                &format!("{name} -> delta percent (sigma / mean)"),
            )?;
        }

        // Forward model: (kvco, ivco) -> jvco.
        let ki: Vec<Vec<f64>> = perf_arrays.iter().map(|p| vec![p[0], p[1]]).collect();
        let jv: Vec<f64> = perf_arrays.iter().map(|p| p[2]).collect();
        write_tbl_file(dir.join("data.tbl"), &ki, &jv, "(kvco, ivco) -> jvco")?;

        // Inverse sizing model: 5-D performance -> each parameter.
        let perf5: Vec<Vec<f64>> = perf_arrays.iter().map(|p| p.to_vec()).collect();
        for (idx, name) in VcoSizing::NAMES.iter().enumerate() {
            let values: Vec<f64> = self
                .points
                .iter()
                .map(|p| p.sizing.to_array()[idx])
                .collect();
            write_tbl_file(
                dir.join(format!("p{}_data.tbl", idx + 1)),
                &perf5,
                &values,
                &format!("(kvco, ivco, jvco, fmin, fmax) -> {name}"),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moea::problem::Evaluation;
    use variation::process::ProcessSpec;

    fn fake_front(n: usize) -> Vec<Individual> {
        (0..n)
            .map(|i| {
                let mut sizing = VcoSizing::nominal();
                sizing.wsn = 20e-6 + i as f64 * 10e-6;
                sizing.wsp = 40e-6 + i as f64 * 10e-6;
                let perf = VcoPerf {
                    kvco: 1e9 + i as f64 * 1e8,
                    jvco: 0.3e-12 - i as f64 * 0.02e-12,
                    ivco: 2e-3 + i as f64 * 1e-3,
                    fmin: 0.5e9,
                    fmax: 1.5e9 + i as f64 * 1e8,
                };
                Individual::new(
                    sizing.to_array().to_vec(),
                    Evaluation::feasible(VcoSizingProblem::objectives_of(&perf)),
                )
            })
            .collect()
    }

    #[test]
    fn characterise_small_front_produces_spreads() {
        let front = fake_front(2);
        let tb = VcoTestbench::default();
        let engine = MonteCarlo::new(ProcessSpec::default());
        let mc = McConfig {
            samples: 6,
            seed: 1,
            threads: 2,
        };
        let out = characterize_front(&front, &tb, &engine, &mc).unwrap();
        assert_eq!(out.points.len(), 2);
        for p in &out.points {
            assert!(p.mc_accepted > 0);
            // All spreads non-negative; kvco spread smaller than jvco's
            // is checked at paper scale in the table1 experiment.
            assert!(p.delta.kvco >= 0.0 && p.delta.jvco >= 0.0);
        }
    }

    #[test]
    fn cached_characterisation_is_bit_identical_and_replays_warm() {
        let front = fake_front(2);
        let tb = VcoTestbench::default();
        let engine = MonteCarlo::new(ProcessSpec::default());
        let mc = McConfig {
            samples: 6,
            seed: 1,
            threads: 2,
        };
        let mut events = FlowEvents::new();
        let baseline = characterize_front_with(
            &front,
            &tb,
            &engine,
            &mc,
            DegradePolicy::default(),
            None,
            &mut events,
        )
        .unwrap();

        let cache = EvalCache::<Vec<f64>>::new(1024, evalcache::KeyQuantiser::exact(), 0xabc);
        let mut events = FlowEvents::new();
        let cold = characterize_front_cached(
            &front,
            &tb,
            &engine,
            &mc,
            DegradePolicy::default(),
            None,
            &ExecPolicy::default(),
            Some(&cache),
            &mut events,
        )
        .unwrap();
        assert_eq!(cold, baseline, "cold cached pass must be bit-identical");
        assert_eq!(cache.stats().misses, 12, "2 points x 6 samples simulated");

        let mut events = FlowEvents::new();
        let warm = characterize_front_cached(
            &front,
            &tb,
            &engine,
            &mc,
            DegradePolicy::default(),
            None,
            &ExecPolicy::default(),
            Some(&cache),
            &mut events,
        )
        .unwrap();
        assert_eq!(warm, baseline, "warm cached pass must be bit-identical");
        assert_eq!(
            cache.stats().misses,
            12,
            "the warm pass must re-simulate nothing"
        );
        assert_eq!(cache.stats().hits, 12);
    }

    #[test]
    fn strict_policy_aborts_with_point_and_sample_provenance() {
        let front = fake_front(2);
        let tb = VcoTestbench::default();
        let engine = MonteCarlo::new(ProcessSpec::default());
        let mc = McConfig {
            samples: 4,
            seed: 1,
            threads: 1,
        };
        let faults =
            FaultInjector::new().fail_sample(1, 2, crate::faults::FaultKind::SingularMatrix);
        let mut events = FlowEvents::new();
        let err = characterize_front_with(
            &front,
            &tb,
            &engine,
            &mc,
            DegradePolicy::Strict,
            Some(&faults),
            &mut events,
        )
        .unwrap_err();
        assert_eq!(err.flow_stage(), Some(FlowStage::Characterize));
        assert_eq!(err.point(), Some(1));
        assert_eq!(err.sample(), Some(2));
        assert!(err.to_string().contains("singular"), "{err}");
    }

    #[test]
    fn skip_policy_drops_failed_point_and_records_events() {
        let front = fake_front(3);
        let tb = VcoTestbench::default();
        let engine = MonteCarlo::new(ProcessSpec::default());
        let mc = McConfig {
            samples: 4,
            seed: 1,
            threads: 2,
        };
        // Point 1 fails completely; point 0 loses one sample.
        let faults = FaultInjector::new()
            .fail_point(1, crate::faults::FaultKind::NonConvergence)
            .fail_sample(0, 0, crate::faults::FaultKind::Timeout);
        let mut events = FlowEvents::new();
        let out = characterize_front_with(
            &front,
            &tb,
            &engine,
            &mc,
            DegradePolicy::SkipFailedPoints {
                min_surviving_points: 2,
            },
            Some(&faults),
            &mut events,
        )
        .unwrap();
        assert_eq!(out.points.len(), 2, "point 1 dropped, 0 and 2 survive");
        assert_eq!(events.skipped_points(FlowStage::Characterize), vec![1]);
        // The partial failure on point 0 is recorded, not fatal.
        let partial = events.iter().any(|e| {
            matches!(e, FlowEvent::SampleFailures { point: 0, samples, .. }
                if samples == &vec![0])
        });
        assert!(partial, "sample failure on point 0 must be logged");
        assert_eq!(out.points[0].mc_failed, 1);
        assert_eq!(out.points[0].mc_accepted, 3);
    }

    #[test]
    fn retry_policy_recovers_transient_faults() {
        let front = fake_front(2);
        let tb = VcoTestbench::default();
        let engine = MonteCarlo::new(ProcessSpec::default());
        let mc = McConfig {
            samples: 4,
            seed: 1,
            threads: 1,
        };
        // Point 0 fails wholesale on attempt 0, succeeds on retry.
        let faults = FaultInjector::new()
            .fail_point(0, crate::faults::FaultKind::NonConvergence)
            .transient();
        let mut events = FlowEvents::new();
        let out = characterize_front_with(
            &front,
            &tb,
            &engine,
            &mc,
            DegradePolicy::RetryRelaxed {
                max_retries: 1,
                min_surviving_points: 2,
            },
            Some(&faults),
            &mut events,
        )
        .unwrap();
        assert_eq!(out.points.len(), 2, "retry must recover the point");
        assert!(events.skipped_points(FlowStage::Characterize).is_empty());
        let retried = events.iter().any(|e| {
            matches!(
                e,
                FlowEvent::RetryAttempted {
                    point: 0,
                    attempt: 1,
                    ..
                }
            )
        });
        assert!(retried, "the retry must be logged");
    }

    #[test]
    fn surviving_point_floor_is_enforced() {
        let front = fake_front(2);
        let tb = VcoTestbench::default();
        let engine = MonteCarlo::new(ProcessSpec::default());
        let mc = McConfig {
            samples: 4,
            seed: 1,
            threads: 1,
        };
        let faults = FaultInjector::new()
            .fail_point(0, crate::faults::FaultKind::SingularMatrix)
            .fail_point(1, crate::faults::FaultKind::SingularMatrix);
        let mut events = FlowEvents::new();
        let err = characterize_front_with(
            &front,
            &tb,
            &engine,
            &mc,
            DegradePolicy::default(),
            Some(&faults),
            &mut events,
        )
        .unwrap_err();
        assert!(matches!(err, FlowError::Stage { .. }));
        assert!(err.to_string().contains("0 of 2"), "{err}");
    }

    #[test]
    fn nan_outputs_are_caught_by_validation_not_trusted() {
        // NanOutput *succeeds* with NaN performances — the quietest
        // failure mode. It must surface as a failed sample.
        let front = fake_front(1);
        let tb = VcoTestbench::default();
        let engine = MonteCarlo::new(ProcessSpec::default());
        let mc = McConfig {
            samples: 4,
            seed: 1,
            threads: 1,
        };
        let faults = FaultInjector::new().fail_sample(0, 1, crate::faults::FaultKind::NanOutput);
        let mut events = FlowEvents::new();
        let out = characterize_front_with(
            &front,
            &tb,
            &engine,
            &mc,
            DegradePolicy::SkipFailedPoints {
                min_surviving_points: 1,
            },
            Some(&faults),
            &mut events,
        )
        .unwrap();
        assert_eq!(out.points[0].mc_failed, 1, "NaN sample must not count");
        assert_eq!(out.points[0].mc_accepted, 3);
        assert!(out.points[0].delta.to_array().iter().all(|d| d.is_finite()));
        let logged = events.iter().any(|e| {
            matches!(e, FlowEvent::SampleFailures { point: 0, samples, .. }
                if samples == &vec![1])
        });
        assert!(logged);
    }

    #[test]
    fn empty_front_is_an_error() {
        let tb = VcoTestbench::default();
        let engine = MonteCarlo::new(ProcessSpec::default());
        let mc = McConfig::default();
        assert!(matches!(
            characterize_front(&[], &tb, &engine, &mc),
            Err(FlowError::Stage { .. })
        ));
    }

    #[test]
    fn tbl_files_are_written_and_parse_back() {
        let front = CharacterizedFront {
            points: vec![
                CharPoint {
                    sizing: VcoSizing::nominal(),
                    perf: VcoPerf {
                        kvco: 1e9,
                        jvco: 0.2e-12,
                        ivco: 3e-3,
                        fmin: 0.5e9,
                        fmax: 1.4e9,
                    },
                    delta: VcoDeltas {
                        kvco: 0.4,
                        ivco: 2.8,
                        jvco: 23.0,
                        fmin: 1.0,
                        fmax: 1.2,
                    },
                    mc_accepted: 100,
                    mc_failed: 0,
                },
                CharPoint {
                    sizing: VcoSizing::nominal(),
                    perf: VcoPerf {
                        kvco: 1.5e9,
                        jvco: 0.3e-12,
                        ivco: 5e-3,
                        fmin: 0.6e9,
                        fmax: 1.8e9,
                    },
                    delta: VcoDeltas {
                        kvco: 0.3,
                        ivco: 2.6,
                        jvco: 25.0,
                        fmin: 0.9,
                        fmax: 1.1,
                    },
                    mc_accepted: 100,
                    mc_failed: 0,
                },
            ],
        };
        let dir = std::env::temp_dir().join("hierflow_charmodel_test");
        std::fs::create_dir_all(&dir).unwrap();
        front.write_tbl_files(&dir).unwrap();
        // Files named per Listing 1 exist and parse.
        for name in [
            "kvco_delta.tbl",
            "jvco_delta.tbl",
            "ivco_delta.tbl",
            "fmin_delta.tbl",
            "fmax_delta.tbl",
            "data.tbl",
            "p1_data.tbl",
            "p7_data.tbl",
        ] {
            let data = tablemodel::tbl_io::read_tbl_file(dir.join(name))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(data.len(), 2, "{name}");
        }
        // p-tables key on all five performances.
        let p1 = tablemodel::tbl_io::read_tbl_file(dir.join("p1_data.tbl")).unwrap();
        assert_eq!(p1.dim(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
