//! Pareto-front characterisation: Monte-Carlo spreads per optimal
//! solution (paper §3.3/§4.3, producing Table 1) and `.tbl` emission
//! (Listing 1).

use std::path::Path;

use moea::problem::Individual;
use netlist::topology::VcoSizing;
use serde::{Deserialize, Serialize};
use tablemodel::tbl_io::write_tbl_file;
use variation::mc::{McConfig, MonteCarlo};

use crate::error::FlowError;
use crate::vco_eval::{VcoPerf, VcoTestbench};
use crate::vco_problem::VcoSizingProblem;

/// Relative spreads (the paper's ∆ columns, `σ/µ` in percent) of the
/// five VCO performances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcoDeltas {
    /// ∆Kvco (%).
    pub kvco: f64,
    /// ∆Ivco (%).
    pub ivco: f64,
    /// ∆Jvco (%).
    pub jvco: f64,
    /// ∆fmin (%).
    pub fmin: f64,
    /// ∆fmax (%).
    pub fmax: f64,
}

impl VcoDeltas {
    /// Packs in the canonical (kvco, ivco, jvco, fmin, fmax) order.
    pub fn to_array(&self) -> [f64; 5] {
        [self.kvco, self.ivco, self.jvco, self.fmin, self.fmax]
    }
}

/// One characterised Pareto point: sizing, nominal performance and
/// Monte-Carlo spreads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharPoint {
    /// Transistor sizing (the paper's p1…p7).
    pub sizing: VcoSizing,
    /// Nominal performance.
    pub perf: VcoPerf,
    /// Relative spreads from Monte Carlo.
    pub delta: VcoDeltas,
    /// Monte-Carlo samples that evaluated successfully.
    pub mc_accepted: usize,
    /// Monte-Carlo samples that failed (circuit stopped oscillating —
    /// itself a yield signal).
    pub mc_failed: usize,
}

/// The characterised Pareto front: the combined performance + variation
/// model's raw data.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CharacterizedFront {
    /// Characterised points.
    pub points: Vec<CharPoint>,
}

/// Characterises every Pareto-front individual: for each one, a
/// `mc.samples`-sample Monte Carlo re-measures the five performances on
/// perturbed circuits and records the relative spreads.
///
/// # Errors
///
/// Returns [`FlowError::Stage`] when the front is empty or every MC
/// sample of a point fails.
pub fn characterize_front(
    front: &[Individual],
    testbench: &VcoTestbench,
    engine: &MonteCarlo,
    mc: &McConfig,
) -> Result<CharacterizedFront, FlowError> {
    if front.is_empty() {
        return Err(FlowError::stage("characterise", "empty pareto front"));
    }
    let mut points = Vec::with_capacity(front.len());
    for ind in front {
        let sizing = VcoSizing::from_array(&ind.x);
        let nominal = VcoSizingProblem::perf_of(&ind.objectives);
        let ring = testbench.build(&sizing);
        let run = engine.run(&ring.circuit, mc, |_i, perturbed| {
            testbench
                .evaluate_circuit(perturbed, &ring)
                .ok()
                .map(|p| p.to_array().to_vec())
        });
        if run.accepted == 0 {
            return Err(FlowError::stage(
                "characterise",
                format!(
                    "all {} monte-carlo samples failed for sizing {:?}",
                    mc.samples, sizing
                ),
            ));
        }
        let delta_of = |k: usize| run.delta_percent(k).unwrap_or(0.0);
        points.push(CharPoint {
            sizing,
            perf: nominal,
            delta: VcoDeltas {
                kvco: delta_of(0),
                ivco: delta_of(1),
                jvco: delta_of(2),
                fmin: delta_of(3),
                fmax: delta_of(4),
            },
            mc_accepted: run.accepted,
            mc_failed: run.failed,
        });
    }
    Ok(CharacterizedFront { points })
}

impl CharacterizedFront {
    /// Writes the paper's data files (Listing 1) into `dir`:
    ///
    /// * `kvco_delta.tbl`, `ivco_delta.tbl`, `jvco_delta.tbl`,
    ///   `fmin_delta.tbl`, `fmax_delta.tbl` — 1-D performance → ∆%;
    /// * `data.tbl` — (kvco, ivco) → jvco, the forward performance
    ///   model used by Listing 2;
    /// * `p1_data.tbl` … `p7_data.tbl` — 5-D performance point →
    ///   transistor dimension (the inverse sizing model).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Table`] on I/O failure.
    pub fn write_tbl_files<P: AsRef<Path>>(&self, dir: P) -> Result<(), FlowError> {
        let dir = dir.as_ref();
        let perf_arrays: Vec<[f64; 5]> = self.points.iter().map(|p| p.perf.to_array()).collect();
        let delta_arrays: Vec<[f64; 5]> =
            self.points.iter().map(|p| p.delta.to_array()).collect();

        for (k, name) in VcoPerf::NAMES.iter().enumerate() {
            let points: Vec<Vec<f64>> = perf_arrays.iter().map(|p| vec![p[k]]).collect();
            let values: Vec<f64> = delta_arrays.iter().map(|d| d[k]).collect();
            write_tbl_file(
                dir.join(format!("{name}_delta.tbl")),
                &points,
                &values,
                &format!("{name} -> delta percent (sigma / mean)"),
            )?;
        }

        // Forward model: (kvco, ivco) -> jvco.
        let ki: Vec<Vec<f64>> = perf_arrays.iter().map(|p| vec![p[0], p[1]]).collect();
        let jv: Vec<f64> = perf_arrays.iter().map(|p| p[2]).collect();
        write_tbl_file(dir.join("data.tbl"), &ki, &jv, "(kvco, ivco) -> jvco")?;

        // Inverse sizing model: 5-D performance -> each parameter.
        let perf5: Vec<Vec<f64>> = perf_arrays.iter().map(|p| p.to_vec()).collect();
        for (idx, name) in VcoSizing::NAMES.iter().enumerate() {
            let values: Vec<f64> = self
                .points
                .iter()
                .map(|p| p.sizing.to_array()[idx])
                .collect();
            write_tbl_file(
                dir.join(format!("p{}_data.tbl", idx + 1)),
                &perf5,
                &values,
                &format!("(kvco, ivco, jvco, fmin, fmax) -> {name}"),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moea::problem::Evaluation;
    use variation::process::ProcessSpec;

    fn fake_front(n: usize) -> Vec<Individual> {
        (0..n)
            .map(|i| {
                let mut sizing = VcoSizing::nominal();
                sizing.wsn = 20e-6 + i as f64 * 10e-6;
                sizing.wsp = 40e-6 + i as f64 * 10e-6;
                let perf = VcoPerf {
                    kvco: 1e9 + i as f64 * 1e8,
                    jvco: 0.3e-12 - i as f64 * 0.02e-12,
                    ivco: 2e-3 + i as f64 * 1e-3,
                    fmin: 0.5e9,
                    fmax: 1.5e9 + i as f64 * 1e8,
                };
                Individual::new(
                    sizing.to_array().to_vec(),
                    Evaluation::feasible(VcoSizingProblem::objectives_of(&perf)),
                )
            })
            .collect()
    }

    #[test]
    fn characterise_small_front_produces_spreads() {
        let front = fake_front(2);
        let tb = VcoTestbench::default();
        let engine = MonteCarlo::new(ProcessSpec::default());
        let mc = McConfig {
            samples: 6,
            seed: 1,
            threads: 2,
        };
        let out = characterize_front(&front, &tb, &engine, &mc).unwrap();
        assert_eq!(out.points.len(), 2);
        for p in &out.points {
            assert!(p.mc_accepted > 0);
            // All spreads non-negative; kvco spread smaller than jvco's
            // is checked at paper scale in the table1 experiment.
            assert!(p.delta.kvco >= 0.0 && p.delta.jvco >= 0.0);
        }
    }

    #[test]
    fn empty_front_is_an_error() {
        let tb = VcoTestbench::default();
        let engine = MonteCarlo::new(ProcessSpec::default());
        let mc = McConfig::default();
        assert!(matches!(
            characterize_front(&[], &tb, &engine, &mc),
            Err(FlowError::Stage { .. })
        ));
    }

    #[test]
    fn tbl_files_are_written_and_parse_back() {
        let front = CharacterizedFront {
            points: vec![
                CharPoint {
                    sizing: VcoSizing::nominal(),
                    perf: VcoPerf {
                        kvco: 1e9,
                        jvco: 0.2e-12,
                        ivco: 3e-3,
                        fmin: 0.5e9,
                        fmax: 1.4e9,
                    },
                    delta: VcoDeltas {
                        kvco: 0.4,
                        ivco: 2.8,
                        jvco: 23.0,
                        fmin: 1.0,
                        fmax: 1.2,
                    },
                    mc_accepted: 100,
                    mc_failed: 0,
                },
                CharPoint {
                    sizing: VcoSizing::nominal(),
                    perf: VcoPerf {
                        kvco: 1.5e9,
                        jvco: 0.3e-12,
                        ivco: 5e-3,
                        fmin: 0.6e9,
                        fmax: 1.8e9,
                    },
                    delta: VcoDeltas {
                        kvco: 0.3,
                        ivco: 2.6,
                        jvco: 25.0,
                        fmin: 0.9,
                        fmax: 1.1,
                    },
                    mc_accepted: 100,
                    mc_failed: 0,
                },
            ],
        };
        let dir = std::env::temp_dir().join("hierflow_charmodel_test");
        std::fs::create_dir_all(&dir).unwrap();
        front.write_tbl_files(&dir).unwrap();
        // Files named per Listing 1 exist and parse.
        for name in [
            "kvco_delta.tbl",
            "jvco_delta.tbl",
            "ivco_delta.tbl",
            "fmin_delta.tbl",
            "fmax_delta.tbl",
            "data.tbl",
            "p1_data.tbl",
            "p7_data.tbl",
        ] {
            let data = tablemodel::tbl_io::read_tbl_file(dir.join(name))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(data.len(), 2, "{name}");
        }
        // p-tables key on all five performances.
        let p1 = tablemodel::tbl_io::read_tbl_file(dir.join("p1_data.tbl")).unwrap();
        assert_eq!(p1.dim(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
