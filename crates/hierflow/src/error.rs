//! Flow-level error type.

use std::fmt;

use crate::events::FlowStage;

/// Errors surfaced by the hierarchical flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Transistor-level simulation failed.
    Sim(spicesim::SimError),
    /// Table-model construction or lookup failed.
    Table(tablemodel::TableModelError),
    /// Behavioural PLL simulation failed.
    Pll(behavioral::timesim::SimulatePllError),
    /// A flow stage could not proceed (e.g. empty Pareto front).
    Stage {
        /// Stage name.
        stage: &'static str,
        /// Description of the problem.
        message: String,
    },
    /// A characterisation evaluation failed, with full provenance: the
    /// stage, the Pareto-point index within the (thinned) front, and —
    /// when a single Monte-Carlo sample is at fault — the sample index.
    Characterization {
        /// The stage that failed.
        stage: FlowStage,
        /// Index of the Pareto point within the thinned front.
        point: usize,
        /// Index of the failing Monte-Carlo sample, when attributable
        /// to one sample (`None` when the whole point failed).
        sample: Option<usize>,
        /// Description of the failure.
        message: String,
    },
    /// A checkpoint artifact could not be written, read or trusted.
    Checkpoint {
        /// Path of the offending file or directory.
        path: String,
        /// Description of the problem.
        message: String,
    },
    /// The run's cancellation token fired. Completed stages are already
    /// checkpointed; [`HierarchicalFlow::resume`](crate::flow::HierarchicalFlow::resume)
    /// picks the run back up.
    Cancelled {
        /// The stage that observed the cancellation.
        stage: FlowStage,
    },
    /// A stage or whole-run wall-clock budget expired. Completed stages
    /// are already checkpointed; the run is resumable.
    DeadlineExceeded {
        /// The stage that observed the expiry.
        stage: FlowStage,
        /// Which budget scope expired.
        scope: crate::events::DeadlineScope,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Sim(e) => write!(f, "simulation: {e}"),
            FlowError::Table(e) => write!(f, "table model: {e}"),
            FlowError::Pll(e) => write!(f, "pll simulation: {e}"),
            FlowError::Stage { stage, message } => write!(f, "{stage} stage: {message}"),
            FlowError::Characterization {
                stage,
                point,
                sample,
                message,
            } => {
                write!(f, "{stage} stage: point {point}")?;
                if let Some(s) = sample {
                    write!(f, ", sample {s}")?;
                }
                write!(f, ": {message}")
            }
            FlowError::Checkpoint { path, message } => {
                write!(f, "checkpoint {path}: {message}")
            }
            FlowError::Cancelled { stage } => {
                write!(
                    f,
                    "{stage} stage: run cancelled (checkpoints preserved; resume to continue)"
                )
            }
            FlowError::DeadlineExceeded { stage, scope } => {
                write!(
                    f,
                    "{stage} stage: {scope} deadline exceeded \
                     (checkpoints preserved; resume to continue)"
                )
            }
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Sim(e) => Some(e),
            FlowError::Table(e) => Some(e),
            FlowError::Pll(e) => Some(e),
            FlowError::Stage { .. }
            | FlowError::Characterization { .. }
            | FlowError::Checkpoint { .. }
            | FlowError::Cancelled { .. }
            | FlowError::DeadlineExceeded { .. } => None,
        }
    }
}

impl From<spicesim::SimError> for FlowError {
    fn from(e: spicesim::SimError) -> Self {
        FlowError::Sim(e)
    }
}

impl From<tablemodel::TableModelError> for FlowError {
    fn from(e: tablemodel::TableModelError) -> Self {
        FlowError::Table(e)
    }
}

impl From<behavioral::timesim::SimulatePllError> for FlowError {
    fn from(e: behavioral::timesim::SimulatePllError) -> Self {
        FlowError::Pll(e)
    }
}

impl FlowError {
    /// Convenience constructor for stage errors.
    pub fn stage(stage: &'static str, message: impl Into<String>) -> Self {
        FlowError::Stage {
            stage,
            message: message.into(),
        }
    }

    /// Convenience constructor for characterisation errors with
    /// point/sample provenance.
    pub fn characterization(
        stage: FlowStage,
        point: usize,
        sample: Option<usize>,
        message: impl Into<String>,
    ) -> Self {
        FlowError::Characterization {
            stage,
            point,
            sample,
            message: message.into(),
        }
    }

    /// Convenience constructor for checkpoint errors.
    pub fn checkpoint(path: impl Into<String>, message: impl Into<String>) -> Self {
        FlowError::Checkpoint {
            path: path.into(),
            message: message.into(),
        }
    }

    /// The failing stage, when the error knows one.
    pub fn flow_stage(&self) -> Option<FlowStage> {
        match self {
            FlowError::Characterization { stage, .. }
            | FlowError::Cancelled { stage }
            | FlowError::DeadlineExceeded { stage, .. } => Some(*stage),
            _ => None,
        }
    }

    /// Whether this error left the run in a resumable state: the stages
    /// completed so far are checkpointed and
    /// [`HierarchicalFlow::resume`](crate::flow::HierarchicalFlow::resume)
    /// continues from them (true for cancellations and expired
    /// deadlines).
    pub fn is_resumable_interruption(&self) -> bool {
        matches!(
            self,
            FlowError::Cancelled { .. } | FlowError::DeadlineExceeded { .. }
        )
    }

    /// The failing Pareto-point index, when the error carries one.
    pub fn point(&self) -> Option<usize> {
        match self {
            FlowError::Characterization { point, .. } => Some(*point),
            _ => None,
        }
    }

    /// The failing Monte-Carlo sample index, when attributable.
    pub fn sample(&self) -> Option<usize> {
        match self {
            FlowError::Characterization { sample, .. } => *sample,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: FlowError = spicesim::SimError::Singular { analysis: "dc" }.into();
        assert!(e.to_string().contains("dc"));
        let e = FlowError::stage("characterise", "empty front");
        assert!(e.to_string().contains("characterise"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowError>();
    }

    #[test]
    fn characterization_error_carries_provenance() {
        let e = FlowError::characterization(
            FlowStage::Characterize,
            3,
            Some(17),
            "injected singular matrix",
        );
        assert_eq!(e.flow_stage(), Some(FlowStage::Characterize));
        assert_eq!(e.point(), Some(3));
        assert_eq!(e.sample(), Some(17));
        let text = e.to_string();
        assert!(text.contains("characterise"));
        assert!(text.contains("point 3"));
        assert!(text.contains("sample 17"));

        let whole_point =
            FlowError::characterization(FlowStage::Characterize, 1, None, "whole point lost");
        assert_eq!(whole_point.sample(), None);
        assert!(!whole_point.to_string().contains("sample"));
        assert!(whole_point.to_string().contains("point 1"));
    }

    #[test]
    fn interruption_errors_carry_stage_and_resumability() {
        let c = FlowError::Cancelled {
            stage: FlowStage::Characterize,
        };
        assert!(c.is_resumable_interruption());
        assert_eq!(c.flow_stage(), Some(FlowStage::Characterize));
        assert!(c.to_string().contains("resume"), "{c}");

        let d = FlowError::DeadlineExceeded {
            stage: FlowStage::SystemOpt,
            scope: crate::events::DeadlineScope::Run,
        };
        assert!(d.is_resumable_interruption());
        assert_eq!(d.flow_stage(), Some(FlowStage::SystemOpt));
        assert!(d.to_string().contains("deadline exceeded"), "{d}");

        let s = FlowError::stage("verify", "broken");
        assert!(!s.is_resumable_interruption());
    }

    #[test]
    fn checkpoint_error_names_path() {
        let e = FlowError::checkpoint("/tmp/run/stage1_front.json", "corrupt json");
        assert!(e.to_string().contains("stage1_front.json"));
        assert_eq!(e.point(), None);
    }
}
