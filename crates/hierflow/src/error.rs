//! Flow-level error type.

use std::fmt;

/// Errors surfaced by the hierarchical flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Transistor-level simulation failed.
    Sim(spicesim::SimError),
    /// Table-model construction or lookup failed.
    Table(tablemodel::TableModelError),
    /// Behavioural PLL simulation failed.
    Pll(behavioral::timesim::SimulatePllError),
    /// A flow stage could not proceed (e.g. empty Pareto front).
    Stage {
        /// Stage name.
        stage: &'static str,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Sim(e) => write!(f, "simulation: {e}"),
            FlowError::Table(e) => write!(f, "table model: {e}"),
            FlowError::Pll(e) => write!(f, "pll simulation: {e}"),
            FlowError::Stage { stage, message } => write!(f, "{stage} stage: {message}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Sim(e) => Some(e),
            FlowError::Table(e) => Some(e),
            FlowError::Pll(e) => Some(e),
            FlowError::Stage { .. } => None,
        }
    }
}

impl From<spicesim::SimError> for FlowError {
    fn from(e: spicesim::SimError) -> Self {
        FlowError::Sim(e)
    }
}

impl From<tablemodel::TableModelError> for FlowError {
    fn from(e: tablemodel::TableModelError) -> Self {
        FlowError::Table(e)
    }
}

impl From<behavioral::timesim::SimulatePllError> for FlowError {
    fn from(e: behavioral::timesim::SimulatePllError) -> Self {
        FlowError::Pll(e)
    }
}

impl FlowError {
    /// Convenience constructor for stage errors.
    pub fn stage(stage: &'static str, message: impl Into<String>) -> Self {
        FlowError::Stage {
            stage,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: FlowError = spicesim::SimError::Singular { analysis: "dc" }.into();
        assert!(e.to_string().contains("dc"));
        let e = FlowError::stage("characterise", "empty front");
        assert!(e.to_string().contains("characterise"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowError>();
    }
}
