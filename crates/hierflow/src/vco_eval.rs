//! Transistor-level VCO evaluation: the testbench behind both the
//! circuit-level optimisation and the Monte-Carlo characterisation.

use netlist::topology::{build_ring_vco, RingVco, VcoSizing};
use netlist::{Circuit, Device, SourceWaveform};
use serde::{Deserialize, Serialize};
use spicesim::measure::{measure_oscillator, OscConfig};
use spicesim::noise::{analytic_ring_jitter, measure_period_jitter, DEFAULT_JITTER_CALIBRATION};
use spicesim::SimOptions;

use crate::error::FlowError;

/// The five VCO performance functions of the paper (§4.1): gain, jitter,
/// current, minimum and maximum frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcoPerf {
    /// VCO gain Kvco (Hz/V).
    pub kvco: f64,
    /// Period jitter (s).
    pub jvco: f64,
    /// Supply current at the top of the tuning range (A).
    pub ivco: f64,
    /// Frequency at the lowest control voltage (Hz).
    pub fmin: f64,
    /// Frequency at the highest control voltage (Hz).
    pub fmax: f64,
}

impl VcoPerf {
    /// Packs the performances in the canonical (kvco, ivco, jvco, fmin,
    /// fmax) order used by the paper's 5-input p-tables.
    pub fn to_array(&self) -> [f64; 5] {
        [self.kvco, self.ivco, self.jvco, self.fmin, self.fmax]
    }

    /// Unpacks an array packed by [`VcoPerf::to_array`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 5`.
    pub fn from_array(x: &[f64]) -> Self {
        assert_eq!(x.len(), 5, "vco perf has five entries");
        VcoPerf {
            kvco: x[0],
            ivco: x[1],
            jvco: x[2],
            fmin: x[3],
            fmax: x[4],
        }
    }

    /// Names of the performance functions, in array order.
    pub const NAMES: [&'static str; 5] = ["kvco", "ivco", "jvco", "fmin", "fmax"];

    /// Whether every performance value is finite. A measurement can
    /// return NaN without erroring (e.g. a degenerate waveform fit);
    /// consumers must validate before treating the result as data.
    pub fn is_finite(&self) -> bool {
        self.to_array().iter().all(|v| v.is_finite())
    }
}

/// How jitter is extracted during evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JitterMode {
    /// Fast first-order analytic estimator (default inside optimisation
    /// loops; calibrated against the noise transient).
    Analytic,
    /// Thermal-noise-injected transient measurement over this many
    /// periods — the accurate (and expensive) route; its estimator
    /// variance is also what gives the paper-scale ∆Jvco spreads.
    NoiseTransient {
        /// Periods to measure.
        periods: usize,
        /// Noise seed.
        seed: u64,
    },
}

/// The VCO testbench: everything needed to evaluate a sizing — or a
/// statistically perturbed copy of its circuit — at transistor level.
#[derive(Debug, Clone)]
pub struct VcoTestbench {
    /// Ring stage count (paper: 5).
    pub stages: usize,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Lower end of the control-voltage range (V).
    pub vctrl_lo: f64,
    /// Upper end of the control-voltage range (V).
    pub vctrl_hi: f64,
    /// Oscillator measurement settings.
    pub osc: OscConfig,
    /// Simulator numerical options.
    pub sim: SimOptions,
    /// Jitter extraction mode.
    pub jitter: JitterMode,
    /// Calibration factor for the analytic jitter estimator.
    pub jitter_calibration: f64,
}

impl Default for VcoTestbench {
    fn default() -> Self {
        VcoTestbench {
            stages: 5,
            vdd: 1.2,
            vctrl_lo: 0.5,
            vctrl_hi: 1.2,
            osc: OscConfig::default(),
            sim: SimOptions::default(),
            jitter: JitterMode::Analytic,
            jitter_calibration: DEFAULT_JITTER_CALIBRATION,
        }
    }
}

impl VcoTestbench {
    /// Builds the testbench circuit for a sizing (control source at the
    /// high end; measurements retune it in place).
    pub fn build(&self, sizing: &VcoSizing) -> RingVco {
        build_ring_vco(sizing, self.stages, self.vdd, self.vctrl_hi)
    }

    /// Evaluates a sizing from scratch (builds the circuit, then
    /// measures).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Sim`] when the circuit fails to oscillate or
    /// a transient diverges.
    pub fn evaluate_sizing(&self, sizing: &VcoSizing) -> Result<VcoPerf, FlowError> {
        let ring = self.build(sizing);
        self.evaluate_circuit(&ring.circuit, &ring)
    }

    /// Evaluates a (possibly perturbed) copy of a testbench circuit.
    /// `handles` must come from the [`VcoTestbench::build`] call that
    /// produced the circuit `circuit` was cloned from — node and device
    /// ids are stable across cloning and statistical perturbation.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Sim`] when any measurement fails.
    pub fn evaluate_circuit(
        &self,
        circuit: &Circuit,
        handles: &RingVco,
    ) -> Result<VcoPerf, FlowError> {
        let mut work = circuit.clone();

        // fmax + current at the top of the range.
        set_dc(&mut work, handles, self.vctrl_hi);
        let hi = measure_oscillator(
            &work,
            handles.out,
            handles.vdd_source,
            &self.osc,
            &self.sim,
            None,
        )?;

        // fmin at the bottom of the range.
        set_dc(&mut work, handles, self.vctrl_lo);
        let lo = measure_oscillator(
            &work,
            handles.out,
            handles.vdd_source,
            &self.osc,
            &self.sim,
            None,
        )?;

        // Gain as the full-range tuning slope, matching the paper's
        // Kvco magnitudes (Table 1: 373–2280 MHz/V). Note the resulting
        // ∆Kvco carries the near-threshold fmin sensitivity of the
        // square-law model — see EXPERIMENTS.md for the discussion.
        let kvco = (hi.freq - lo.freq) / (self.vctrl_hi - self.vctrl_lo);
        if kvco <= 0.0 {
            return Err(FlowError::Sim(spicesim::SimError::Measurement {
                message: format!(
                    "non-positive vco gain: f({}) = {:.3e}, f({}) = {:.3e}",
                    self.vctrl_lo, lo.freq, self.vctrl_hi, hi.freq
                ),
            }));
        }

        // Jitter at the top of the range (where the paper's spec bites).
        set_dc(&mut work, handles, self.vctrl_hi);
        let jvco = match self.jitter {
            JitterMode::Analytic => {
                let c_load = stage_load_cap(&work)?;
                let gamma = stage_gamma(&work);
                analytic_ring_jitter(
                    self.stages,
                    c_load,
                    gamma,
                    hi.freq,
                    self.vdd,
                    self.jitter_calibration,
                )
            }
            JitterMode::NoiseTransient { periods, seed } => {
                measure_period_jitter(
                    &work,
                    handles.out,
                    handles.vdd_source,
                    periods,
                    seed,
                    &self.sim,
                )?
                .sigma
            }
        };

        Ok(VcoPerf {
            kvco,
            jvco,
            ivco: hi.avg_supply_current,
            fmin: lo.freq,
            fmax: hi.freq,
        })
    }
}

/// Sets the control-voltage source of a testbench circuit.
fn set_dc(circuit: &mut Circuit, handles: &RingVco, value: f64) {
    match circuit.device_mut(handles.vctrl_source) {
        Device::VSource { waveform, .. } => *waveform = SourceWaveform::Dc(value),
        _ => unreachable!("vctrl handle points at a voltage source"),
    }
}

/// Reads the per-stage load capacitance back from the circuit (device
/// `Cl0`), so perturbed circuits and sizings stay consistent.
fn stage_load_cap(circuit: &Circuit) -> Result<f64, FlowError> {
    let id = circuit
        .find_device("Cl0")
        .ok_or_else(|| FlowError::stage("evaluate", "testbench circuit lacks Cl0"))?;
    match circuit.device(id) {
        Device::Capacitor { value, .. } => Ok(*value),
        _ => Err(FlowError::stage("evaluate", "Cl0 is not a capacitor")),
    }
}

/// Thermal-noise excess factor of the inverter devices (post
/// perturbation).
fn stage_gamma(circuit: &Circuit) -> f64 {
    circuit
        .find_device("Mn0")
        .map(|id| match circuit.device(id) {
            Device::Mos(m) => m.model.gamma_noise,
            _ => 1.5,
        })
        .unwrap_or(1.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_sizing_evaluates_with_sane_magnitudes() {
        let tb = VcoTestbench::default();
        let perf = tb.evaluate_sizing(&VcoSizing::nominal()).unwrap();
        assert!(perf.fmax > perf.fmin, "range must be positive");
        assert!(
            (1e8..1e10).contains(&perf.fmax),
            "fmax {:.3e} out of band",
            perf.fmax
        );
        assert!(
            (1e8..5e9).contains(&perf.kvco),
            "kvco {:.3e} outside the paper's magnitude window",
            perf.kvco
        );
        assert!(
            (1e-4..5e-2).contains(&perf.ivco),
            "ivco {:.3e} implausible",
            perf.ivco
        );
        assert!(
            (1e-15..5e-12).contains(&perf.jvco),
            "jvco {:.3e} implausible",
            perf.jvco
        );
    }

    #[test]
    fn perf_array_round_trip() {
        let p = VcoPerf {
            kvco: 1e9,
            jvco: 0.2e-12,
            ivco: 4e-3,
            fmin: 0.5e9,
            fmax: 1.5e9,
        };
        assert_eq!(VcoPerf::from_array(&p.to_array()), p);
    }

    #[test]
    fn wider_inverters_draw_more_current() {
        let tb = VcoTestbench::default();
        let base = tb.evaluate_sizing(&VcoSizing::nominal()).unwrap();
        let mut big = VcoSizing::nominal();
        big.wsn *= 1.8;
        big.wsp *= 1.8;
        let more = tb.evaluate_sizing(&big).unwrap();
        assert!(
            more.ivco > base.ivco,
            "wider starve devices must draw more: {} vs {}",
            more.ivco,
            base.ivco
        );
    }

    #[test]
    fn evaluate_circuit_accepts_perturbed_clone() {
        let tb = VcoTestbench::default();
        let ring = tb.build(&VcoSizing::nominal());
        let mut perturbed = ring.circuit.clone();
        // Shift every NMOS threshold up 30 mV: frequency must drop.
        let ids: Vec<_> = perturbed.devices().map(|(id, _)| id).collect();
        for id in ids {
            if let Device::Mos(m) = perturbed.device_mut(id) {
                if m.model.polarity == netlist::MosPolarity::Nmos {
                    m.model.vto += 0.03;
                }
            }
        }
        let nominal = tb.evaluate_circuit(&ring.circuit, &ring).unwrap();
        let shifted = tb.evaluate_circuit(&perturbed, &ring).unwrap();
        assert!(
            shifted.fmax < nominal.fmax,
            "higher thresholds must slow the ring: {:.3e} vs {:.3e}",
            shifted.fmax,
            nominal.fmax
        );
    }
}
