//! System-level PLL optimisation (paper §4.5, Table 2): NSGA-II over
//! (Kvco, Ivco, C1, C2, R1) with the VCO's combined performance +
//! variation model in the loop.

use std::sync::Arc;

use behavioral::jitter::jitter_summary;
use behavioral::linear::LoopAnalysis;
use behavioral::params::{PllParams, PLL_FIXED_CURRENT};
use behavioral::spec::PllSpec;
use behavioral::timesim::{simulate_lock, LockSimConfig};
use moea::problem::{Evaluation, Problem};
use serde::{Deserialize, Serialize};

use crate::error::FlowError;
use crate::model::{PerfVariationModel, VcoQuery};

/// Fixed PLL architecture around the optimised components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PllArchitecture {
    /// Reference frequency (Hz).
    pub fref: f64,
    /// Divider ratio (output = N·fref).
    pub divider: u32,
    /// Charge-pump current (A).
    pub icp: f64,
    /// Bottom of the VCO control range (V) — matches the testbench.
    pub vctrl_lo: f64,
    /// Top of the VCO control range (V).
    pub vctrl_hi: f64,
}

impl Default for PllArchitecture {
    fn default() -> Self {
        PllArchitecture {
            fref: 50e6,
            divider: 18,
            icp: 50e-6,
            vctrl_lo: 0.5,
            vctrl_hi: 1.2,
        }
    }
}

/// One Table-2 row: the system-level designables plus every performance
/// with its nominal/min/max values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemSolution {
    /// VCO gain designable (Hz/V) with corners.
    pub kvco: f64,
    /// Minimum-corner gain.
    pub kvco_min: f64,
    /// Maximum-corner gain.
    pub kvco_max: f64,
    /// VCO current designable (A) with corners.
    pub ivco: f64,
    /// Minimum-corner current.
    pub ivco_min: f64,
    /// Maximum-corner current.
    pub ivco_max: f64,
    /// Loop-filter C1 (F).
    pub c1: f64,
    /// Loop-filter C2 (F).
    pub c2: f64,
    /// Loop-filter R1 (Ω).
    pub r1: f64,
    /// Lock time (s), nominal corner.
    pub lock_time: f64,
    /// Worst lock time across the variation corners (s).
    pub lock_time_worst: f64,
    /// Output jitter sum (s) with corners.
    pub jitter: f64,
    /// Minimum-corner jitter.
    pub jitter_min: f64,
    /// Maximum-corner jitter.
    pub jitter_max: f64,
    /// Total PLL current (A) with corners.
    pub current: f64,
    /// Minimum-corner current.
    pub current_min: f64,
    /// Maximum-corner current.
    pub current_max: f64,
    /// Whether all specs (including corners) pass.
    pub meets_spec: bool,
}

/// The system-level optimisation problem.
pub struct PllSystemProblem {
    model: Arc<PerfVariationModel>,
    arch: PllArchitecture,
    spec: PllSpec,
    sim_cfg: LockSimConfig,
    bounds: [(f64, f64); 5],
}

impl PllSystemProblem {
    /// Creates the problem; variable bounds for (kvco, ivco) come from
    /// the model's Pareto-cloud domain, the loop-filter bounds are the
    /// engineering ranges of the paper's Table 2 scaled to this
    /// architecture.
    pub fn new(
        model: Arc<PerfVariationModel>,
        arch: PllArchitecture,
        spec: PllSpec,
        sim_cfg: LockSimConfig,
    ) -> Self {
        let dom = model.design_domain();
        let bounds = [
            dom[0],           // kvco
            dom[1],           // ivco
            (5e-12, 50e-12),  // c1
            (0.5e-12, 5e-12), // c2
            (1e3, 10e3),      // r1
        ];
        PllSystemProblem {
            model,
            arch,
            spec,
            sim_cfg,
            bounds,
        }
    }

    /// The architecture in use.
    pub fn architecture(&self) -> &PllArchitecture {
        &self.arch
    }

    /// The spec window in use.
    pub fn spec(&self) -> &PllSpec {
        &self.spec
    }

    /// Warm-start candidates for the system GA: every characterised
    /// design paired with a small grid of loop-filter variants. The
    /// trusted region of the model is a set of islands around the
    /// characterised points — seeding there turns a needle search into
    /// a refinement.
    pub fn warm_start_seeds(&self) -> Vec<Vec<f64>> {
        let mut seeds = Vec::new();
        for p in self.model.points() {
            for (c1, r1) in [(10e-12, 8e3), (20e-12, 6e3), (30e-12, 4e3)] {
                seeds.push(vec![p.perf.kvco, p.perf.ivco, c1, 2e-12, r1]);
            }
        }
        seeds
    }

    /// Builds the behavioural parameter bundle for one VCO corner.
    fn params_for(&self, q: &VcoQuery, kvco: f64, ivco: f64, jvco: f64) -> PllParams {
        let vctrl_ref = 0.5 * (self.arch.vctrl_lo + self.arch.vctrl_hi);
        PllParams {
            fref: self.arch.fref,
            divider: self.arch.divider,
            icp: self.arch.icp,
            c1: 0.0, // filled by caller
            c2: 0.0,
            r1: 0.0,
            kvco,
            f0: 0.5 * (q.fmin + q.fmax),
            vctrl_ref,
            fmin: q.fmin,
            fmax: q.fmax,
            ivco,
            jvco,
        }
    }

    /// Full corner-aware evaluation of a candidate, producing the
    /// Table-2 row. Used both inside `evaluate` and to print selected
    /// solutions.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] when the design point is outside the model
    /// domain or the loop cannot lock at some corner.
    pub fn detail(&self, x: &[f64]) -> Result<SystemSolution, FlowError> {
        assert_eq!(x.len(), 5, "five system-level designables");
        let (kvco, ivco, c1, c2, r1) = (x[0], x[1], x[2], x[3], x[4]);
        let q = self.model.query(kvco, ivco)?;

        let jit = jitter_summary(
            q.jvco,
            q.jvco_min.min(q.jvco),
            q.jvco_max.max(q.jvco),
            self.arch.divider,
        );

        // Lock transient at the three gain corners.
        let mut lock_times = [f64::INFINITY; 3];
        for (slot, (k, i, j)) in [
            (q.kvco, q.ivco, q.jvco),
            (q.kvco_min, q.ivco_min, q.jvco_max),
            (q.kvco_max, q.ivco_max, q.jvco_min),
        ]
        .iter()
        .enumerate()
        {
            let mut p = self.params_for(&q, *k, *i, *j);
            p.c1 = c1;
            p.c2 = c2;
            p.r1 = r1;
            let result = simulate_lock(&p, &self.sim_cfg)?;
            lock_times[slot] = result.lock_time.unwrap_or(f64::INFINITY);
        }

        let current = q.ivco + PLL_FIXED_CURRENT;
        let current_min = q.ivco_min + PLL_FIXED_CURRENT;
        let current_max = q.ivco_max + PLL_FIXED_CURRENT;
        let lock_worst = lock_times.iter().copied().fold(0.0f64, f64::max);

        let meets_spec = q.fmin_worst <= self.spec.f_out_min
            && q.fmax_worst >= self.spec.f_out_max
            && lock_worst <= self.spec.lock_time_max
            && current_max <= self.spec.current_max;

        Ok(SystemSolution {
            kvco: q.kvco,
            kvco_min: q.kvco_min,
            kvco_max: q.kvco_max,
            ivco: q.ivco,
            ivco_min: q.ivco_min,
            ivco_max: q.ivco_max,
            c1,
            c2,
            r1,
            lock_time: lock_times[0],
            lock_time_worst: lock_worst,
            jitter: jit.nominal,
            jitter_min: jit.min,
            jitter_max: jit.max,
            current,
            current_min,
            current_max,
            meets_spec,
        })
    }
}

impl Problem for PllSystemProblem {
    fn num_vars(&self) -> usize {
        5
    }

    fn bounds(&self, i: usize) -> (f64, f64) {
        self.bounds[i]
    }

    fn num_objectives(&self) -> usize {
        3
    }

    fn num_constraints(&self) -> usize {
        6
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let (kvco, ivco, c1, c2, r1) = (x[0], x[1], x[2], x[3], x[4]);
        let Ok(q) = self.model.query(kvco, ivco) else {
            return Evaluation::failed(3);
        };

        // Stability screen before paying for the transient.
        let mut p_nom = self.params_for(&q, q.kvco, q.ivco, q.jvco);
        p_nom.c1 = c1;
        p_nom.c2 = c2;
        p_nom.r1 = r1;
        if p_nom.validate().is_err() {
            return Evaluation::failed(3);
        }
        let analysis = LoopAnalysis::of(&p_nom);
        // Combined stability margin: phase margin headroom AND the
        // discrete-time bandwidth rule (crossover below fref/10).
        let pm_margin = (analysis.phase_margin_deg - 20.0) / 90.0;
        let bw_margin = (self.arch.fref / 10.0 - analysis.crossover_hz) / (self.arch.fref / 10.0);
        let stability_margin = pm_margin.min(bw_margin);

        let Ok(sol) = self.detail(x) else {
            return Evaluation::failed(3);
        };

        // Cap unlocked corners so the GA still sees a gradient.
        let lock_cap = 20.0 * self.spec.lock_time_max;
        let lock_nom = sol.lock_time.min(lock_cap);
        let lock_worst = sol.lock_time_worst.min(lock_cap);

        Evaluation {
            objectives: vec![lock_nom, sol.jitter, sol.current],
            constraints: vec![
                (self.spec.f_out_min - q.fmin_worst) / self.spec.f_out_min,
                (q.fmax_worst - self.spec.f_out_max) / self.spec.f_out_max,
                (self.spec.lock_time_max - lock_worst) / self.spec.lock_time_max,
                (self.spec.current_max - sol.current_max) / self.spec.current_max,
                stability_margin,
                // Manifold proximity: ≤ 1 means the (kvco, ivco) point is
                // realised by a characterised design neighbourhood.
                1.0 - self.model.manifold_distance(kvco, ivco),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charmodel::{CharPoint, CharacterizedFront, VcoDeltas};
    use crate::vco_eval::VcoPerf;
    use moea::nsga2::{run_nsga2, Nsga2Config};
    use netlist::topology::VcoSizing;

    /// Synthetic model covering 0.35–2.6 GHz with a clean trade-off.
    fn synthetic_model() -> Arc<PerfVariationModel> {
        let n = 14;
        let points = (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                CharPoint {
                    sizing: VcoSizing::nominal(),
                    perf: VcoPerf {
                        kvco: 0.8e9 + 1.6e9 * t,
                        ivco: 1.5e-3 + 3.0e-3 * t,
                        jvco: 0.32e-12 - 0.2e-12 * t,
                        fmin: 0.30e9 + 0.15e9 * t,
                        fmax: 1.5e9 + 1.1e9 * t,
                    },
                    delta: VcoDeltas {
                        kvco: 0.4,
                        ivco: 2.8,
                        jvco: 23.0,
                        fmin: 1.0,
                        fmax: 1.1,
                    },
                    mc_accepted: 100,
                    mc_failed: 0,
                }
            })
            .collect();
        Arc::new(PerfVariationModel::from_front(&CharacterizedFront { points }).unwrap())
    }

    fn problem() -> PllSystemProblem {
        PllSystemProblem::new(
            synthetic_model(),
            PllArchitecture::default(),
            PllSpec::default(),
            LockSimConfig::default(),
        )
    }

    #[test]
    fn detail_produces_full_table2_row() {
        let p = problem();
        let x = [1.6e9, 3.0e-3, 30e-12, 3e-12, 4e3];
        let sol = p.detail(&x).unwrap();
        assert!(sol.kvco_min < sol.kvco && sol.kvco < sol.kvco_max);
        assert!(sol.current > sol.ivco, "fixed block current added");
        assert!(sol.jitter_min <= sol.jitter && sol.jitter <= sol.jitter_max);
        assert!(sol.lock_time.is_finite(), "this loop locks");
        // Jitter sums in the paper's ps window.
        assert!((1e-12..2e-11).contains(&sol.jitter));
    }

    #[test]
    fn out_of_domain_design_fails_cleanly() {
        let p = problem();
        let eval = p.evaluate(&[9e9, 3e-3, 30e-12, 3e-12, 4e3]);
        assert!(!eval.is_feasible());
        assert!(eval.objectives.iter().all(|o| o.is_infinite()));
    }

    #[test]
    fn constraints_reward_covering_the_band() {
        let p = problem();
        // High-gain end covers 0.5–1.2 GHz even at worst case.
        let good = p.evaluate(&[2.2e9, 4.2e-3, 30e-12, 3e-12, 4e3]);
        assert!(
            good.constraints[0] > 0.0 && good.constraints[1] > 0.0,
            "coverage constraints should pass at the high-gain end: {:?}",
            good.constraints
        );
        // Low end cannot reach 1.2 GHz... (fmax 1.5 GHz at t=0 — still
        // covers; shrink check to the fmin side instead).
        let low = p.evaluate(&[0.85e9, 1.6e-3, 30e-12, 3e-12, 4e3]);
        // fmin at the low end is 0.30 GHz < 0.5 GHz → passes coverage too;
        // both candidates should therefore be feasible on constraints 0-1.
        assert!(low.constraints[0] > 0.0);
    }

    #[test]
    fn unstable_filter_violates_stability_constraint() {
        let p = problem();
        // Tiny R1 → no zero → vanishing phase margin.
        let eval = p.evaluate(&[1.6e9, 3.0e-3, 5e-12, 5e-12, 1e3]);
        assert!(
            eval.constraints[4] < 0.2,
            "stability margin should be small/negative: {:?}",
            eval.constraints[4]
        );
    }

    #[test]
    fn tiny_system_ga_finds_feasible_solutions() {
        let p = problem();
        let cfg = Nsga2Config {
            population: 16,
            generations: 6,
            seed: 5,
            eval_threads: 2,
            ..Default::default()
        };
        let result = run_nsga2(&p, &cfg);
        let front = result.pareto_front();
        assert!(
            !front.is_empty(),
            "system-level GA should find feasible PLL designs"
        );
        // Every feasible front member meets the hard constraints.
        for ind in &front {
            assert!(ind.is_feasible());
            let sol = p.detail(&ind.x).unwrap();
            assert!(sol.lock_time <= PllSpec::default().lock_time_max * 20.0);
        }
    }
}
