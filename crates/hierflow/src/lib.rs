//! Hierarchical performance + variation optimisation of analogue ICs —
//! the DATE 2009 flow (Ali, Ke, Wilcock, Wilson).
//!
//! The flow (paper §3, Fig 4):
//!
//! 1. **Circuit-level multi-objective optimisation** — NSGA-II sizes the
//!    5-stage current-starved ring VCO against five objectives (jitter,
//!    current, gain, fmin, fmax) with transistor-level evaluation
//!    ([`vco_problem`], [`vco_eval`]).
//! 2. **Performance and variation modelling** — every Pareto-optimal
//!    sizing undergoes a Monte-Carlo analysis; performance spreads (the
//!    ∆ columns of Table 1) are extracted ([`charmodel`]).
//! 3. **Combined table model** — Pareto performances, spreads and the
//!    inverse map back to transistor dimensions are stored as
//!    `$table_model`-style lookup tables ([`model`], mirroring the
//!    paper's Listings 1–2).
//! 4. **System-level optimisation** — a behavioural charge-pump PLL is
//!    optimised over (Kvco, Ivco, C1, C2, R1); the variation model turns
//!    each nominal VCO point into min/max corners so every system
//!    performance carries its spread ([`system_opt`], Table 2).
//! 5. **Spec propagation & bottom-up verification** — the selected
//!    system solution is mapped back to transistor dimensions and
//!    confirmed with a transistor-level Monte Carlo ([`propagate`],
//!    [`verify`]; paper §4.5 reports 100 % yield over 500 samples).
//!
//! [`flow::HierarchicalFlow`] orchestrates all five stages;
//! `examples/pll_hierarchical.rs` runs it end to end.

pub mod charmodel;
pub mod checkpoint;
pub mod error;
pub mod events;
pub mod faults;
pub mod flow;
pub mod model;
pub mod policy;
pub mod propagate;
pub mod report;
pub mod sensitivity;
pub mod system_opt;
pub mod vco_eval;
pub mod vco_problem;
pub mod verify;

pub use error::FlowError;
pub use events::{DeadlineScope, FlowEvent, FlowEvents, FlowStage};
pub use exec::{CancelToken, RetryPolicy, RunBudget};
pub use faults::{FaultInjector, FaultKind};
pub use flow::{CacheConfig, FlowConfig, FlowReport, HierarchicalFlow, TelemetryConfig};
pub use model::PerfVariationModel;
pub use policy::DegradePolicy;
pub use vco_eval::{VcoPerf, VcoTestbench};
