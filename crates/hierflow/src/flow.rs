//! End-to-end orchestration of the hierarchical flow (paper Fig 4),
//! with stage checkpointing, graceful degradation and a structured
//! event log.
//!
//! [`HierarchicalFlow::run`] executes all five stages in memory.
//! [`HierarchicalFlow::run_with_checkpoints`] additionally persists each
//! stage's artifact to a run directory (see [`crate::checkpoint`]), and
//! [`HierarchicalFlow::resume`] picks a run back up from whatever
//! artifacts the directory already holds — a crash mid-verification no
//! longer costs the circuit-level GA budget.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use behavioral::spec::PllSpec;
use behavioral::timesim::LockSimConfig;
use evalcache::{EvalCache, KeyQuantiser};
use exec::{AbortReason, CancelToken, Deadline, ExecPolicy, PoolStats, RunBudget};
use moea::nsga2::{run_nsga2_cached, Nsga2Config};
use moea::problem::{Evaluation, Individual};
use netlist::topology::VcoSizing;
use serde::Serialize;
use variation::mc::{McConfig, MonteCarlo};
use variation::process::ProcessSpec;

use crate::charmodel::{characterize_front_cached, CharacterizedFront};
use crate::checkpoint::{
    self, config_digest, LoadOutcome, RunDir, Stage1Artifact, Stage4Artifact, Stage5Artifact,
};
use crate::error::FlowError;
use crate::events::{DeadlineScope, FlowEvent, FlowEvents, FlowStage};
use crate::faults::FaultInjector;
use crate::model::PerfVariationModel;
use crate::policy::DegradePolicy;
use crate::propagate::select_verified_design;
use crate::system_opt::{PllArchitecture, PllSystemProblem, SystemSolution};
use crate::vco_eval::VcoTestbench;
use crate::vco_problem::VcoSizingProblem;
use crate::verify::{verify_design, VerificationReport};

/// Evaluation memo-cache settings (the [`evalcache`] crate wired into
/// the flow's hot evaluation paths: the stage-1 GA and stage-2
/// Monte-Carlo characterisation).
///
/// Disabled by default: caching is a pure-speed opt-in — results are
/// bit-identical either way, which
/// [`FlowConfig::digest`] relies on when it canonicalises these
/// settings out of the checkpoint manifest. The
/// `HIERSIZER_EVALCACHE` environment variable (`1`/`0`) overrides
/// [`CacheConfig::enabled`] at run time.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Master switch (default `false`).
    pub enabled: bool,
    /// In-memory entries held per cache (two caches exist: GA
    /// evaluations and Monte-Carlo sample metrics).
    pub capacity: usize,
    /// Design-coordinate quantum for key derivation; `0.0` keys on the
    /// exact bit pattern, guaranteeing hits are bit-identical replays.
    pub quantum: f64,
    /// Mirror entries under `<run dir>/evalcache/` so a resumed run
    /// reuses individual evaluations, not just whole stage artifacts.
    /// Only takes effect when the flow runs with checkpoints (or when
    /// [`CacheConfig::shared_disk`] names an explicit store).
    pub disk: bool,
    /// Root of a disk store *shared across runs* (the optimisation
    /// daemon points every job of a tenant here). Overrides the per-run
    /// `<run dir>/evalcache/` location; safe because entries are
    /// content-addressed by the canonical config digest, so runs under
    /// different configurations can never serve each other's values.
    /// Ignored unless [`CacheConfig::disk`] is set.
    pub shared_disk: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: false,
            capacity: 65_536,
            quantum: 0.0,
            disk: true,
            shared_disk: None,
        }
    }
}

impl CacheConfig {
    /// An enabled cache with the default capacity/quantum/disk tier.
    pub fn enabled() -> Self {
        CacheConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// Telemetry settings (the [`telemetry`] crate wired through the five
/// stages: hierarchical span tracing, a metrics registry and a per-run
/// profile report).
///
/// Disabled by default: telemetry is pure observation — results, cache
/// keys and the checkpoint config digest are bit-identical either way,
/// which [`FlowConfig::digest`] relies on when it canonicalises these
/// settings out of the manifest. The `HIERSIZER_TELEMETRY` environment
/// variable (`1`/`0`) overrides [`TelemetryConfig::enabled`] at run
/// time. When the run executes with checkpoints, the trace lands in
/// `trace.jsonl` and the profile in `metrics.json` next to
/// `events.json` in the run directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch (default `false`).
    pub enabled: bool,
    /// How many of the slowest characterisation points the profile
    /// report keeps.
    pub top_points: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            top_points: 10,
        }
    }
}

impl TelemetryConfig {
    /// An enabled telemetry configuration with default report settings.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// Complete configuration of the hierarchical flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Transistor-level VCO testbench.
    pub testbench: VcoTestbench,
    /// Circuit-level NSGA-II settings (paper: 100 × 30).
    pub circuit_ga: Nsga2Config,
    /// Monte-Carlo settings per Pareto point (paper: 100 samples).
    pub char_mc: McConfig,
    /// Statistical process description.
    pub process: ProcessSpec,
    /// PLL architecture around the optimised components.
    pub arch: PllArchitecture,
    /// System-level specification window.
    pub spec: PllSpec,
    /// System-level NSGA-II settings.
    pub system_ga: Nsga2Config,
    /// Behavioural lock-simulation settings.
    pub lock_sim: LockSimConfig,
    /// Final verification Monte-Carlo settings (paper: 500 samples).
    pub verify_mc: McConfig,
    /// Cap on characterised Pareto points (cost control; the front is
    /// thinned evenly along the supply-current axis).
    pub max_char_points: usize,
    /// What to do when a Pareto point fails Monte-Carlo
    /// characterisation (see [`DegradePolicy`]).
    pub degrade: DegradePolicy,
    /// Wall-clock budgets (per task, per stage, whole run) and retry
    /// policy for the supervised execution pool. Unlimited by default.
    pub budget: RunBudget,
    /// Evaluation memo-cache settings. Disabled by default; purely a
    /// speed knob — results are bit-identical either way.
    pub cache: CacheConfig,
    /// Telemetry settings. Disabled by default; pure observation —
    /// results are bit-identical either way.
    pub telemetry: TelemetryConfig,
}

impl FlowConfig {
    /// Paper-scale budgets: pop 100 × 30 generations at circuit level,
    /// 100 MC samples per Pareto point, 500-sample verification.
    /// Expect hours of CPU — use [`FlowConfig::quick`] for development.
    pub fn paper_scale() -> Self {
        FlowConfig {
            testbench: VcoTestbench::default(),
            circuit_ga: Nsga2Config {
                population: 100,
                generations: 30,
                seed: 2009,
                eval_threads: 2,
                axial_seeds: true,
                ..Default::default()
            },
            char_mc: McConfig {
                samples: 100,
                seed: 42,
                threads: 2,
            },
            process: ProcessSpec::default(),
            arch: PllArchitecture::default(),
            spec: PllSpec::default(),
            system_ga: Nsga2Config {
                population: 64,
                generations: 40,
                seed: 7,
                eval_threads: 2,
                axial_seeds: true,
                ..Default::default()
            },
            lock_sim: LockSimConfig::default(),
            verify_mc: McConfig {
                samples: 500,
                seed: 99,
                threads: 2,
            },
            max_char_points: 24,
            // Long runs absorb solver hiccups: retry with relaxed
            // options, then drop the point, but never model fewer than
            // a third of the budgeted front.
            degrade: DegradePolicy::RetryRelaxed {
                max_retries: 2,
                min_surviving_points: 8,
            },
            budget: RunBudget::unlimited(),
            cache: CacheConfig::default(),
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Development-scale budgets: the same flow, minutes instead of
    /// hours. Fronts are coarser but every stage runs for real.
    pub fn quick() -> Self {
        let mut cfg = Self::paper_scale();
        cfg.circuit_ga.population = 32;
        cfg.circuit_ga.generations = 10;
        cfg.char_mc.samples = 12;
        cfg.system_ga.population = 48;
        cfg.system_ga.generations = 24;
        cfg.verify_mc.samples = 40;
        cfg.max_char_points = 10;
        cfg.degrade = DegradePolicy::default();
        cfg
    }

    /// Stable digest of this configuration, used by the checkpoint
    /// manifest to refuse mixing artifacts across configurations.
    /// Wall-clock budgets shape *when* a run stops, never *what* it
    /// computes — and an interrupted run is typically resumed with a
    /// larger budget — so they are excluded from the digest. The memo
    /// cache is excluded for the same reason: cached and uncached runs
    /// produce bit-identical artifacts, and a run is often resumed with
    /// caching newly enabled to speed up the replay.
    fn digest(&self) -> u64 {
        let mut canon = self.clone();
        canon.budget = RunBudget::unlimited();
        canon.cache = CacheConfig::default();
        canon.telemetry = TelemetryConfig::default();
        config_digest(&format!("{canon:?}"))
    }
}

/// Everything the flow produced, stage by stage.
#[derive(Debug, Clone, Serialize)]
pub struct FlowReport {
    /// Characterised circuit-level Pareto front (Table 1 data).
    pub front: CharacterizedFront,
    /// System-level Pareto front rows (Table 2 data).
    pub system_front: Vec<SystemSolution>,
    /// The selected design solution (the paper's shaded row).
    pub selected: SystemSolution,
    /// Decision vector of the selected solution.
    pub selected_x: Vec<f64>,
    /// Transistor sizing recovered by spec propagation.
    pub final_sizing: VcoSizing,
    /// Bottom-up verification outcome (yield, paper §4.5).
    pub verification: VerificationReport,
    /// Transistor-level evaluations spent in stage 1 (from the stage-1
    /// artifact; unchanged when the stage was resumed from checkpoint).
    pub circuit_evaluations: usize,
    /// Transistor-level GA evaluations actually performed by *this*
    /// run — 0 when stage 1 was loaded from a checkpoint.
    pub circuit_evaluations_this_run: usize,
    /// Model-based evaluations spent in stage 4.
    pub system_evaluations: usize,
    /// Structured log of what this run did: stages computed or resumed,
    /// points skipped, retries attempted.
    pub events: FlowEvents,
    /// Wall-clock time per stage, in execution order. Always populated
    /// (cheap monotonic-clock reads, no telemetry required); resumed
    /// stages report their checkpoint-load time.
    pub stage_wall: Vec<telemetry::report::StageProfile>,
    /// Per-run telemetry profile (stage breakdown, slowest points,
    /// solver-vs-overhead split, metrics). `None` unless the run
    /// executed with telemetry enabled.
    pub profile: Option<telemetry::report::RunProfile>,
}

/// The flow orchestrator.
#[derive(Debug, Clone)]
pub struct HierarchicalFlow {
    config: FlowConfig,
    faults: Option<FaultInjector>,
    cancel: CancelToken,
}

impl HierarchicalFlow {
    /// Creates a flow with the given configuration.
    pub fn new(config: FlowConfig) -> Self {
        HierarchicalFlow {
            config,
            faults: None,
            cancel: CancelToken::new(),
        }
    }

    /// Installs a deterministic [`FaultInjector`] on the
    /// characterisation stage (failure-semantics testing).
    pub fn with_fault_injector(mut self, faults: FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Installs a cooperative cancellation token. Firing it makes the
    /// run stop claiming work at the next task boundary, flush its
    /// event log and checkpoints, and return a resumable
    /// [`FlowError::Cancelled`].
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Runs all five stages end to end, in memory (no checkpoints).
    ///
    /// # Errors
    ///
    /// Propagates stage errors: an empty Pareto front, model-domain
    /// failures, no spec-compliant system solution, or a broken final
    /// design. Under [`DegradePolicy::Strict`], also any failed
    /// Monte-Carlo sample (with point/sample provenance).
    pub fn run(&self) -> Result<FlowReport, FlowError> {
        self.execute(None)
    }

    /// Runs the flow, persisting each stage's artifact into `dir` as it
    /// completes. Stages whose artifacts are already present in `dir`
    /// are loaded instead of recomputed, so this doubles as the resume
    /// entry point.
    ///
    /// # Errors
    ///
    /// As [`HierarchicalFlow::run`]; additionally
    /// [`FlowError::Checkpoint`] when the directory is unusable, holds
    /// a corrupt artifact, or was produced by a different configuration.
    pub fn run_with_checkpoints<P: AsRef<Path>>(&self, dir: P) -> Result<FlowReport, FlowError> {
        let run_dir = RunDir::create(dir)?;
        if let Some(aside) = run_dir.ensure_manifest(self.config.digest())? {
            // The manifest was unreadable: every artifact was swept
            // aside with it (nothing could be attributed to a
            // configuration). Seed the fresh event log with the
            // provenance record — `execute_stages` picks it up from
            // disk like any other resumed log.
            let mut events = FlowEvents::new();
            events.push(FlowEvent::CheckpointCorrupt {
                stage: None,
                file: checkpoint::MANIFEST_FILE.to_string(),
                reason: format!(
                    "manifest unreadable; run directory reset, corrupt bytes at {}",
                    aside.display()
                ),
            });
            run_dir.save(checkpoint::EVENTS_FILE, &events)?;
        }
        self.execute(Some(&run_dir))
    }

    /// Resumes a checkpointed run: stages with artifacts in `dir` are
    /// skipped (their artifacts loaded), the rest computed and
    /// checkpointed. Identical to [`HierarchicalFlow::run_with_checkpoints`] —
    /// a fresh directory runs everything, a partial one resumes.
    ///
    /// # Errors
    ///
    /// As [`HierarchicalFlow::run_with_checkpoints`].
    pub fn resume<P: AsRef<Path>>(&self, dir: P) -> Result<FlowReport, FlowError> {
        self.run_with_checkpoints(dir)
    }

    /// Runs the five stages under an optional telemetry recorder. The
    /// recorder is installed for the duration of the stage pipeline (a
    /// `run` span wraps it), then — success or failure alike — the
    /// trace and profile are flushed to the run directory before the
    /// result surfaces. Telemetry observes, it never alters: the
    /// returned artifacts are bit-identical with and without it.
    fn execute(&self, dir: Option<&RunDir>) -> Result<FlowReport, FlowError> {
        let telemetry_on = telemetry::enabled_from_env(self.config.telemetry.enabled);
        let recorder = telemetry_on.then(telemetry::Recorder::new);
        let mut result = {
            let _install = recorder.as_ref().map(|r| r.install());
            let _run_span = telemetry::span("run");
            self.execute_stages(dir)
        };
        if let Some(rec) = &recorder {
            let profile = telemetry::report::build(rec, self.config.telemetry.top_points);
            if let Some(d) = dir {
                // Flushes are best-effort: a full disk must not turn a
                // finished run into an error.
                let _ = rec.write_trace(d.path().join(checkpoint::TRACE_FILE));
                let _ = d.save(checkpoint::METRICS_FILE, &profile);
            }
            if let Ok(report) = &mut result {
                report.profile = Some(profile);
            }
        }
        result
    }

    fn execute_stages(&self, dir: Option<&RunDir>) -> Result<FlowReport, FlowError> {
        let cfg = &self.config;
        let mut events = match dir {
            Some(d) => match d.load_or_quarantine::<FlowEvents>(checkpoint::EVENTS_FILE) {
                LoadOutcome::Loaded(ev) => ev,
                LoadOutcome::Absent => FlowEvents::new(),
                // A smashed event log loses history, never the run: start
                // a fresh log whose first entry records the loss.
                LoadOutcome::Quarantined { reason, .. } => {
                    let mut ev = FlowEvents::new();
                    ev.push(FlowEvent::CheckpointCorrupt {
                        stage: None,
                        file: checkpoint::EVENTS_FILE.to_string(),
                        reason,
                    });
                    ev
                }
            },
            None => FlowEvents::new(),
        };

        // A stage failure must not lose the event log: persist it
        // best-effort before surfacing the error.
        macro_rules! bail_on_err {
            ($result:expr) => {
                match $result {
                    Ok(v) => v,
                    Err(e) => {
                        let _ = persist_events(dir, &events);
                        return Err(e);
                    }
                }
            };
        }

        // The whole-run deadline starts ticking here; each stage's
        // batch deadline is the earlier of its own stage budget and
        // whatever remains of the run budget.
        let run_deadline = cfg.budget.run.map(Deadline::after);
        let stage_policy = || ExecPolicy {
            // 0 = inherit each stage's own configured thread count.
            threads: 0,
            task_deadline: cfg.budget.task,
            batch_deadline: Deadline::earliest(cfg.budget.stage.map(Deadline::after), run_deadline),
            cancel: self.cancel.clone(),
            retry: cfg.budget.retry,
        };

        // An aborted supervised batch becomes a resumable flow error,
        // with the interruption recorded (and persisted) first.
        macro_rules! bail_abort {
            ($result:expr, $stage:expr) => {
                match $result {
                    Ok(v) => v,
                    Err(AbortReason::Cancelled) => {
                        events.push(FlowEvent::RunCancelled { stage: $stage });
                        let _ = persist_events(dir, &events);
                        return Err(FlowError::Cancelled { stage: $stage });
                    }
                    Err(AbortReason::DeadlineExceeded) => {
                        let scope = if run_deadline.is_some_and(|d| d.expired()) {
                            DeadlineScope::Run
                        } else {
                            DeadlineScope::Stage
                        };
                        events.push(FlowEvent::BudgetExhausted {
                            stage: $stage,
                            scope,
                        });
                        let _ = persist_events(dir, &events);
                        return Err(FlowError::DeadlineExceeded {
                            stage: $stage,
                            scope,
                        });
                    }
                }
            };
        }

        // Cancellation and the run budget are also polled between
        // stages, so a token fired during a non-supervised section
        // still stops the run at the next stage boundary.
        macro_rules! check_interrupt {
            ($stage:expr) => {
                if self.cancel.poll() {
                    events.push(FlowEvent::RunCancelled { stage: $stage });
                    let _ = persist_events(dir, &events);
                    return Err(FlowError::Cancelled { stage: $stage });
                }
                if run_deadline.is_some_and(|d| d.expired()) {
                    events.push(FlowEvent::BudgetExhausted {
                        stage: $stage,
                        scope: DeadlineScope::Run,
                    });
                    let _ = persist_events(dir, &events);
                    return Err(FlowError::DeadlineExceeded {
                        stage: $stage,
                        scope: DeadlineScope::Run,
                    });
                }
            };
        }

        // Evaluation memo caches (opt-in, bit-identical): one for the
        // stage-1 GA's objective evaluations, one for the stage-2
        // Monte-Carlo sample metrics. Both key off the canonical config
        // digest, so a shared disk directory never serves entries
        // computed under a different configuration.
        let cache_on = evalcache::enabled_from_env(cfg.cache.enabled);
        let quantiser = if cfg.cache.quantum > 0.0 {
            KeyQuantiser::with_quantum(cfg.cache.quantum)
        } else {
            KeyQuantiser::exact()
        };
        let config_dig = cfg.digest();
        let circuit_cache: Option<EvalCache<Evaluation>> =
            cache_on.then(|| build_cache(&cfg.cache, quantiser, config_dig, "circuit", dir));
        let char_cache: Option<EvalCache<Vec<f64>>> =
            cache_on.then(|| build_cache(&cfg.cache, quantiser, config_dig, "char", dir));

        // Snapshots a cache's counters into the event log after a
        // stage's batch of work.
        macro_rules! record_cache {
            ($stage:expr, $cache:expr) => {
                if let Some(c) = $cache {
                    let s = c.stats();
                    events.push(FlowEvent::CacheStats {
                        stage: $stage,
                        hits: s.hits,
                        misses: s.misses,
                        disk_hits: s.disk_hits,
                        evictions: s.evictions,
                    });
                }
            };
        }

        // Records a GA stage's aggregated pool statistics.
        macro_rules! record_pool {
            ($stage:expr, $stats:expr) => {{
                let stats: &PoolStats = $stats;
                events.push(FlowEvent::PoolBatch {
                    stage: $stage,
                    point: None,
                    tasks: stats.tasks,
                    workers: stats.workers,
                    per_worker: stats.per_worker.clone(),
                    stolen: stats.stolen,
                    retries: stats.retries,
                    timeouts: stats.timeouts,
                });
            }};
        }

        // Wraps one stage in a telemetry span and an always-on wall
        // clock. The clock is plain `Instant` arithmetic — it reads no
        // RNG and feeds nothing back into the stages, so results stay
        // bit-identical whether or not anyone looks at the timings.
        let mut stage_wall: Vec<telemetry::report::StageProfile> = Vec::new();
        macro_rules! timed_stage {
            ($stage:expr, $body:expr) => {{
                let _stage_span = telemetry::span("stage").attr("stage", $stage.name());
                let stage_start = std::time::Instant::now();
                let value = $body;
                stage_wall.push(telemetry::report::StageProfile {
                    stage: $stage.name().to_string(),
                    wall_us: stage_start.elapsed().as_micros() as u64,
                });
                value
            }};
        }

        // Stage 1: circuit-level multi-objective sizing, with the
        // system band propagated down as coverage constraints (Fig 3).
        let mut circuit_evaluations_this_run = 0;
        let stage1 = timed_stage!(
            FlowStage::CircuitOpt,
            match load_artifact::<Stage1Artifact>(
                dir,
                checkpoint::STAGE1_FRONT,
                FlowStage::CircuitOpt,
                &mut events,
            )? {
                Some(artifact) => artifact,
                None => {
                    check_interrupt!(FlowStage::CircuitOpt);
                    events.push(FlowEvent::StageStarted {
                        stage: FlowStage::CircuitOpt,
                    });
                    let problem = VcoSizingProblem::with_band(
                        cfg.testbench.clone(),
                        cfg.spec.f_out_min,
                        cfg.spec.f_out_max,
                    );
                    let result = bail_abort!(
                        run_nsga2_cached(
                            &problem,
                            &cfg.circuit_ga,
                            &[],
                            &stage_policy(),
                            circuit_cache.as_ref(),
                        ),
                        FlowStage::CircuitOpt
                    );
                    record_pool!(FlowStage::CircuitOpt, &result.pool);
                    record_cache!(FlowStage::CircuitOpt, &circuit_cache);
                    circuit_evaluations_this_run = result.evaluations;
                    let mut front = result.pareto_front();
                    if front.is_empty() {
                        let _ = persist_events(dir, &events);
                        return Err(FlowError::stage(
                            FlowStage::CircuitOpt.name(),
                            "circuit-level optimisation produced no feasible designs",
                        ));
                    }
                    thin_front(&mut front, cfg.max_char_points);
                    events.push(FlowEvent::StageFinished {
                        stage: FlowStage::CircuitOpt,
                    });
                    let artifact = Stage1Artifact {
                        front,
                        evaluations: result.evaluations,
                    };
                    bail_on_err!(save_artifact(
                        dir,
                        checkpoint::STAGE1_FRONT,
                        FlowStage::CircuitOpt,
                        &artifact,
                        &mut events,
                    ));
                    artifact
                }
            }
        );
        bail_on_err!(persist_events(dir, &events));

        // Stage 2: Monte-Carlo characterisation of the front, under the
        // configured degradation policy.
        let engine = MonteCarlo::new(cfg.process);
        let characterized = timed_stage!(
            FlowStage::Characterize,
            match load_artifact::<CharacterizedFront>(
                dir,
                checkpoint::STAGE2_CHARACTERIZED,
                FlowStage::Characterize,
                &mut events,
            )? {
                Some(artifact) => artifact,
                None => {
                    check_interrupt!(FlowStage::Characterize);
                    events.push(FlowEvent::StageStarted {
                        stage: FlowStage::Characterize,
                    });
                    let characterized = bail_on_err!(characterize_front_cached(
                        &stage1.front,
                        &cfg.testbench,
                        &engine,
                        &cfg.char_mc,
                        cfg.degrade,
                        self.faults.as_ref(),
                        &stage_policy(),
                        char_cache.as_ref(),
                        &mut events,
                    ));
                    record_cache!(FlowStage::Characterize, &char_cache);
                    events.push(FlowEvent::StageFinished {
                        stage: FlowStage::Characterize,
                    });
                    bail_on_err!(save_artifact(
                        dir,
                        checkpoint::STAGE2_CHARACTERIZED,
                        FlowStage::Characterize,
                        &characterized,
                        &mut events,
                    ));
                    characterized
                }
            }
        );
        bail_on_err!(persist_events(dir, &events));

        // Stage 3: the combined performance + variation model. Rebuilt
        // every run — cheap, and its spline internals do not serialise.
        let model = timed_stage!(FlowStage::Model, {
            events.push(FlowEvent::StageStarted {
                stage: FlowStage::Model,
            });
            let model = Arc::new(bail_on_err!(PerfVariationModel::from_front(&characterized)));
            events.push(FlowEvent::StageFinished {
                stage: FlowStage::Model,
            });
            model
        });

        // Stage 4: system-level optimisation with the model in the loop.
        let system_problem =
            PllSystemProblem::new(Arc::clone(&model), cfg.arch, cfg.spec, cfg.lock_sim);
        let stage4 = timed_stage!(
            FlowStage::SystemOpt,
            match load_artifact::<Stage4Artifact>(
                dir,
                checkpoint::STAGE4_SYSTEM,
                FlowStage::SystemOpt,
                &mut events,
            )? {
                Some(artifact) => artifact,
                None => {
                    check_interrupt!(FlowStage::SystemOpt);
                    events.push(FlowEvent::StageStarted {
                        stage: FlowStage::SystemOpt,
                    });
                    // Model-based evaluations are cheap; the memo cache is
                    // reserved for the transistor-level stages.
                    let system_result = bail_abort!(
                        run_nsga2_cached(
                            &system_problem,
                            &cfg.system_ga,
                            &system_problem.warm_start_seeds(),
                            &stage_policy(),
                            None,
                        ),
                        FlowStage::SystemOpt
                    );
                    record_pool!(FlowStage::SystemOpt, &system_result.pool);
                    let system_front = system_result.pareto_front();
                    let rows: Vec<SystemSolution> = system_front
                        .iter()
                        .filter_map(|ind| system_problem.detail(&ind.x).ok())
                        .collect();
                    events.push(FlowEvent::StageFinished {
                        stage: FlowStage::SystemOpt,
                    });
                    let artifact = Stage4Artifact {
                        front: system_front,
                        rows,
                        evaluations: system_result.evaluations,
                    };
                    bail_on_err!(save_artifact(
                        dir,
                        checkpoint::STAGE4_SYSTEM,
                        FlowStage::SystemOpt,
                        &artifact,
                        &mut events,
                    ));
                    artifact
                }
            }
        );
        bail_on_err!(persist_events(dir, &events));

        // Stage 5: spec propagation with verification-in-the-loop
        // (Fig 3's two-way arrows), then bottom-up Monte Carlo.
        let stage5 = timed_stage!(
            FlowStage::Verify,
            match load_artifact::<Stage5Artifact>(
                dir,
                checkpoint::STAGE5_SELECTED,
                FlowStage::Verify,
                &mut events,
            )? {
                Some(artifact) => artifact,
                None => {
                    check_interrupt!(FlowStage::Verify);
                    events.push(FlowEvent::StageStarted {
                        stage: FlowStage::Verify,
                    });
                    let picked = bail_on_err!(select_verified_design(
                        &system_problem,
                        &stage4.front,
                        &model,
                        &cfg.testbench,
                        &cfg.arch,
                        &cfg.spec,
                        &cfg.lock_sim,
                        12,
                    ));
                    let verification = bail_on_err!(verify_design(
                        &picked.sizing,
                        (picked.solution.c1, picked.solution.c2, picked.solution.r1),
                        &cfg.testbench,
                        &cfg.arch,
                        &cfg.spec,
                        &engine,
                        &cfg.verify_mc,
                        &cfg.lock_sim,
                    ));
                    events.push(FlowEvent::StageFinished {
                        stage: FlowStage::Verify,
                    });
                    let artifact = Stage5Artifact {
                        x: picked.x,
                        solution: picked.solution,
                        sizing: picked.sizing,
                        verification,
                    };
                    bail_on_err!(save_artifact(
                        dir,
                        checkpoint::STAGE5_SELECTED,
                        FlowStage::Verify,
                        &artifact,
                        &mut events,
                    ));
                    artifact
                }
            }
        );
        bail_on_err!(persist_events(dir, &events));

        Ok(FlowReport {
            front: characterized,
            system_front: stage4.rows,
            selected: stage5.solution,
            selected_x: stage5.x,
            final_sizing: stage5.sizing,
            verification: stage5.verification,
            circuit_evaluations: stage1.evaluations,
            circuit_evaluations_this_run,
            system_evaluations: stage4.evaluations,
            events,
            stage_wall,
            profile: None,
        })
    }
}

/// Builds one evaluation memo cache, attaching the on-disk tier under
/// `<run dir>/evalcache/<tag>` when checkpointing is active and the
/// config asks for it. The `tag` is folded into the config digest so
/// the GA and Monte-Carlo caches can never serve each other's entries
/// even if their design vectors collide. An unusable disk directory
/// degrades to memory-only caching — the cache is an optimisation, not
/// a correctness dependency.
fn build_cache<V: Clone + serde::Serialize + serde::Deserialize>(
    cfg: &CacheConfig,
    quantiser: KeyQuantiser,
    config_digest: u64,
    tag: &str,
    dir: Option<&RunDir>,
) -> EvalCache<V> {
    let digest = evalcache::fnv1a_extend(config_digest, tag.as_bytes());
    let cache = EvalCache::new(cfg.capacity, quantiser, digest);
    let path = if !cfg.disk {
        None
    } else if let Some(root) = &cfg.shared_disk {
        Some(root.join(tag))
    } else {
        dir.map(|d| d.path().join("evalcache").join(tag))
    };
    match path {
        Some(path) => cache
            .with_disk(&path)
            .unwrap_or_else(|_| EvalCache::new(cfg.capacity, quantiser, digest)),
        None => cache,
    }
}

/// Loads a stage artifact from the run directory (when checkpointing is
/// active and the file exists), recording the reuse in the event log. A
/// present-but-corrupt artifact — truncated by a torn write that dodged
/// the atomic rename, or smashed by real disk trouble — is quarantined
/// and recorded as a [`FlowEvent::CheckpointCorrupt`], and the stage is
/// recomputed: resume degrades, it never refuses to run and never
/// builds a report from half-trusted bytes. The `Result` is kept for
/// call-site symmetry with [`save_artifact`]; it is currently always
/// `Ok`.
fn load_artifact<T: serde::Deserialize>(
    dir: Option<&RunDir>,
    file: &str,
    stage: FlowStage,
    events: &mut FlowEvents,
) -> Result<Option<T>, FlowError> {
    let Some(d) = dir else {
        return Ok(None);
    };
    match d.load_or_quarantine::<T>(file) {
        LoadOutcome::Loaded(value) => {
            events.push(FlowEvent::CheckpointLoaded {
                stage,
                file: file.to_string(),
            });
            Ok(Some(value))
        }
        LoadOutcome::Absent => Ok(None),
        LoadOutcome::Quarantined { reason, .. } => {
            events.push(FlowEvent::CheckpointCorrupt {
                stage: Some(stage),
                file: file.to_string(),
                reason,
            });
            Ok(None)
        }
    }
}

/// Saves a stage artifact to the run directory (when checkpointing is
/// active), recording the write in the event log.
fn save_artifact<T: serde::Serialize>(
    dir: Option<&RunDir>,
    file: &str,
    stage: FlowStage,
    value: &T,
    events: &mut FlowEvents,
) -> Result<(), FlowError> {
    if let Some(d) = dir {
        d.save(file, value)?;
        events.push(FlowEvent::CheckpointSaved {
            stage,
            file: file.to_string(),
        });
    }
    Ok(())
}

/// Persists the event log to the run directory (when checkpointing is
/// active), so interrupted runs keep their history.
fn persist_events(dir: Option<&RunDir>, events: &FlowEvents) -> Result<(), FlowError> {
    match dir {
        Some(d) => d.save(checkpoint::EVENTS_FILE, events),
        None => Ok(()),
    }
}

/// Thins a front to at most `max_points`, spread evenly along the
/// supply-current axis (`objectives[1]`): with the band constraint
/// active every feasible design covers the frequency band, so current
/// orders the power/jitter trade-off the system level explores, and an
/// even spread along it keeps both the leanest and the fastest designs.
/// `max_points == 0` disables thinning; `max_points == 1` keeps the
/// lowest-current design.
fn thin_front(front: &mut Vec<Individual>, max_points: usize) {
    if front.len() <= max_points || max_points == 0 {
        return;
    }
    front.sort_by(|a, b| {
        a.objectives[1]
            .partial_cmp(&b.objectives[1])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let n = front.len();
    // `max(1)` keeps the stride denominator non-zero when a single
    // point is requested (k is then always 0 → the lowest-current one).
    let denom = (max_points - 1).max(1);
    let picked: Vec<Individual> = (0..max_points)
        .map(|k| front[k * (n - 1) / denom].clone())
        .collect();
    *front = picked;
}

#[cfg(test)]
mod tests {
    use super::*;
    use moea::problem::Evaluation;

    fn ind(current_obj: f64) -> Individual {
        Individual::new(
            vec![0.0],
            Evaluation::feasible(vec![0.0, current_obj, 0.0, 0.0, 0.0]),
        )
    }

    #[test]
    fn thinning_keeps_extremes() {
        let mut front: Vec<Individual> = (0..30).map(|i| ind(i as f64 * 1e-3)).collect();
        thin_front(&mut front, 5);
        assert_eq!(front.len(), 5);
        // Both current extremes survive (leanest and fastest designs).
        assert!(front.iter().any(|i| i.objectives[1] == 0.0));
        assert!(front.iter().any(|i| i.objectives[1] == 29.0e-3));
    }

    #[test]
    fn thinning_is_noop_for_small_fronts() {
        let mut front: Vec<Individual> = (0..3).map(|i| ind(i as f64)).collect();
        thin_front(&mut front, 10);
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn thinning_to_zero_is_a_noop_cap() {
        let mut front: Vec<Individual> = (0..7).map(|i| ind(i as f64)).collect();
        thin_front(&mut front, 0);
        assert_eq!(front.len(), 7, "0 means no cap");
    }

    #[test]
    fn thinning_to_one_point_keeps_the_leanest() {
        // Regression: `k * (n-1) / (max_points - 1)` divided by zero
        // when max_points == 1.
        let mut front: Vec<Individual> = (0..9).rev().map(|i| ind(i as f64)).collect();
        thin_front(&mut front, 1);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].objectives[1], 0.0, "lowest-current design");
    }

    #[test]
    fn thinning_to_two_points_keeps_both_extremes() {
        let mut front: Vec<Individual> = (0..9).map(|i| ind(i as f64)).collect();
        thin_front(&mut front, 2);
        assert_eq!(front.len(), 2);
        assert_eq!(front[0].objectives[1], 0.0);
        assert_eq!(front[1].objectives[1], 8.0);
    }

    #[test]
    fn quick_config_is_smaller_than_paper_scale() {
        let q = FlowConfig::quick();
        let p = FlowConfig::paper_scale();
        assert!(q.circuit_ga.population < p.circuit_ga.population);
        assert!(q.verify_mc.samples < p.verify_mc.samples);
        assert_eq!(p.circuit_ga.population, 100, "paper §4.2");
        assert_eq!(p.circuit_ga.generations, 30, "paper §4.2");
        assert_eq!(p.char_mc.samples, 100, "paper §4.3");
        assert_eq!(p.verify_mc.samples, 500, "paper §4.5");
    }

    #[test]
    fn paper_scale_degrades_gracefully_by_default() {
        let p = FlowConfig::paper_scale();
        assert!(!p.degrade.is_strict(), "hour-long runs must absorb faults");
        assert!(p.degrade.max_retries() > 0);
        assert!(p.degrade.min_surviving_points() >= 2);
    }

    #[test]
    fn config_digest_distinguishes_budgets() {
        let a = FlowConfig::quick();
        let mut b = FlowConfig::quick();
        assert_eq!(a.digest(), b.digest());
        b.char_mc.samples += 1;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn config_digest_ignores_cache_settings() {
        // Cached and uncached runs produce bit-identical artifacts, so
        // a directory started without the cache must accept a resumed
        // run that enables it (and vice versa).
        let a = FlowConfig::quick();
        let mut b = FlowConfig::quick();
        b.cache = CacheConfig::enabled();
        b.cache.capacity = 17;
        b.cache.quantum = 1e-9;
        b.cache.shared_disk = Some(PathBuf::from("/tmp/shared-store"));
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn config_digest_ignores_telemetry_settings() {
        // Telemetry observes, it never alters: artifacts are
        // bit-identical either way, so a traced resume of an untraced
        // run (and vice versa) must be accepted.
        let a = FlowConfig::quick();
        let mut b = FlowConfig::quick();
        b.telemetry = TelemetryConfig::enabled();
        b.telemetry.top_points = 3;
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn config_digest_ignores_wall_clock_budget() {
        // A run that hit its deadline is resumed with a larger budget;
        // the checkpoint directory must still accept its artifacts.
        let a = FlowConfig::quick();
        let mut b = FlowConfig::quick();
        b.budget = RunBudget::unlimited()
            .whole_run(std::time::Duration::from_secs(1))
            .per_task(std::time::Duration::from_millis(50));
        assert_eq!(a.digest(), b.digest());
    }
}
