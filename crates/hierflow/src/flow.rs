//! End-to-end orchestration of the hierarchical flow (paper Fig 4).

use std::sync::Arc;

use behavioral::spec::PllSpec;
use behavioral::timesim::LockSimConfig;
use moea::nsga2::{run_nsga2, run_nsga2_seeded, Nsga2Config};
use moea::problem::Individual;
use netlist::topology::VcoSizing;
use serde::Serialize;
use variation::mc::{McConfig, MonteCarlo};
use variation::process::ProcessSpec;

use crate::charmodel::{characterize_front, CharacterizedFront};
use crate::error::FlowError;
use crate::model::PerfVariationModel;
use crate::propagate::select_verified_design;
use crate::system_opt::{PllArchitecture, PllSystemProblem, SystemSolution};
use crate::vco_eval::VcoTestbench;
use crate::vco_problem::VcoSizingProblem;
use crate::verify::{verify_design, VerificationReport};

/// Complete configuration of the hierarchical flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Transistor-level VCO testbench.
    pub testbench: VcoTestbench,
    /// Circuit-level NSGA-II settings (paper: 100 × 30).
    pub circuit_ga: Nsga2Config,
    /// Monte-Carlo settings per Pareto point (paper: 100 samples).
    pub char_mc: McConfig,
    /// Statistical process description.
    pub process: ProcessSpec,
    /// PLL architecture around the optimised components.
    pub arch: PllArchitecture,
    /// System-level specification window.
    pub spec: PllSpec,
    /// System-level NSGA-II settings.
    pub system_ga: Nsga2Config,
    /// Behavioural lock-simulation settings.
    pub lock_sim: LockSimConfig,
    /// Final verification Monte-Carlo settings (paper: 500 samples).
    pub verify_mc: McConfig,
    /// Cap on characterised Pareto points (cost control; the front is
    /// thinned evenly along the current axis).
    pub max_char_points: usize,
}

impl FlowConfig {
    /// Paper-scale budgets: pop 100 × 30 generations at circuit level,
    /// 100 MC samples per Pareto point, 500-sample verification.
    /// Expect hours of CPU — use [`FlowConfig::quick`] for development.
    pub fn paper_scale() -> Self {
        FlowConfig {
            testbench: VcoTestbench::default(),
            circuit_ga: Nsga2Config {
                population: 100,
                generations: 30,
                seed: 2009,
                eval_threads: 2,
                axial_seeds: true,
                ..Default::default()
            },
            char_mc: McConfig {
                samples: 100,
                seed: 42,
                threads: 2,
            },
            process: ProcessSpec::default(),
            arch: PllArchitecture::default(),
            spec: PllSpec::default(),
            system_ga: Nsga2Config {
                population: 64,
                generations: 40,
                seed: 7,
                eval_threads: 2,
                axial_seeds: true,
                ..Default::default()
            },
            lock_sim: LockSimConfig::default(),
            verify_mc: McConfig {
                samples: 500,
                seed: 99,
                threads: 2,
            },
            max_char_points: 24,
        }
    }

    /// Development-scale budgets: the same flow, minutes instead of
    /// hours. Fronts are coarser but every stage runs for real.
    pub fn quick() -> Self {
        let mut cfg = Self::paper_scale();
        cfg.circuit_ga.population = 32;
        cfg.circuit_ga.generations = 10;
        cfg.char_mc.samples = 12;
        cfg.system_ga.population = 48;
        cfg.system_ga.generations = 24;
        cfg.verify_mc.samples = 40;
        cfg.max_char_points = 10;
        cfg
    }
}

/// Everything the flow produced, stage by stage.
#[derive(Debug, Clone, Serialize)]
pub struct FlowReport {
    /// Characterised circuit-level Pareto front (Table 1 data).
    pub front: CharacterizedFront,
    /// System-level Pareto front rows (Table 2 data).
    pub system_front: Vec<SystemSolution>,
    /// The selected design solution (the paper's shaded row).
    pub selected: SystemSolution,
    /// Decision vector of the selected solution.
    pub selected_x: Vec<f64>,
    /// Transistor sizing recovered by spec propagation.
    pub final_sizing: VcoSizing,
    /// Bottom-up verification outcome (yield, paper §4.5).
    pub verification: VerificationReport,
    /// Transistor-level evaluations spent in stage 1.
    pub circuit_evaluations: usize,
    /// Model-based evaluations spent in stage 4.
    pub system_evaluations: usize,
}

/// The flow orchestrator.
#[derive(Debug, Clone)]
pub struct HierarchicalFlow {
    config: FlowConfig,
}

impl HierarchicalFlow {
    /// Creates a flow with the given configuration.
    pub fn new(config: FlowConfig) -> Self {
        HierarchicalFlow { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Runs all five stages end to end.
    ///
    /// # Errors
    ///
    /// Propagates stage errors: an empty Pareto front, model-domain
    /// failures, no spec-compliant system solution, or a broken final
    /// design.
    pub fn run(&self) -> Result<FlowReport, FlowError> {
        let cfg = &self.config;

        // Stage 1: circuit-level multi-objective sizing, with the
        // system band propagated down as coverage constraints (Fig 3).
        let problem = VcoSizingProblem::with_band(
            cfg.testbench.clone(),
            cfg.spec.f_out_min,
            cfg.spec.f_out_max,
        );
        let result = run_nsga2(&problem, &cfg.circuit_ga);
        let mut front = result.pareto_front();
        if front.is_empty() {
            return Err(FlowError::stage(
                "circuit-opt",
                "circuit-level optimisation produced no feasible designs",
            ));
        }
        thin_front(&mut front, cfg.max_char_points);

        // Stage 2: Monte-Carlo characterisation of the front.
        let engine = MonteCarlo::new(cfg.process);
        let characterized =
            characterize_front(&front, &cfg.testbench, &engine, &cfg.char_mc)?;

        // Stage 3: the combined performance + variation model.
        let model = Arc::new(PerfVariationModel::from_front(&characterized)?);

        // Stage 4: system-level optimisation with the model in the loop.
        let system_problem = PllSystemProblem::new(
            Arc::clone(&model),
            cfg.arch,
            cfg.spec,
            cfg.lock_sim,
        );
        let system_result = run_nsga2_seeded(
            &system_problem,
            &cfg.system_ga,
            &system_problem.warm_start_seeds(),
        );
        let system_front = system_result.pareto_front();
        let system_rows: Vec<SystemSolution> = system_front
            .iter()
            .filter_map(|ind| system_problem.detail(&ind.x).ok())
            .collect();

        // Stage 5: spec propagation with verification-in-the-loop
        // (Fig 3's two-way arrows), then bottom-up Monte Carlo.
        let picked = select_verified_design(
            &system_problem,
            &system_front,
            &model,
            &cfg.testbench,
            &cfg.arch,
            &cfg.spec,
            &cfg.lock_sim,
            12,
        )?;
        let verification = verify_design(
            &picked.sizing,
            (picked.solution.c1, picked.solution.c2, picked.solution.r1),
            &cfg.testbench,
            &cfg.arch,
            &cfg.spec,
            &engine,
            &cfg.verify_mc,
            &cfg.lock_sim,
        )?;

        Ok(FlowReport {
            front: characterized,
            system_front: system_rows,
            selected: picked.solution,
            selected_x: picked.x,
            final_sizing: picked.sizing,
            verification,
            circuit_evaluations: result.evaluations,
            system_evaluations: system_result.evaluations,
        })
    }
}

/// Thins a front to at most `max_points`, spread evenly along the
/// minimum-frequency axis: the system level needs designs spanning from
/// band-bottom coverage (low fmin) to band-top coverage (high fmax), and
/// fmin orders the front along exactly that trade-off.
fn thin_front(front: &mut Vec<Individual>, max_points: usize) {
    if front.len() <= max_points || max_points == 0 {
        return;
    }
    // Sort by the current objective: with the band constraint active
    // every feasible design covers the band, so current orders the
    // power/jitter trade-off the system level explores.
    front.sort_by(|a, b| {
        a.objectives[1]
            .partial_cmp(&b.objectives[1])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let n = front.len();
    let picked: Vec<Individual> = (0..max_points)
        .map(|k| front[k * (n - 1) / (max_points - 1)].clone())
        .collect();
    *front = picked;
}

#[cfg(test)]
mod tests {
    use super::*;
    use moea::problem::Evaluation;

    fn ind(current_obj: f64) -> Individual {
        Individual::new(
            vec![0.0],
            Evaluation::feasible(vec![0.0, current_obj, 0.0, 0.0, 0.0]),
        )
    }

    #[test]
    fn thinning_keeps_extremes() {
        let mut front: Vec<Individual> = (0..30).map(|i| ind(i as f64 * 1e-3)).collect();
        thin_front(&mut front, 5);
        assert_eq!(front.len(), 5);
        // Both current extremes survive (leanest and fastest designs).
        assert!(front.iter().any(|i| i.objectives[1] == 0.0));
        assert!(front.iter().any(|i| i.objectives[1] == 29.0e-3));
    }

    #[test]
    fn thinning_is_noop_for_small_fronts() {
        let mut front: Vec<Individual> = (0..3).map(|i| ind(i as f64)).collect();
        thin_front(&mut front, 10);
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn quick_config_is_smaller_than_paper_scale() {
        let q = FlowConfig::quick();
        let p = FlowConfig::paper_scale();
        assert!(q.circuit_ga.population < p.circuit_ga.population);
        assert!(q.verify_mc.samples < p.verify_mc.samples);
        assert_eq!(p.circuit_ga.population, 100, "paper §4.2");
        assert_eq!(p.circuit_ga.generations, 30, "paper §4.2");
        assert_eq!(p.char_mc.samples, 100, "paper §4.3");
        assert_eq!(p.verify_mc.samples, 500, "paper §4.5");
    }
}
