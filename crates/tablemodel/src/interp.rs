//! 1-D table interpolation with control-string semantics.

use crate::control::{ControlSpec, Extrapolation, InterpDegree};
use crate::error::TableModelError;
use crate::spline::CubicSpline;

/// A 1-D lookup table: sorted sample points, one value each, and a
/// control spec deciding interpolation degree and extrapolation policy.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1d {
    xs: Vec<f64>,
    ys: Vec<f64>,
    control: ControlSpec,
    spline: Option<CubicSpline>,
}

impl Table1d {
    /// Builds a table. Points are sorted by `x` internally; duplicate
    /// abscissae are averaged (Pareto data often carries near-duplicate
    /// performance points).
    ///
    /// # Errors
    ///
    /// Returns [`TableModelError::BadData`] when fewer than two distinct
    /// points remain or data is not finite.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, control: ControlSpec) -> Result<Self, TableModelError> {
        if xs.len() != ys.len() {
            return Err(TableModelError::BadData {
                message: format!("{} x values vs {} y values", xs.len(), ys.len()),
            });
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(TableModelError::BadData {
                message: "table data must be finite".to_string(),
            });
        }
        let mut pairs: Vec<(f64, f64)> = xs.into_iter().zip(ys).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite keys"));
        // Merge duplicates by averaging.
        let mut merged: Vec<(f64, f64, usize)> = Vec::with_capacity(pairs.len());
        for (x, y) in pairs {
            match merged.last_mut() {
                Some((mx, my, count)) if (*mx - x).abs() < 1e-300 || *mx == x => {
                    *my += y;
                    *count += 1;
                }
                _ => merged.push((x, y, 1)),
            }
        }
        let xs: Vec<f64> = merged.iter().map(|(x, _, _)| *x).collect();
        let ys: Vec<f64> = merged
            .iter()
            .map(|(_, y, count)| y / *count as f64)
            .collect();
        if xs.len() < 2 {
            return Err(TableModelError::BadData {
                message: "table needs at least two distinct points".to_string(),
            });
        }
        let spline = if control.degree == InterpDegree::Cubic {
            Some(CubicSpline::natural(&xs, &ys)?)
        } else {
            None
        };
        Ok(Table1d {
            xs,
            ys,
            control,
            spline,
        })
    }

    /// The table domain `(min x, max x)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], self.xs[self.xs.len() - 1])
    }

    /// Number of distinct sample points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Evaluates the table at `x`.
    ///
    /// # Errors
    ///
    /// Returns [`TableModelError::OutOfDomain`] when `x` lies outside the
    /// sampled range and the control string is `E`.
    pub fn eval(&self, x: f64) -> Result<f64, TableModelError> {
        let (lo, hi) = self.domain();
        if x < lo || x > hi {
            match self.control.extrapolation {
                Extrapolation::Error => {
                    return Err(TableModelError::OutOfDomain {
                        dim: 0,
                        value: x,
                        lo,
                        hi,
                    })
                }
                Extrapolation::Clamp => {
                    return Ok(if x < lo {
                        self.ys[0]
                    } else {
                        self.ys[self.ys.len() - 1]
                    });
                }
                Extrapolation::Linear => {
                    // Continue with the boundary slope of the interpolant.
                    let (x0, y0, slope) = if x < lo {
                        (lo, self.ys[0], self.boundary_slope(true))
                    } else {
                        (hi, self.ys[self.ys.len() - 1], self.boundary_slope(false))
                    };
                    return Ok(y0 + slope * (x - x0));
                }
            }
        }
        Ok(self.interpolate(x))
    }

    /// First derivative of the interpolant at `x` (cubic: analytic
    /// spline derivative; linear/quadratic: central finite difference of
    /// the interpolant). Outside the domain the boundary slope is
    /// returned regardless of extrapolation policy — sensitivities at
    /// the domain edge remain well-defined.
    pub fn derivative(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        let x = x.clamp(lo, hi);
        if let Some(s) = &self.spline {
            return s.derivative(x);
        }
        let h = (hi - lo) * 1e-7;
        let a = self.interpolate((x - h).max(lo));
        let b = self.interpolate((x + h).min(hi));
        let span = (x + h).min(hi) - (x - h).max(lo);
        (b - a) / span
    }

    fn boundary_slope(&self, at_start: bool) -> f64 {
        match &self.spline {
            Some(s) => {
                let (lo, hi) = self.domain();
                s.derivative(if at_start { lo } else { hi })
            }
            None => {
                let n = self.xs.len();
                if at_start {
                    (self.ys[1] - self.ys[0]) / (self.xs[1] - self.xs[0])
                } else {
                    (self.ys[n - 1] - self.ys[n - 2]) / (self.xs[n - 1] - self.xs[n - 2])
                }
            }
        }
    }

    fn interpolate(&self, x: f64) -> f64 {
        match self.control.degree {
            InterpDegree::Cubic => self.spline.as_ref().expect("cubic spline built").eval(x),
            InterpDegree::Linear => {
                let i = self.segment(x);
                let (x0, x1) = (self.xs[i], self.xs[i + 1]);
                let (y0, y1) = (self.ys[i], self.ys[i + 1]);
                y0 + (y1 - y0) * (x - x0) / (x1 - x0)
            }
            InterpDegree::Quadratic => {
                // Local 3-point Lagrange around the containing segment.
                let n = self.xs.len();
                if n == 2 {
                    let (x0, x1) = (self.xs[0], self.xs[1]);
                    return self.ys[0] + (self.ys[1] - self.ys[0]) * (x - x0) / (x1 - x0);
                }
                let i = self.segment(x).min(n - 3);
                let (x0, x1, x2) = (self.xs[i], self.xs[i + 1], self.xs[i + 2]);
                let (y0, y1, y2) = (self.ys[i], self.ys[i + 1], self.ys[i + 2]);
                let l0 = (x - x1) * (x - x2) / ((x0 - x1) * (x0 - x2));
                let l1 = (x - x0) * (x - x2) / ((x1 - x0) * (x1 - x2));
                let l2 = (x - x0) * (x - x1) / ((x2 - x0) * (x2 - x1));
                y0 * l0 + y1 * l1 + y2 * l2
            }
        }
    }

    fn segment(&self, x: f64) -> usize {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return 0;
        }
        if x >= self.xs[n - 1] {
            return n - 2;
        }
        self.xs.partition_point(|&xi| xi <= x) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn control(s: &str) -> ControlSpec {
        s.parse().unwrap()
    }

    fn quad_table(ctrl: &str) -> Table1d {
        let xs: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        Table1d::new(xs, ys, control(ctrl)).unwrap()
    }

    #[test]
    fn linear_interpolation_exact_on_lines() {
        let t = Table1d::new(vec![0.0, 1.0, 2.0], vec![1.0, 3.0, 5.0], control("1E")).unwrap();
        assert!((t.eval(0.5).unwrap() - 2.0).abs() < 1e-12);
        assert!((t.eval(1.75).unwrap() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn quadratic_is_exact_on_parabola() {
        let t = quad_table("2E");
        for x in [0.3, 1.5, 2.7, 4.9] {
            assert!((t.eval(x).unwrap() - x * x).abs() < 1e-10, "at {x}");
        }
    }

    #[test]
    fn cubic_beats_linear_on_curvature() {
        let lin = quad_table("1E");
        let cub = quad_table("3E");
        let x = 2.5;
        let err_lin = (lin.eval(x).unwrap() - x * x).abs();
        let err_cub = (cub.eval(x).unwrap() - x * x).abs();
        assert!(err_cub < err_lin, "cubic {err_cub} vs linear {err_lin}");
    }

    #[test]
    fn error_extrapolation_refuses() {
        let t = quad_table("3E");
        assert!(matches!(
            t.eval(-0.1),
            Err(TableModelError::OutOfDomain { .. })
        ));
        assert!(matches!(
            t.eval(5.1),
            Err(TableModelError::OutOfDomain { .. })
        ));
        assert!(t.eval(5.0).is_ok());
        assert!(t.eval(0.0).is_ok());
    }

    #[test]
    fn error_extrapolation_boundary_is_exact_to_one_ulp() {
        // The paper's `"3E"` tables refuse extrapolation; the domain
        // check must be exact, not tolerance-padded: evaluation *at*
        // either endpoint interpolates the sampled value, while one ULP
        // outside is already out of domain.
        let t = quad_table("3E");
        let (lo, hi) = t.domain();
        assert_eq!(t.eval(lo).unwrap(), 0.0, "exact at the lower endpoint");
        assert_eq!(t.eval(hi).unwrap(), 25.0, "exact at the upper endpoint");
        assert!(
            matches!(
                t.eval(lo.next_down()),
                Err(TableModelError::OutOfDomain { .. })
            ),
            "one ULP below the domain must refuse"
        );
        assert!(
            matches!(
                t.eval(hi.next_up()),
                Err(TableModelError::OutOfDomain { .. })
            ),
            "one ULP above the domain must refuse"
        );
        // One ULP *inside* both endpoints still evaluates.
        assert!(t.eval(lo.next_up()).is_ok());
        assert!(t.eval(hi.next_down()).is_ok());
    }

    #[test]
    fn clamp_extrapolation_holds_boundary() {
        let t = quad_table("3C");
        assert_eq!(t.eval(-3.0).unwrap(), 0.0);
        assert_eq!(t.eval(99.0).unwrap(), 25.0);
    }

    #[test]
    fn linear_extrapolation_continues_slope() {
        let t = Table1d::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0], control("1L")).unwrap();
        assert!((t.eval(4.0).unwrap() - 4.0).abs() < 1e-12);
        assert!((t.eval(-1.0).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let t = Table1d::new(vec![2.0, 0.0, 1.0], vec![4.0, 0.0, 1.0], control("1E")).unwrap();
        assert!((t.eval(1.5).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_abscissae_are_averaged() {
        let t = Table1d::new(
            vec![0.0, 1.0, 1.0, 2.0],
            vec![0.0, 1.0, 3.0, 2.0],
            control("1E"),
        )
        .unwrap();
        assert_eq!(t.len(), 3);
        assert!((t.eval(1.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn derivative_of_parabola_table() {
        let t = quad_table("3C");
        for x in [1.0, 2.5, 4.0] {
            let d = t.derivative(x);
            assert!(
                (d - 2.0 * x).abs() < 0.3,
                "spline derivative {d} vs analytic {} at {x}",
                2.0 * x
            );
        }
        let lin = quad_table("1C");
        // Linear interpolant of x² on integer knots has slope ≈ 2x ± 1.
        let d = lin.derivative(2.5);
        assert!((d - 5.0).abs() < 1.01, "linear-table derivative {d}");
    }

    #[test]
    fn degenerate_tables_rejected() {
        assert!(Table1d::new(vec![1.0], vec![1.0], control("1E")).is_err());
        assert!(Table1d::new(vec![1.0, 1.0], vec![1.0, 2.0], control("1E")).is_err());
        assert!(Table1d::new(vec![0.0, 1.0], vec![f64::INFINITY, 0.0], control("1E")).is_err());
    }
}
