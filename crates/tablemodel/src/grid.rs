//! N-dimensional regular-grid tables with tensor-product interpolation.
//!
//! Evaluation reduces one dimension at a time: the table is sliced along
//! the first axis, each slice evaluated recursively, and the resulting
//! per-knot values interpolated as a 1-D table with that axis's control
//! spec. This matches Verilog-A `$table_model` semantics for gridded
//! data of any dimension.

use crate::control::ControlSpec;
use crate::error::TableModelError;
use crate::interp::Table1d;

/// An N-dimensional regular grid table.
///
/// # Examples
///
/// ```
/// use tablemodel::control::ControlSpec;
/// use tablemodel::grid::GridTable;
///
/// # fn main() -> Result<(), tablemodel::TableModelError> {
/// // f(x, y) = x + 10·y on a 3×2 grid.
/// let t = GridTable::new(
///     vec![vec![0.0, 1.0, 2.0], vec![0.0, 1.0]],
///     vec![0.0, 10.0, 1.0, 11.0, 2.0, 12.0],
///     vec!["1E".parse()?, "1E".parse()?],
/// )?;
/// assert!((t.eval(&[1.5, 0.5])? - 6.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GridTable {
    axes: Vec<Vec<f64>>,
    /// Row-major values: the **last** axis varies fastest.
    values: Vec<f64>,
    controls: Vec<ControlSpec>,
}

impl GridTable {
    /// Builds a grid table.
    ///
    /// `values` is row-major with the last axis varying fastest; its
    /// length must equal the product of the axis lengths.
    ///
    /// # Errors
    ///
    /// Returns [`TableModelError::BadData`] for inconsistent dimensions,
    /// axes that are not strictly increasing, or non-finite data.
    pub fn new(
        axes: Vec<Vec<f64>>,
        values: Vec<f64>,
        controls: Vec<ControlSpec>,
    ) -> Result<Self, TableModelError> {
        if axes.is_empty() {
            return Err(TableModelError::BadData {
                message: "grid needs at least one axis".to_string(),
            });
        }
        if controls.len() != axes.len() {
            return Err(TableModelError::BadData {
                message: format!("{} control specs for {} axes", controls.len(), axes.len()),
            });
        }
        let expected: usize = axes.iter().map(|a| a.len()).product();
        if values.len() != expected {
            return Err(TableModelError::BadData {
                message: format!("{} values for a {expected}-cell grid", values.len()),
            });
        }
        for axis in &axes {
            if axis.len() < 2 {
                return Err(TableModelError::BadData {
                    message: "every grid axis needs at least two points".to_string(),
                });
            }
            if axis.windows(2).any(|w| w[1] <= w[0]) {
                return Err(TableModelError::BadData {
                    message: "grid axes must be strictly increasing".to_string(),
                });
            }
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(TableModelError::BadData {
                message: "grid values must be finite".to_string(),
            });
        }
        Ok(GridTable {
            axes,
            values,
            controls,
        })
    }

    /// Number of input dimensions.
    pub fn dim(&self) -> usize {
        self.axes.len()
    }

    /// Domain of input dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= dim()`.
    pub fn domain(&self, d: usize) -> (f64, f64) {
        let axis = &self.axes[d];
        (axis[0], axis[axis.len() - 1])
    }

    /// Evaluates the table at `point`.
    ///
    /// # Errors
    ///
    /// Returns [`TableModelError::BadData`] for a dimension mismatch and
    /// [`TableModelError::OutOfDomain`] per the control specs.
    pub fn eval(&self, point: &[f64]) -> Result<f64, TableModelError> {
        if point.len() != self.dim() {
            return Err(TableModelError::BadData {
                message: format!("{}-d query on a {}-d grid", point.len(), self.dim()),
            });
        }
        self.eval_rec(point, 0, &self.values)
            .map_err(|e| offset_dim(e, 0))
    }

    fn eval_rec(&self, point: &[f64], d: usize, values: &[f64]) -> Result<f64, TableModelError> {
        let axis = &self.axes[d];
        if d == self.dim() - 1 {
            let t = Table1d::new(axis.clone(), values.to_vec(), self.controls[d])?;
            return t.eval(point[d]).map_err(|e| offset_dim(e, d));
        }
        let stride: usize = self.axes[d + 1..].iter().map(|a| a.len()).product();
        let mut reduced = Vec::with_capacity(axis.len());
        for (k, _) in axis.iter().enumerate() {
            let slice = &values[k * stride..(k + 1) * stride];
            reduced.push(self.eval_rec(point, d + 1, slice)?);
        }
        let t = Table1d::new(axis.clone(), reduced, self.controls[d])?;
        t.eval(point[d]).map_err(|e| offset_dim(e, d))
    }
}

fn offset_dim(e: TableModelError, d: usize) -> TableModelError {
    match e {
        TableModelError::OutOfDomain {
            dim: 0,
            value,
            lo,
            hi,
        } => TableModelError::OutOfDomain {
            dim: d,
            value,
            lo,
            hi,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl(s: &str) -> ControlSpec {
        s.parse().unwrap()
    }

    fn bilinear_table() -> GridTable {
        // f(x, y) = 2x + 3y on a 4×3 grid.
        let xs = vec![0.0, 1.0, 2.0, 3.0];
        let ys = vec![0.0, 0.5, 1.0];
        let mut values = Vec::new();
        for x in &xs {
            for y in &ys {
                values.push(2.0 * x + 3.0 * y);
            }
        }
        GridTable::new(vec![xs, ys], values, vec![ctrl("1E"), ctrl("1E")]).unwrap()
    }

    #[test]
    fn bilinear_exact_on_plane() {
        let t = bilinear_table();
        for (x, y) in [(0.25, 0.25), (1.5, 0.75), (2.9, 0.05)] {
            let got = t.eval(&[x, y]).unwrap();
            let want = 2.0 * x + 3.0 * y;
            assert!((got - want).abs() < 1e-12, "at ({x},{y}): {got} vs {want}");
        }
    }

    #[test]
    fn grid_hits_knots_exactly() {
        let t = bilinear_table();
        assert!((t.eval(&[2.0, 0.5]).unwrap() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_domain_reports_correct_dimension() {
        let t = bilinear_table();
        match t.eval(&[1.0, 9.0]) {
            Err(TableModelError::OutOfDomain { dim, .. }) => assert_eq!(dim, 1),
            other => panic!("expected out-of-domain on dim 1, got {other:?}"),
        }
        match t.eval(&[-5.0, 0.5]) {
            Err(TableModelError::OutOfDomain { dim, .. }) => assert_eq!(dim, 0),
            other => panic!("expected out-of-domain on dim 0, got {other:?}"),
        }
    }

    #[test]
    fn clamped_dimension_clamps_only_itself() {
        let xs = vec![0.0, 1.0];
        let ys = vec![0.0, 1.0];
        let values = vec![0.0, 1.0, 10.0, 11.0]; // f = 10x + y
        let t = GridTable::new(vec![xs, ys], values, vec![ctrl("1C"), ctrl("1E")]).unwrap();
        // x clamps to 1 → f(1, 0.5) = 10.5.
        assert!((t.eval(&[5.0, 0.5]).unwrap() - 10.5).abs() < 1e-12);
        // y still errors.
        assert!(t.eval(&[0.5, 5.0]).is_err());
    }

    #[test]
    fn cubic_grid_reproduces_smooth_surface() {
        let xs: Vec<f64> = (0..9).map(|i| i as f64 * 0.25).collect();
        let ys: Vec<f64> = (0..9).map(|i| i as f64 * 0.25).collect();
        let mut values = Vec::new();
        for x in &xs {
            for y in &ys {
                values.push((x + 0.5 * y).sin());
            }
        }
        let t = GridTable::new(vec![xs, ys], values, vec![ctrl("3E"), ctrl("3E")]).unwrap();
        for (x, y) in [(0.4, 0.4), (1.1, 1.7), (1.9, 0.2)] {
            let got = t.eval(&[x, y]).unwrap();
            let want = (x + 0.5 * y).sin();
            assert!((got - want).abs() < 5e-3, "at ({x},{y}): {got} vs {want}");
        }
    }

    #[test]
    fn three_dimensional_grid() {
        // f(x,y,z) = x + 2y + 4z.
        let axis = vec![0.0, 1.0];
        let mut values = Vec::new();
        for x in &axis {
            for y in &axis {
                for z in &axis {
                    values.push(x + 2.0 * y + 4.0 * z);
                }
            }
        }
        let t = GridTable::new(
            vec![axis.clone(), axis.clone(), axis],
            values,
            vec![ctrl("1E"); 3],
        )
        .unwrap();
        let got = t.eval(&[0.5, 0.5, 0.5]).unwrap();
        assert!((got - 3.5).abs() < 1e-12);
        assert_eq!(t.dim(), 3);
        assert_eq!(t.domain(2), (0.0, 1.0));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let t = bilinear_table();
        assert!(matches!(
            t.eval(&[1.0]),
            Err(TableModelError::BadData { .. })
        ));
    }

    #[test]
    fn construction_errors() {
        assert!(GridTable::new(vec![], vec![], vec![]).is_err());
        assert!(GridTable::new(vec![vec![0.0, 1.0]], vec![1.0], vec![ctrl("1E")]).is_err());
        assert!(GridTable::new(vec![vec![1.0, 0.0]], vec![1.0, 2.0], vec![ctrl("1E")]).is_err());
        assert!(GridTable::new(vec![vec![0.0, 1.0]], vec![1.0, 2.0], vec![]).is_err());
    }
}
