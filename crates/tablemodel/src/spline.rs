//! Natural cubic splines (the paper's equation (3) interpolant).

use crate::error::TableModelError;

/// A natural cubic spline through strictly increasing knots.
///
/// "Natural" boundary conditions: zero second derivative at both ends.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), tablemodel::TableModelError> {
/// use tablemodel::spline::CubicSpline;
///
/// let s = CubicSpline::natural(&[0.0, 1.0, 2.0], &[0.0, 1.0, 0.0])?;
/// assert!((s.eval(1.0) - 1.0).abs() < 1e-12); // interpolates knots
/// assert!(s.eval(0.5) > 0.4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the knots.
    m: Vec<f64>,
}

impl CubicSpline {
    /// Fits a natural cubic spline.
    ///
    /// # Errors
    ///
    /// Returns [`TableModelError::BadData`] when fewer than 2 points are
    /// given, the axis is not strictly increasing, or values are not
    /// finite. With exactly 2 points the spline degenerates to a line.
    pub fn natural(xs: &[f64], ys: &[f64]) -> Result<Self, TableModelError> {
        if xs.len() != ys.len() {
            return Err(TableModelError::BadData {
                message: format!("{} x values vs {} y values", xs.len(), ys.len()),
            });
        }
        if xs.len() < 2 {
            return Err(TableModelError::BadData {
                message: "spline needs at least two points".to_string(),
            });
        }
        if xs.windows(2).any(|w| w[1] <= w[0]) {
            return Err(TableModelError::BadData {
                message: "spline axis must be strictly increasing".to_string(),
            });
        }
        if xs.iter().chain(ys).any(|v| !v.is_finite()) {
            return Err(TableModelError::BadData {
                message: "spline data must be finite".to_string(),
            });
        }
        let n = xs.len();
        let mut m = vec![0.0; n];
        if n > 2 {
            // Tridiagonal system for interior second derivatives
            // (Thomas algorithm).
            let mut sub = vec![0.0; n];
            let mut diag = vec![0.0; n];
            let mut sup = vec![0.0; n];
            let mut rhs = vec![0.0; n];
            for i in 1..n - 1 {
                let h0 = xs[i] - xs[i - 1];
                let h1 = xs[i + 1] - xs[i];
                sub[i] = h0;
                diag[i] = 2.0 * (h0 + h1);
                sup[i] = h1;
                rhs[i] = 6.0 * ((ys[i + 1] - ys[i]) / h1 - (ys[i] - ys[i - 1]) / h0);
            }
            // Forward sweep over interior rows 1..n-1.
            for i in 2..n - 1 {
                let w = sub[i] / diag[i - 1];
                diag[i] -= w * sup[i - 1];
                rhs[i] -= w * rhs[i - 1];
            }
            // Back substitution.
            m[n - 2] = rhs[n - 2] / diag[n - 2];
            for i in (1..n - 2).rev() {
                m[i] = (rhs[i] - sup[i] * m[i + 1]) / diag[i];
            }
        }
        Ok(CubicSpline {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            m,
        })
    }

    /// Domain of the spline.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], self.xs[self.xs.len() - 1])
    }

    /// Evaluates the spline at `x`. Outside the knot range the boundary
    /// polynomial continues — callers enforce extrapolation policy.
    pub fn eval(&self, x: f64) -> f64 {
        let i = self.segment(x);
        let h = self.xs[i + 1] - self.xs[i];
        let a = (self.xs[i + 1] - x) / h;
        let b = (x - self.xs[i]) / h;
        a * self.ys[i]
            + b * self.ys[i + 1]
            + ((a * a * a - a) * self.m[i] + (b * b * b - b) * self.m[i + 1]) * h * h / 6.0
    }

    /// First derivative at `x`.
    pub fn derivative(&self, x: f64) -> f64 {
        let i = self.segment(x);
        let h = self.xs[i + 1] - self.xs[i];
        let a = (self.xs[i + 1] - x) / h;
        let b = (x - self.xs[i]) / h;
        (self.ys[i + 1] - self.ys[i]) / h
            + ((3.0 * b * b - 1.0) * self.m[i + 1] - (3.0 * a * a - 1.0) * self.m[i]) * h / 6.0
    }

    fn segment(&self, x: f64) -> usize {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return 0;
        }
        if x >= self.xs[n - 1] {
            return n - 2;
        }
        self.xs.partition_point(|&xi| xi <= x) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_knots_exactly() {
        let xs = [0.0, 0.7, 1.3, 2.9, 4.0];
        let ys = [1.0, -0.5, 2.0, 0.3, 0.3];
        let s = CubicSpline::natural(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((s.eval(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn two_points_degenerate_to_line() {
        let s = CubicSpline::natural(&[0.0, 2.0], &[0.0, 4.0]).unwrap();
        assert!((s.eval(1.0) - 2.0).abs() < 1e-12);
        assert!((s.derivative(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reproduces_smooth_function_accurately() {
        let xs: Vec<f64> = (0..21).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (2.0 * x).sin()).collect();
        let s = CubicSpline::natural(&xs, &ys).unwrap();
        for i in 0..200 {
            let x = 0.05 + i as f64 * 0.0095;
            let err = (s.eval(x) - (2.0 * x).sin()).abs();
            // Natural boundary conditions leave O(h²) error near the
            // ends; the interior is far more accurate.
            assert!(err < 5e-3, "error {err} at {x}");
            if (0.5..=1.5).contains(&x) {
                assert!(err < 5e-5, "interior error {err} at {x}");
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let xs: Vec<f64> = (0..11).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x - x).collect();
        let s = CubicSpline::natural(&xs, &ys).unwrap();
        for &x in &[0.5, 1.0, 2.0, 2.8] {
            let h = 1e-6;
            let fd = (s.eval(x + h) - s.eval(x - h)) / (2.0 * h);
            assert!((s.derivative(x) - fd).abs() < 1e-5);
        }
    }

    #[test]
    fn natural_boundary_second_derivative_is_zero() {
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 0.9).cos()).collect();
        let s = CubicSpline::natural(&xs, &ys).unwrap();
        // Approximate d²/dx² at the ends via the derivative.
        let h = 1e-5;
        let d2_start = (s.derivative(h) - s.derivative(0.0)) / h;
        let d2_end = (s.derivative(7.0) - s.derivative(7.0 - h)) / h;
        assert!(d2_start.abs() < 1e-3, "start curvature {d2_start}");
        assert!(d2_end.abs() < 1e-3, "end curvature {d2_end}");
    }

    #[test]
    fn rejects_bad_data() {
        assert!(CubicSpline::natural(&[0.0], &[1.0]).is_err());
        assert!(CubicSpline::natural(&[0.0, 0.0], &[1.0, 2.0]).is_err());
        assert!(CubicSpline::natural(&[0.0, 1.0], &[1.0]).is_err());
        assert!(CubicSpline::natural(&[0.0, 1.0], &[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn domain_reports_knot_range() {
        let s = CubicSpline::natural(&[1.0, 2.0, 5.0], &[0.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.domain(), (1.0, 5.0));
    }
}
