//! Error type for table-model construction and evaluation.

use std::fmt;

/// Errors produced by table-model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum TableModelError {
    /// A `.tbl` line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A control string was malformed.
    BadControl {
        /// The offending token.
        token: String,
    },
    /// The table data itself is unusable (too few points, unsorted axis,
    /// dimension mismatch…).
    BadData {
        /// Description of the problem.
        message: String,
    },
    /// A query fell outside the table domain and the control string
    /// forbids extrapolation (`E`).
    OutOfDomain {
        /// Input dimension that violated the domain.
        dim: usize,
        /// Queried value.
        value: f64,
        /// Domain lower bound.
        lo: f64,
        /// Domain upper bound.
        hi: f64,
    },
    /// A scattered-data query fell inside the bounding box but too far
    /// from any sample (off the Pareto manifold).
    TooFarFromSamples {
        /// Normalised distance to the nearest sample.
        distance: f64,
        /// Configured maximum.
        max_gap: f64,
    },
    /// Underlying file I/O failed.
    Io {
        /// Path involved.
        path: String,
        /// OS error description.
        message: String,
    },
}

impl fmt::Display for TableModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableModelError::Parse { line, message } => {
                write!(f, "tbl parse error at line {line}: {message}")
            }
            TableModelError::BadControl { token } => {
                write!(f, "malformed control string `{token}`")
            }
            TableModelError::BadData { message } => write!(f, "bad table data: {message}"),
            TableModelError::OutOfDomain { dim, value, lo, hi } => write!(
                f,
                "query {value} on input {dim} outside table domain [{lo}, {hi}] and extrapolation is disabled"
            ),
            TableModelError::TooFarFromSamples { distance, max_gap } => write!(
                f,
                "query is {distance:.3} (normalised) from the nearest sample, beyond the {max_gap:.3} manifold guard"
            ),
            TableModelError::Io { path, message } => {
                write!(f, "i/o error on `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for TableModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_domain_bounds() {
        let e = TableModelError::OutOfDomain {
            dim: 1,
            value: 9.0,
            lo: 0.0,
            hi: 5.0,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('5') && s.contains("input 1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TableModelError>();
    }
}
