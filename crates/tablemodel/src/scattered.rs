//! Scattered-data interpolation for Pareto clouds.
//!
//! Pareto fronts are not grid data: the optimal solutions lie on an
//! irregular manifold in performance space. The paper stores them in
//! `.tbl` files and interpolates; we provide two scattered-data methods
//! with the same strict no-extrapolation domain guard:
//!
//! * **IDW** — Shepard's inverse-distance weighting: robust, cheap,
//!   exact at the sample points;
//! * **RBF** — Gaussian radial basis functions with ridge
//!   regularisation: smoother reconstruction, exact at the samples,
//!   better for derivative-sensitive lookups.
//!
//! Inputs are normalised per dimension to the unit cube so heterogeneous
//! units (hertz next to amperes) do not skew distances.

use numkit::Matrix;

use crate::error::TableModelError;

/// Interpolation method for scattered data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScatterMethod {
    /// Shepard inverse-distance weighting with the given power
    /// (2 is the classic choice).
    Idw {
        /// Distance exponent.
        power: f64,
    },
    /// Gaussian RBF with shape parameter relative to the mean sample
    /// spacing, plus ridge regularisation for conditioning.
    Rbf {
        /// Kernel width multiplier (1.0 ≈ mean nearest-neighbour
        /// spacing).
        shape: f64,
    },
}

impl Default for ScatterMethod {
    fn default() -> Self {
        ScatterMethod::Idw { power: 2.0 }
    }
}

/// A scattered-data table: sample points in d dimensions with one value
/// each.
#[derive(Debug, Clone)]
pub struct ScatteredTable {
    points: Vec<Vec<f64>>,
    values: Vec<f64>,
    /// Per-dimension (min, max) of the samples: the query domain.
    domain: Vec<(f64, f64)>,
    /// Per-dimension scale for normalisation (max − min, or 1).
    scales: Vec<f64>,
    method: ScatterMethod,
    /// RBF weights (empty for IDW).
    rbf_weights: Vec<f64>,
    /// RBF kernel width in normalised space.
    rbf_width: f64,
    /// Fractional domain margin tolerated before declaring
    /// out-of-domain (Pareto interiors are ragged; a small margin keeps
    /// legitimate interior queries alive).
    margin: f64,
    /// Maximum normalised nearest-sample distance tolerated; `None`
    /// disables the check. Pareto clouds are thin manifolds inside their
    /// bounding box — this guard is what "no extrapolation" means for
    /// scattered data.
    max_gap: Option<f64>,
}

impl ScatteredTable {
    /// Builds a scattered table.
    ///
    /// # Errors
    ///
    /// Returns [`TableModelError::BadData`] when fewer than 2 points are
    /// given, dimensions are inconsistent, or data is not finite. RBF
    /// construction can also fail on a singular system (degenerate
    /// geometry); IDW never fails past validation.
    pub fn new(
        points: Vec<Vec<f64>>,
        values: Vec<f64>,
        method: ScatterMethod,
    ) -> Result<Self, TableModelError> {
        if points.len() != values.len() {
            return Err(TableModelError::BadData {
                message: format!("{} points vs {} values", points.len(), values.len()),
            });
        }
        if points.len() < 2 {
            return Err(TableModelError::BadData {
                message: "scattered table needs at least two points".to_string(),
            });
        }
        let dim = points[0].len();
        if dim == 0 {
            return Err(TableModelError::BadData {
                message: "points must have at least one dimension".to_string(),
            });
        }
        for p in &points {
            if p.len() != dim {
                return Err(TableModelError::BadData {
                    message: "inconsistent point dimensions".to_string(),
                });
            }
            if p.iter().any(|v| !v.is_finite()) {
                return Err(TableModelError::BadData {
                    message: "points must be finite".to_string(),
                });
            }
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(TableModelError::BadData {
                message: "values must be finite".to_string(),
            });
        }

        let mut domain = vec![(f64::INFINITY, f64::NEG_INFINITY); dim];
        for p in &points {
            for (d, &v) in p.iter().enumerate() {
                domain[d].0 = domain[d].0.min(v);
                domain[d].1 = domain[d].1.max(v);
            }
        }
        let scales: Vec<f64> = domain
            .iter()
            .map(|&(lo, hi)| if hi > lo { hi - lo } else { 1.0 })
            .collect();

        let mut table = ScatteredTable {
            points,
            values,
            domain,
            scales,
            method,
            rbf_weights: Vec::new(),
            rbf_width: 0.0,
            margin: 0.0,
            max_gap: None,
        };

        if let ScatterMethod::Rbf { shape } = method {
            table.fit_rbf(shape)?;
        }
        Ok(table)
    }

    /// Sets a fractional domain margin (e.g. 0.02 allows queries up to
    /// 2 % of the axis span outside the sampled bounding box).
    pub fn with_margin(mut self, margin: f64) -> Self {
        self.margin = margin.max(0.0);
        self
    }

    /// Restricts queries to the sampled manifold: evaluation fails when
    /// the normalised distance to the nearest sample exceeds `gap`.
    pub fn with_max_gap(mut self, gap: f64) -> Self {
        self.max_gap = Some(gap.max(0.0));
        self
    }

    /// Mean nearest-neighbour distance among the samples (normalised
    /// units) — the natural length scale for [`ScatteredTable::with_max_gap`].
    pub fn mean_nn_distance(&self) -> f64 {
        let n = self.points.len();
        let mut total = 0.0;
        for i in 0..n {
            let mut best = f64::INFINITY;
            for j in 0..n {
                if i != j {
                    best = best.min(self.norm_dist2(&self.points[i], &self.points[j]));
                }
            }
            total += best.sqrt();
        }
        total / n as f64
    }

    /// Normalised distance from `point` to the nearest sample.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != dim()`.
    pub fn gap_of(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.dim(), "dimension mismatch");
        self.nearest(point).1
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the table has no samples (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of input dimensions.
    pub fn dim(&self) -> usize {
        self.domain.len()
    }

    /// Per-dimension sampled domain.
    pub fn domain(&self) -> &[(f64, f64)] {
        &self.domain
    }

    fn fit_rbf(&mut self, shape: f64) -> Result<(), TableModelError> {
        let n = self.points.len();
        // Mean nearest-neighbour distance in normalised space sets the
        // kernel width.
        let mut total_nn = 0.0;
        for i in 0..n {
            let mut best = f64::INFINITY;
            for j in 0..n {
                if i != j {
                    best = best.min(self.norm_dist2(&self.points[i], &self.points[j]));
                }
            }
            total_nn += best.sqrt();
        }
        let mean_nn = (total_nn / n as f64).max(1e-9);
        self.rbf_width = (shape * mean_nn).max(1e-9);

        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let r2 = self.norm_dist2(&self.points[i], &self.points[j]);
                let mut k = (-r2 / (2.0 * self.rbf_width * self.rbf_width)).exp();
                if i == j {
                    k += 1e-8; // ridge regularisation
                }
                a[(i, j)] = k;
            }
        }
        let w = a
            .solve(&self.values)
            .map_err(|_| TableModelError::BadData {
                message: "rbf system is singular (degenerate point geometry)".to_string(),
            })?;
        self.rbf_weights = w;
        Ok(())
    }

    fn norm_dist2(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .zip(&self.scales)
            .map(|((x, y), s)| {
                let d = (x - y) / s;
                d * d
            })
            .sum()
    }

    /// Evaluates the model at `point`.
    ///
    /// # Errors
    ///
    /// Returns [`TableModelError::OutOfDomain`] when `point` leaves the
    /// sampled bounding box (plus margin) — scattered models never
    /// extrapolate, matching the paper's `"3E"` policy — and
    /// [`TableModelError::BadData`] on dimension mismatch.
    pub fn eval(&self, point: &[f64]) -> Result<f64, TableModelError> {
        if point.len() != self.dim() {
            return Err(TableModelError::BadData {
                message: format!("{}-d query on a {}-d table", point.len(), self.dim()),
            });
        }
        for (d, (&v, &(lo, hi))) in point.iter().zip(&self.domain).enumerate() {
            let m = self.margin * self.scales[d];
            if v < lo - m || v > hi + m {
                return Err(TableModelError::OutOfDomain {
                    dim: d,
                    value: v,
                    lo,
                    hi,
                });
            }
        }
        if let Some(gap) = self.max_gap {
            let d = self.nearest(point).1;
            if d > gap {
                return Err(TableModelError::TooFarFromSamples {
                    distance: d,
                    max_gap: gap,
                });
            }
        }
        match self.method {
            ScatterMethod::Idw { power } => Ok(self.eval_idw(point, power)),
            ScatterMethod::Rbf { .. } => Ok(self.eval_rbf(point)),
        }
    }

    fn eval_idw(&self, point: &[f64], power: f64) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (p, &v) in self.points.iter().zip(&self.values) {
            let d2 = self.norm_dist2(point, p);
            if d2 < 1e-24 {
                return v; // exact hit
            }
            let w = d2.powf(-power / 2.0);
            num += w * v;
            den += w;
        }
        num / den
    }

    fn eval_rbf(&self, point: &[f64]) -> f64 {
        let two_w2 = 2.0 * self.rbf_width * self.rbf_width;
        self.points
            .iter()
            .zip(&self.rbf_weights)
            .map(|(p, &w)| w * (-self.norm_dist2(point, p) / two_w2).exp())
            .sum()
    }

    /// Finds the sample nearest to `point` (normalised distance),
    /// returning `(index, distance)`. Useful for inverse lookups that
    /// need the discrete designs behind an interpolated value.
    pub fn nearest(&self, point: &[f64]) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (i, p) in self.points.iter().enumerate() {
            let d2 = self.norm_dist2(point, p);
            if d2 < best.1 {
                best = (i, d2);
            }
        }
        (best.0, best.1.sqrt())
    }

    /// The raw sample points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The raw sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_samples() -> (Vec<Vec<f64>>, Vec<f64>) {
        // f(x, y) = 3x − 2y + 1 sampled irregularly.
        let pts = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.5, 0.25],
            vec![0.25, 0.75],
            vec![0.8, 0.6],
            vec![0.3, 0.2],
        ];
        let vals = pts.iter().map(|p| 3.0 * p[0] - 2.0 * p[1] + 1.0).collect();
        (pts, vals)
    }

    #[test]
    fn idw_exact_at_samples() {
        let (pts, vals) = plane_samples();
        let t = ScatteredTable::new(pts.clone(), vals.clone(), ScatterMethod::default()).unwrap();
        for (p, v) in pts.iter().zip(&vals) {
            assert!((t.eval(p).unwrap() - v).abs() < 1e-9);
        }
    }

    #[test]
    fn rbf_exact_at_samples() {
        let (pts, vals) = plane_samples();
        let t = ScatteredTable::new(pts.clone(), vals.clone(), ScatterMethod::Rbf { shape: 1.5 })
            .unwrap();
        for (p, v) in pts.iter().zip(&vals) {
            assert!(
                (t.eval(p).unwrap() - v).abs() < 1e-3,
                "rbf at {p:?}: {} vs {v}",
                t.eval(p).unwrap()
            );
        }
    }

    #[test]
    fn rbf_beats_idw_on_smooth_field_interior() {
        let (pts, vals) = plane_samples();
        let idw = ScatteredTable::new(pts.clone(), vals.clone(), ScatterMethod::default()).unwrap();
        let rbf = ScatteredTable::new(pts, vals, ScatterMethod::Rbf { shape: 1.5 }).unwrap();
        let probe = [0.6, 0.4];
        let truth = 3.0 * probe[0] - 2.0 * probe[1] + 1.0;
        let err_idw = (idw.eval(&probe).unwrap() - truth).abs();
        let err_rbf = (rbf.eval(&probe).unwrap() - truth).abs();
        assert!(
            err_rbf < err_idw,
            "rbf {err_rbf} should beat idw {err_idw} on a smooth plane"
        );
    }

    #[test]
    fn no_extrapolation_outside_bounding_box() {
        let (pts, vals) = plane_samples();
        let t = ScatteredTable::new(pts, vals, ScatterMethod::default()).unwrap();
        assert!(matches!(
            t.eval(&[2.0, 0.5]),
            Err(TableModelError::OutOfDomain { dim: 0, .. })
        ));
        assert!(matches!(
            t.eval(&[0.5, -1.0]),
            Err(TableModelError::OutOfDomain { dim: 1, .. })
        ));
    }

    #[test]
    fn margin_expands_domain() {
        let (pts, vals) = plane_samples();
        let t = ScatteredTable::new(pts, vals, ScatterMethod::default())
            .unwrap()
            .with_margin(0.1);
        assert!(t.eval(&[1.05, 0.5]).is_ok());
        assert!(t.eval(&[1.5, 0.5]).is_err());
    }

    #[test]
    fn nearest_finds_closest_sample() {
        let (pts, vals) = plane_samples();
        let t = ScatteredTable::new(pts, vals, ScatterMethod::default()).unwrap();
        let (idx, d) = t.nearest(&[0.49, 0.26]);
        assert_eq!(idx, 4); // (0.5, 0.25)
        assert!(d < 0.05);
    }

    #[test]
    fn heterogeneous_scales_are_normalised() {
        // One axis in GHz, the other in mA: without normalisation the
        // large axis would dominate distances entirely.
        let pts = vec![
            vec![1.0e9, 1.0e-3],
            vec![2.0e9, 1.0e-3],
            vec![1.0e9, 5.0e-3],
            vec![2.0e9, 5.0e-3],
        ];
        let vals = vec![0.0, 1.0, 10.0, 11.0];
        let t = ScatteredTable::new(pts, vals, ScatterMethod::default()).unwrap();
        // Mid-point should be influenced equally by both axes: near the mean.
        let mid = t.eval(&[1.5e9, 3.0e-3]).unwrap();
        assert!((mid - 5.5).abs() < 1.0, "got {mid}");
    }

    #[test]
    fn max_gap_rejects_off_manifold_queries() {
        // Samples along the diagonal of the unit square: the corner
        // (1, 0) is inside the bounding box but far from the manifold.
        let pts: Vec<Vec<f64>> = (0..11)
            .map(|i| vec![i as f64 / 10.0, i as f64 / 10.0])
            .collect();
        let vals: Vec<f64> = pts.iter().map(|p| p[0]).collect();
        let t = ScatteredTable::new(pts, vals, ScatterMethod::default())
            .unwrap()
            .with_max_gap(0.2);
        assert!(t.eval(&[0.52, 0.55]).is_ok(), "near the diagonal");
        assert!(matches!(
            t.eval(&[1.0, 0.0]),
            Err(TableModelError::TooFarFromSamples { .. })
        ));
        assert!(t.gap_of(&[1.0, 0.0]) > 0.5);
        assert!(t.mean_nn_distance() > 0.0);
    }

    #[test]
    fn construction_errors() {
        assert!(ScatteredTable::new(vec![], vec![], ScatterMethod::default()).is_err());
        assert!(ScatteredTable::new(
            vec![vec![0.0], vec![1.0, 2.0]],
            vec![0.0, 1.0],
            ScatterMethod::default()
        )
        .is_err());
        assert!(ScatteredTable::new(
            vec![vec![0.0], vec![1.0]],
            vec![0.0],
            ScatterMethod::default()
        )
        .is_err());
        assert!(ScatteredTable::new(
            vec![vec![f64::NAN], vec![1.0]],
            vec![0.0, 1.0],
            ScatterMethod::default()
        )
        .is_err());
    }
}
