//! The `$table_model` facade: load a `.tbl` file, inspect its structure
//! and dispatch to the right interpolator.
//!
//! Verilog-A's `$table_model(x1, …, xn, "file.tbl", "ctrl")` assumes
//! gridded data; Pareto fronts are scattered. [`TableModel`] therefore
//! auto-detects: 1-D data uses [`Table1d`]; N-D data forming a complete
//! grid uses [`GridTable`]; anything else uses [`ScatteredTable`] with
//! the strict no-extrapolation guard (degree is honoured where the
//! structure allows, extrapolation policy always is).

use std::path::Path;

use crate::control::{ControlSpec, Extrapolation};
use crate::error::TableModelError;
use crate::grid::GridTable;
use crate::interp::Table1d;
use crate::scattered::{ScatterMethod, ScatteredTable};
use crate::tbl_io::{parse_tbl, read_tbl_file, TblData};

/// A loaded table model, dispatching on data structure.
#[derive(Debug, Clone)]
pub enum TableModel {
    /// One input dimension.
    OneD(Table1d),
    /// Complete N-dimensional grid.
    Grid(GridTable),
    /// Scattered N-dimensional samples.
    Scattered(ScatteredTable),
}

impl TableModel {
    /// Builds a model from parsed `.tbl` data and a control string
    /// (single clause applied to all dimensions, or one clause per
    /// dimension comma-separated, like Verilog-A).
    ///
    /// # Errors
    ///
    /// Propagates control-string, data-validation and construction
    /// errors from the underlying interpolators.
    pub fn from_data(data: &TblData, control: &str) -> Result<Self, TableModelError> {
        let mut controls = ControlSpec::parse_multi(control)?;
        let dim = data.dim();
        if controls.len() == 1 && dim > 1 {
            controls = vec![controls[0]; dim];
        }
        if controls.len() != dim {
            return Err(TableModelError::BadControl {
                token: control.to_string(),
            });
        }

        if dim == 1 {
            let xs: Vec<f64> = data.points.iter().map(|p| p[0]).collect();
            return Ok(TableModel::OneD(Table1d::new(
                xs,
                data.values.clone(),
                controls[0],
            )?));
        }

        if let Some((axes, values)) = detect_grid(data) {
            return Ok(TableModel::Grid(GridTable::new(axes, values, controls)?));
        }

        // Scattered fallback: honour the extrapolation policy via the
        // domain margin (Error → none, Clamp/Linear approximated by a
        // generous margin since true extrapolation of scattered data is
        // ill-posed).
        let strict = controls
            .iter()
            .all(|c| c.extrapolation == Extrapolation::Error);
        let table = ScatteredTable::new(
            data.points.clone(),
            data.values.clone(),
            ScatterMethod::default(),
        )?
        .with_margin(if strict { 0.0 } else { 0.25 });
        Ok(TableModel::Scattered(table))
    }

    /// Loads a model from `.tbl` text.
    ///
    /// # Errors
    ///
    /// See [`TableModel::from_data`].
    pub fn from_str_data(text: &str, control: &str) -> Result<Self, TableModelError> {
        Self::from_data(&parse_tbl(text)?, control)
    }

    /// Loads a model from a `.tbl` file — the equivalent of
    /// `$table_model(…, path, control)`.
    ///
    /// # Errors
    ///
    /// Adds [`TableModelError::Io`] to the set from
    /// [`TableModel::from_data`].
    pub fn from_file<P: AsRef<Path>>(path: P, control: &str) -> Result<Self, TableModelError> {
        Self::from_data(&read_tbl_file(path)?, control)
    }

    /// Number of input dimensions.
    pub fn dim(&self) -> usize {
        match self {
            TableModel::OneD(_) => 1,
            TableModel::Grid(g) => g.dim(),
            TableModel::Scattered(s) => s.dim(),
        }
    }

    /// Evaluates the model at `point`.
    ///
    /// # Errors
    ///
    /// Returns [`TableModelError::OutOfDomain`] per the control policy
    /// and [`TableModelError::BadData`] on dimension mismatch.
    pub fn eval(&self, point: &[f64]) -> Result<f64, TableModelError> {
        match self {
            TableModel::OneD(t) => {
                if point.len() != 1 {
                    return Err(TableModelError::BadData {
                        message: format!("{}-d query on a 1-d table", point.len()),
                    });
                }
                t.eval(point[0])
            }
            TableModel::Grid(g) => g.eval(point),
            TableModel::Scattered(s) => s.eval(point),
        }
    }

    /// Domain of input dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= dim()`.
    pub fn domain(&self, d: usize) -> (f64, f64) {
        match self {
            TableModel::OneD(t) => {
                assert_eq!(d, 0, "1-d table has a single dimension");
                t.domain()
            }
            TableModel::Grid(g) => g.domain(d),
            TableModel::Scattered(s) => s.domain()[d],
        }
    }
}

/// Detects whether scattered rows actually form a complete regular grid;
/// returns the axes and row-major (last axis fastest) values if so.
fn detect_grid(data: &TblData) -> Option<(Vec<Vec<f64>>, Vec<f64>)> {
    let dim = data.dim();
    let mut axes: Vec<Vec<f64>> = vec![Vec::new(); dim];
    for p in &data.points {
        for (d, &v) in p.iter().enumerate() {
            axes[d].push(v);
        }
    }
    for axis in axes.iter_mut() {
        axis.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        axis.dedup_by(|a, b| (*a - *b).abs() < 1e-30 || a == b);
    }
    let cells: usize = axes.iter().map(|a| a.len()).product();
    if cells != data.len() || axes.iter().any(|a| a.len() < 2) {
        return None;
    }
    // Place every sample into its grid cell; every cell must be filled
    // exactly once.
    let mut values = vec![f64::NAN; cells];
    let mut filled = vec![false; cells];
    for (p, &v) in data.points.iter().zip(&data.values) {
        let mut index = 0usize;
        for (d, &x) in p.iter().enumerate() {
            let k = axes[d].iter().position(|&a| a == x)?;
            index = index * axes[d].len() + k;
        }
        if filled[index] {
            return None;
        }
        filled[index] = true;
        values[index] = v;
    }
    if filled.iter().all(|&f| f) {
        Some((axes, values))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_d_dispatch() {
        let m = TableModel::from_str_data("0 0\n1 1\n2 4\n3 9\n", "3E").unwrap();
        assert!(matches!(m, TableModel::OneD(_)));
        assert_eq!(m.dim(), 1);
        assert!(m.eval(&[3.5]).is_err());
        assert!((m.eval(&[3.0]).unwrap() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn grid_dispatch_and_eval() {
        // 2×3 grid of f = x + 10y, rows in scrambled order.
        let text = "\
1 20 201
0 10 100
1 10 101
0 30 300
1 30 301
0 20 200
";
        let m = TableModel::from_str_data(text, "1E,1E").unwrap();
        assert!(matches!(m, TableModel::Grid(_)));
        let v = m.eval(&[0.5, 15.0]).unwrap();
        // f = x + 10y with our synthetic values: f(0,10)=100 …
        // bilinear between 100,101,200,201 at midpoints → 150.5.
        assert!((v - 150.5).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn scattered_dispatch_for_pareto_like_data() {
        // 5 points in 2-d that do not form a grid.
        let text = "\
0.0 0.0 1.0
1.0 0.1 2.0
0.2 0.9 3.0
0.7 0.6 2.5
0.4 0.3 1.8
";
        let m = TableModel::from_str_data(text, "3E").unwrap();
        assert!(matches!(m, TableModel::Scattered(_)));
        assert!(m.eval(&[0.4, 0.3]).is_ok());
        assert!(m.eval(&[2.0, 2.0]).is_err());
    }

    #[test]
    fn single_control_broadcasts_to_all_dims() {
        let text = "0 0 0\n0 1 1\n1 0 2\n1 1 3\n";
        let m = TableModel::from_str_data(text, "1E").unwrap();
        assert!(matches!(m, TableModel::Grid(_)));
        assert!((m.eval(&[0.5, 0.5]).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn control_count_mismatch_rejected() {
        let text = "0 0 0\n0 1 1\n1 0 2\n1 1 3\n";
        assert!(matches!(
            TableModel::from_str_data(text, "1E,1E,1E"),
            Err(TableModelError::BadControl { .. })
        ));
    }

    #[test]
    fn incomplete_grid_falls_back_to_scattered() {
        // 2×2 grid with one cell missing plus an extra point → scattered.
        let text = "0 0 0\n0 1 1\n1 0 2\n0.5 0.5 1.5\n";
        let m = TableModel::from_str_data(text, "3E").unwrap();
        assert!(matches!(m, TableModel::Scattered(_)));
    }

    #[test]
    fn duplicate_grid_cell_falls_back_to_scattered() {
        let text = "0 0 0\n0 1 1\n1 0 2\n1 0 5\n";
        // 4 samples, axes 2×2, but cell (1,0) duplicated and (1,1) missing.
        let m = TableModel::from_str_data(text, "1E").unwrap();
        assert!(matches!(m, TableModel::Scattered(_)));
    }

    #[test]
    fn domain_accessor() {
        let m = TableModel::from_str_data("0 1\n5 2\n", "1C").unwrap();
        assert_eq!(m.domain(0), (0.0, 5.0));
    }

    #[test]
    fn file_loading_matches_str_loading() {
        let dir = std::env::temp_dir().join("tablemodel_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.tbl");
        std::fs::write(&path, "0 0\n1 2\n2 4\n").unwrap();
        let from_file = TableModel::from_file(&path, "1E").unwrap();
        let from_str = TableModel::from_str_data("0 0\n1 2\n2 4\n", "1E").unwrap();
        assert_eq!(
            from_file.eval(&[1.5]).unwrap(),
            from_str.eval(&[1.5]).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }
}
