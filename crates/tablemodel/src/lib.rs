//! Verilog-A style table models: lookup tables with interpolation.
//!
//! The DATE 2009 flow stores Pareto-front performance and variation data
//! in `.tbl` files and interpolates them with the Verilog-A
//! `$table_model` system function, using cubic splines and **no
//! extrapolation** (control string `"3E"`). This crate reproduces those
//! semantics:
//!
//! * [`control`] — control-string parsing (`"1C"`, `"2L"`, `"3E"`,
//!   comma-separated per input dimension);
//! * [`spline`] — natural cubic splines;
//! * [`interp`] — 1-D tables with linear/quadratic/cubic interpolation
//!   and clamp/linear/error extrapolation;
//! * [`grid`] — N-dimensional regular-grid tables (tensor-product
//!   interpolation, dimension-reducing evaluation);
//! * [`scattered`] — scattered-data models (inverse-distance weighting
//!   and Gaussian radial basis functions) for Pareto clouds, which are
//!   not grid data;
//! * [`tbl_io`] — the whitespace-separated `.tbl` file format;
//! * [`model`] — [`model::TableModel`], the `$table_model` facade that
//!   loads a file, inspects its structure (grid vs scattered) and
//!   dispatches accordingly.
//!
//! # Examples
//!
//! A 1-D cubic-spline table with the paper's no-extrapolation rule:
//!
//! ```
//! use tablemodel::interp::Table1d;
//! use tablemodel::control::ControlSpec;
//!
//! # fn main() -> Result<(), tablemodel::TableModelError> {
//! let control: ControlSpec = "3E".parse()?;
//! let table = Table1d::new(
//!     vec![0.0, 1.0, 2.0, 3.0],
//!     vec![0.0, 1.0, 4.0, 9.0],
//!     control,
//! )?;
//! let y = table.eval(1.5)?;
//! assert!((y - 2.25).abs() < 0.15); // near x² with spline accuracy
//! assert!(table.eval(5.0).is_err()); // "E": no extrapolation
//! # Ok(())
//! # }
//! ```

pub mod control;
pub mod error;
pub mod grid;
pub mod interp;
pub mod model;
pub mod scattered;
pub mod spline;
pub mod tbl_io;

pub use control::{ControlSpec, Extrapolation, InterpDegree};
pub use error::TableModelError;
pub use model::TableModel;
