//! Verilog-A `$table_model` control-string parsing.
//!
//! A control string carries one clause per input dimension, comma
//! separated. Each clause is a degree digit (`1` linear, `2` quadratic,
//! `3` cubic spline) followed by an optional extrapolation letter:
//! `C` clamp to the end values, `L` extrapolate linearly, `E` error
//! (refuse to extrapolate). The paper uses `"3E"` throughout — cubic
//! splines, extrapolation forbidden.

use std::fmt;
use std::str::FromStr;

use crate::error::TableModelError;

/// Interpolation degree of one table dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InterpDegree {
    /// Piecewise linear.
    Linear,
    /// Local quadratic (3-point Lagrange).
    Quadratic,
    /// Natural cubic spline.
    #[default]
    Cubic,
}

/// Extrapolation behaviour outside the sampled domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Extrapolation {
    /// Clamp to the boundary value.
    Clamp,
    /// Continue with the boundary slope.
    Linear,
    /// Refuse: evaluation returns
    /// [`TableModelError::OutOfDomain`].
    #[default]
    Error,
}

/// Parsed control clause for one input dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ControlSpec {
    /// Interpolation degree.
    pub degree: InterpDegree,
    /// Extrapolation behaviour.
    pub extrapolation: Extrapolation,
}

impl ControlSpec {
    /// The paper's choice: cubic spline, no extrapolation (`"3E"`).
    pub fn cubic_no_extrapolation() -> Self {
        ControlSpec {
            degree: InterpDegree::Cubic,
            extrapolation: Extrapolation::Error,
        }
    }

    /// Parses a comma-separated multi-dimension control string like
    /// `"3E,3E,1C"`.
    ///
    /// # Errors
    ///
    /// Returns [`TableModelError::BadControl`] on malformed clauses.
    pub fn parse_multi(s: &str) -> Result<Vec<ControlSpec>, TableModelError> {
        s.split(',').map(|clause| clause.trim().parse()).collect()
    }
}

impl FromStr for ControlSpec {
    type Err = TableModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let bad = || TableModelError::BadControl {
            token: s.to_string(),
        };
        let mut chars = s.chars();
        let degree = match chars.next().ok_or_else(bad)? {
            '1' => InterpDegree::Linear,
            '2' => InterpDegree::Quadratic,
            '3' => InterpDegree::Cubic,
            _ => return Err(bad()),
        };
        let extrapolation = match chars.next() {
            None => Extrapolation::default(),
            Some(c) => match c.to_ascii_uppercase() {
                'C' => Extrapolation::Clamp,
                'L' => Extrapolation::Linear,
                'E' => Extrapolation::Error,
                _ => return Err(bad()),
            },
        };
        if chars.next().is_some() {
            return Err(bad());
        }
        Ok(ControlSpec {
            degree,
            extrapolation,
        })
    }
}

impl fmt::Display for ControlSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = match self.degree {
            InterpDegree::Linear => '1',
            InterpDegree::Quadratic => '2',
            InterpDegree::Cubic => '3',
        };
        let e = match self.extrapolation {
            Extrapolation::Clamp => 'C',
            Extrapolation::Linear => 'L',
            Extrapolation::Error => 'E',
        };
        write!(f, "{d}{e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_control() {
        let c: ControlSpec = "3E".parse().unwrap();
        assert_eq!(c, ControlSpec::cubic_no_extrapolation());
    }

    #[test]
    fn parses_all_degrees_and_modes() {
        for (s, d, e) in [
            ("1C", InterpDegree::Linear, Extrapolation::Clamp),
            ("2L", InterpDegree::Quadratic, Extrapolation::Linear),
            ("3e", InterpDegree::Cubic, Extrapolation::Error),
            ("1", InterpDegree::Linear, Extrapolation::Error),
        ] {
            let c: ControlSpec = s.parse().unwrap();
            assert_eq!(c.degree, d, "{s}");
            assert_eq!(c.extrapolation, e, "{s}");
        }
    }

    #[test]
    fn parse_multi_splits_dimensions() {
        let v = ControlSpec::parse_multi("3E, 1C,2L").unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[1].degree, InterpDegree::Linear);
        assert_eq!(v[2].extrapolation, Extrapolation::Linear);
    }

    #[test]
    fn rejects_garbage() {
        assert!("4E".parse::<ControlSpec>().is_err());
        assert!("3X".parse::<ControlSpec>().is_err());
        assert!("".parse::<ControlSpec>().is_err());
        assert!("3EE".parse::<ControlSpec>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for s in ["1C", "2L", "3E"] {
            let c: ControlSpec = s.parse().unwrap();
            assert_eq!(c.to_string(), s);
            let back: ControlSpec = c.to_string().parse().unwrap();
            assert_eq!(back, c);
        }
    }
}
