//! The `.tbl` data-file format of Verilog-A `$table_model`:
//! whitespace-separated columns, one sample per line, the last column is
//! the value, `#` and `//` start comments.

use std::path::Path;

use crate::error::TableModelError;

/// Parsed `.tbl` content: points (one row per sample, inputs only) and
/// the value column.
#[derive(Debug, Clone, PartialEq)]
pub struct TblData {
    /// Input coordinates, one row per sample.
    pub points: Vec<Vec<f64>>,
    /// Sampled values (last column).
    pub values: Vec<f64>,
}

impl TblData {
    /// Number of input dimensions.
    pub fn dim(&self) -> usize {
        self.points.first().map_or(0, |p| p.len())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the file contained no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Parses `.tbl` text.
///
/// # Errors
///
/// Returns [`TableModelError::Parse`] (with line numbers) on malformed
/// rows and [`TableModelError::BadData`] when rows have inconsistent
/// column counts or no data lines exist.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), tablemodel::TableModelError> {
/// let data = tablemodel::tbl_io::parse_tbl("# f(x)\n0 0\n1 1\n2 4\n")?;
/// assert_eq!(data.dim(), 1);
/// assert_eq!(data.values, vec![0.0, 1.0, 4.0]);
/// # Ok(())
/// # }
/// ```
pub fn parse_tbl(text: &str) -> Result<TblData, TableModelError> {
    let mut points = Vec::new();
    let mut values = Vec::new();
    let mut columns: Option<usize> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = match raw.find(['#']) {
            Some(i) => &raw[..i],
            None => raw,
        };
        let line = match line.find("//") {
            Some(i) => &line[..i],
            None => line,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for tok in line.split_whitespace() {
            let v: f64 = tok.parse().map_err(|_| TableModelError::Parse {
                line: lineno + 1,
                message: format!("malformed number `{tok}`"),
            })?;
            row.push(v);
        }
        if row.len() < 2 {
            return Err(TableModelError::Parse {
                line: lineno + 1,
                message: "need at least one input column and one value column".to_string(),
            });
        }
        match columns {
            None => columns = Some(row.len()),
            Some(c) if c != row.len() => {
                return Err(TableModelError::Parse {
                    line: lineno + 1,
                    message: format!("row has {} columns, expected {c}", row.len()),
                })
            }
            _ => {}
        }
        let value = row.pop().expect("row non-empty");
        points.push(row);
        values.push(value);
    }

    if points.is_empty() {
        return Err(TableModelError::BadData {
            message: "tbl file contains no data rows".to_string(),
        });
    }
    Ok(TblData { points, values })
}

/// Reads and parses a `.tbl` file.
///
/// # Errors
///
/// Returns [`TableModelError::Io`] on filesystem errors plus any parse
/// error.
pub fn read_tbl_file<P: AsRef<Path>>(path: P) -> Result<TblData, TableModelError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| TableModelError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    parse_tbl(&text)
}

/// Serialises samples to `.tbl` text (full precision, one row per
/// sample).
///
/// # Panics
///
/// Panics if `points` and `values` differ in length.
pub fn format_tbl(points: &[Vec<f64>], values: &[f64], header: &str) -> String {
    assert_eq!(points.len(), values.len(), "points/values length mismatch");
    let mut out = String::new();
    for line in header.lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    for (p, v) in points.iter().zip(values) {
        for x in p {
            out.push_str(&format!("{x:.12e} "));
        }
        out.push_str(&format!("{v:.12e}\n"));
    }
    out
}

/// Writes samples to a `.tbl` file.
///
/// # Errors
///
/// Returns [`TableModelError::Io`] on filesystem errors.
///
/// # Panics
///
/// Panics if `points` and `values` differ in length.
pub fn write_tbl_file<P: AsRef<Path>>(
    path: P,
    points: &[Vec<f64>],
    values: &[f64],
    header: &str,
) -> Result<(), TableModelError> {
    let path = path.as_ref();
    std::fs::write(path, format_tbl(points, values, header)).map_err(|e| TableModelError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multicolumn_with_comments() {
        let text = "\
# kvco ivco jvco
// another comment style
1e9  1e-3  0.13e-12
2e9  2e-3  0.29e-12   # inline comment
";
        let d = parse_tbl(text).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 2);
        assert!((d.points[1][0] - 2e9).abs() < 1.0);
        assert!((d.values[0] - 0.13e-12).abs() < 1e-20);
    }

    #[test]
    fn rejects_inconsistent_columns() {
        let err = parse_tbl("1 2\n1 2 3\n").unwrap_err();
        assert!(matches!(err, TableModelError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_garbage_numbers() {
        let err = parse_tbl("1 abc\n").unwrap_err();
        assert!(matches!(err, TableModelError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_empty_file() {
        assert!(matches!(
            parse_tbl("# only comments\n"),
            Err(TableModelError::BadData { .. })
        ));
    }

    #[test]
    fn rejects_single_column() {
        assert!(parse_tbl("42\n").is_err());
    }

    #[test]
    fn format_and_parse_round_trip() {
        let points = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let values = vec![0.5, -0.25];
        let text = format_tbl(&points, &values, "performance model");
        let back = parse_tbl(&text).unwrap();
        assert_eq!(back.points, points);
        assert_eq!(back.values, values);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("tablemodel_test_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.tbl");
        let points = vec![vec![1e9], vec![2e9], vec![3e9]];
        let values = vec![0.1, 0.2, 0.15];
        write_tbl_file(&path, &points, &values, "1-d").unwrap();
        let back = read_tbl_file(&path).unwrap();
        assert_eq!(back.points, points);
        assert_eq!(back.values, values);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = read_tbl_file("/definitely/not/here.tbl").unwrap_err();
        assert!(matches!(err, TableModelError::Io { .. }));
    }
}
