//! `.tbl` file round-trips through the interpolators, plus the
//! malformed-file surface: what the flow writes it must read back, and
//! what it cannot read it must refuse with line-level provenance.

use tablemodel::error::TableModelError;
use tablemodel::interp::Table1d;
use tablemodel::scattered::{ScatterMethod, ScatteredTable};
use tablemodel::tbl_io::{format_tbl, parse_tbl, read_tbl_file, write_tbl_file};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tablemodel_roundtrip_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Pareto-cloud-shaped 2-D data: (kvco, ivco) → jitter.
fn cloud() -> (Vec<Vec<f64>>, Vec<f64>) {
    let points: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            let t = i as f64 / 11.0;
            vec![1.0e9 + 8.0e8 * t, 8.0e-3 + 4.0e-3 * t * t]
        })
        .collect();
    let values: Vec<f64> = points
        .iter()
        .map(|p| 1.0e-13 * (2.0 - p[0] / 2.0e9) * (1.0 + p[1] / 1.0e-2))
        .collect();
    (points, values)
}

/// Writing a scattered model to `.tbl` and reading it back preserves
/// the interpolant within formatting precision, and a second write →
/// read cycle is a bit-exact fixpoint (the 12-digit format is
/// idempotent after one pass).
#[test]
fn scattered_table_survives_tbl_round_trip() {
    let dir = scratch_dir("scattered");
    let path = dir.join("cloud.tbl");
    let (points, values) = cloud();

    write_tbl_file(&path, &points, &values, "jitter(kvco, ivco)").expect("writes");
    let once = read_tbl_file(&path).expect("reads back");
    assert_eq!(once.len(), points.len());
    assert_eq!(once.dim(), 2);

    let method = ScatterMethod::Idw { power: 2.0 };
    let original = ScatteredTable::new(points.clone(), values.clone(), method)
        .expect("original builds")
        .with_max_gap(1e9);
    let reread = ScatteredTable::new(once.points.clone(), once.values.clone(), method)
        .expect("re-read builds")
        .with_max_gap(1e9);
    for probe in &points {
        let a = original.eval(probe).expect("in-domain");
        let b = reread.eval(probe).expect("in-domain");
        assert!(
            (a - b).abs() <= 1e-9 * a.abs(),
            "probe {probe:?}: {a:e} vs {b:e}"
        );
    }

    // Fixpoint: once the data has passed through the 12-digit format,
    // further round trips must not move a single bit.
    write_tbl_file(&path, &once.points, &once.values, "second pass").expect("writes");
    let twice = read_tbl_file(&path).expect("reads back");
    for (pa, pb) in once.points.iter().zip(&twice.points) {
        for (a, b) in pa.iter().zip(pb) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    for (a, b) in once.values.iter().zip(&twice.values) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// A 1-D `.tbl` column drives a `"3E"` table whose knots reproduce the
/// file's values bit-exactly after the first format pass.
#[test]
fn table1d_from_tbl_file_reproduces_file_knots() {
    let dir = scratch_dir("table1d");
    let path = dir.join("kvco.tbl");
    let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![0.5 + 0.25 * i as f64]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| (1.4 * x[0]).sin() + 2.0).collect();

    write_tbl_file(&path, &xs, &ys, "kvco(vctrl)").expect("writes");
    let data = read_tbl_file(&path).expect("reads");
    let table = Table1d::new(
        data.points.iter().map(|p| p[0]).collect(),
        data.values.clone(),
        "3E".parse().expect("3E parses"),
    )
    .expect("table builds");
    for (p, v) in data.points.iter().zip(&data.values) {
        let got = table.eval(p[0]).expect("knots in-domain");
        assert_eq!(
            got.to_bits(),
            v.to_bits(),
            "knot {}: {v:e} vs {got:e}",
            p[0]
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Malformed files fail with the offending line number, through the
/// file-reading path (not just the string parser).
#[test]
fn malformed_files_fail_with_line_provenance() {
    let dir = scratch_dir("malformed");
    type ErrCheck = fn(&TableModelError) -> bool;
    let cases: [(&str, &str, ErrCheck); 5] = [
        ("garbage.tbl", "1.0 2.0\n1.5 oops\n", |e| {
            matches!(e, TableModelError::Parse { line: 2, .. })
        }),
        ("ragged.tbl", "1 2 3\n1 2\n", |e| {
            matches!(e, TableModelError::Parse { line: 2, .. })
        }),
        ("single_column.tbl", "42\n", |e| {
            matches!(e, TableModelError::Parse { line: 1, .. })
        }),
        ("comments_only.tbl", "# header\n// nothing else\n", |e| {
            matches!(e, TableModelError::BadData { .. })
        }),
        ("empty.tbl", "", |e| {
            matches!(e, TableModelError::BadData { .. })
        }),
    ];
    for (name, text, is_expected) in cases {
        let path = dir.join(name);
        std::fs::write(&path, text).expect("fixture writes");
        let err = read_tbl_file(&path).expect_err(name);
        assert!(is_expected(&err), "{name}: unexpected error {err:?}");
        // The parser must agree with the file path byte for byte.
        let direct = parse_tbl(text).expect_err(name);
        assert_eq!(format!("{err}"), format!("{direct}"), "{name}");
    }

    let missing = read_tbl_file(dir.join("not_there.tbl")).expect_err("missing file");
    assert!(matches!(missing, TableModelError::Io { .. }), "{missing:?}");

    std::fs::remove_dir_all(&dir).ok();
}

/// An inline comment after the value column must not change the parse,
/// and headers written by `format_tbl` must read back as comments.
#[test]
fn comments_and_headers_are_transparent() {
    let with_comments = "1.0 10.0 # nominal\n2.0 20.0 // corner\n";
    let plain = "1.0 10.0\n2.0 20.0\n";
    assert_eq!(
        parse_tbl(with_comments).expect("comments parse"),
        parse_tbl(plain).expect("plain parses")
    );

    let text = format_tbl(&[vec![1.0], vec![2.0]], &[10.0, 20.0], "two-line\nheader");
    let parsed = parse_tbl(&text).expect("own output parses");
    assert_eq!(parsed.len(), 2);
    assert_eq!(parsed.values, vec![10.0, 20.0]);
}
