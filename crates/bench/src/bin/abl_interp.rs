//! ABL-INTERP — ablation of the paper's interpolation choice: cubic
//! spline (`"3E"`) vs quadratic vs linear 1-D table models, and IDW vs
//! RBF scattered models, measured as leave-one-out error on the
//! characterised Pareto front.
//!
//! ```text
//! cargo run --release -p bench --bin abl_interp [-- --full]
//! ```

use bench::{load_or_build_front, Budget};
use tablemodel::interp::Table1d;
use tablemodel::scattered::{ScatterMethod, ScatteredTable};

fn main() {
    let budget = Budget::from_args();
    let front = load_or_build_front(budget);
    let mut points: Vec<_> = front.points.clone();
    points.sort_by(|a, b| a.perf.kvco.partial_cmp(&b.perf.kvco).unwrap());
    let n = points.len();
    if n < 4 {
        eprintln!("need at least 4 characterised points, got {n}");
        return;
    }

    println!("# ABL-INTERP: leave-one-out error of the table models ({n} points)\n");

    // 1-D models: kvco -> jvco along the sorted front (interior points
    // only — no extrapolation, matching the paper's "3E").
    println!("## 1-D kvco->jvco table (relative LOO error, interior points)");
    for ctrl in ["1C", "2C", "3C"] {
        let mut errs = Vec::new();
        for hold in 1..n - 1 {
            let xs: Vec<f64> = points
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != hold)
                .map(|(_, p)| p.perf.kvco)
                .collect();
            let ys: Vec<f64> = points
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != hold)
                .map(|(_, p)| p.perf.jvco)
                .collect();
            let Ok(table) = Table1d::new(xs, ys, ctrl.parse().unwrap()) else {
                continue;
            };
            if let Ok(pred) = table.eval(points[hold].perf.kvco) {
                let truth = points[hold].perf.jvco;
                errs.push(((pred - truth) / truth).abs());
            }
        }
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        println!(
            "  degree {} : mean |rel err| = {:.4} ({} points)",
            &ctrl[..1],
            mean,
            errs.len()
        );
    }

    // Scattered models: (kvco, ivco) -> jvco.
    println!("\n## scattered (kvco, ivco)->jvco (relative LOO error)");
    for (name, method) in [
        ("IDW p=2", ScatterMethod::Idw { power: 2.0 }),
        ("IDW p=4", ScatterMethod::Idw { power: 4.0 }),
        ("RBF gaussian", ScatterMethod::Rbf { shape: 1.5 }),
    ] {
        let mut errs = Vec::new();
        for hold in 0..n {
            let pts: Vec<Vec<f64>> = points
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != hold)
                .map(|(_, p)| vec![p.perf.kvco, p.perf.ivco])
                .collect();
            let vals: Vec<f64> = points
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != hold)
                .map(|(_, p)| p.perf.jvco)
                .collect();
            let Ok(table) = ScatteredTable::new(pts, vals, method) else {
                continue;
            };
            let table = table.with_margin(0.2);
            if let Ok(pred) = table.eval(&[points[hold].perf.kvco, points[hold].perf.ivco]) {
                let truth = points[hold].perf.jvco;
                errs.push(((pred - truth) / truth).abs());
            }
        }
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        println!(
            "  {name:<12}: mean |rel err| = {:.4} ({} points)",
            mean,
            errs.len()
        );
    }

    println!("\n# paper choice: cubic splines (\"3E\"); the ablation shows whether");
    println!("# the extra smoothness helps at this front density.");
}
