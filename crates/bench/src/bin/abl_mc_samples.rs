//! ABL-MCN — ablation of the Monte-Carlo sample count (paper: 100 per
//! Pareto point): how stable are the ∆ estimates as the budget shrinks?
//! For each budget the ∆Kvco/∆Ivco estimates are recomputed with several
//! seeds; the seed-to-seed dispersion is the estimator noise.
//!
//! ```text
//! cargo run --release -p bench --bin abl_mc_samples
//! ```

use hierflow::VcoTestbench;
use netlist::topology::VcoSizing;
use variation::mc::{McConfig, MonteCarlo};
use variation::process::ProcessSpec;

fn main() {
    let tb = VcoTestbench::default();
    let sizing = VcoSizing::nominal();
    let ring = tb.build(&sizing);
    let engine = MonteCarlo::new(ProcessSpec::default());
    let seeds = [1u64, 2, 3, 4];

    println!("# ABL-MCN: delta-estimate stability vs MC sample count");
    println!("# (nominal sizing, {} seeds per budget)", seeds.len());
    println!(
        "{:>8} | {:>10} {:>10} | {:>10} {:>10}",
        "samples", "dKvco%", "spread", "dIvco%", "spread"
    );

    for samples in [10usize, 25, 50, 100] {
        let mut dk = Vec::new();
        let mut di = Vec::new();
        for &seed in &seeds {
            let cfg = McConfig {
                samples,
                seed,
                threads: 2,
            };
            let run = engine.run(&ring.circuit, &cfg, |_i, c| {
                tb.evaluate_circuit(c, &ring)
                    .ok()
                    .map(|p| p.to_array().to_vec())
            });
            if let (Some(k), Some(i)) = (run.delta_percent(0), run.delta_percent(1)) {
                dk.push(k);
                di.push(i);
            }
        }
        let stats = |v: &[f64]| -> (f64, f64) {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            let s = (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt();
            (m, s)
        };
        let (mk, sk) = stats(&dk);
        let (mi, si) = stats(&di);
        println!("{samples:>8} | {mk:>10.3} {sk:>10.3} | {mi:>10.3} {si:>10.3}");
    }
    println!("# expectation: the spread (seed-to-seed std) shrinks ~1/sqrt(n);");
    println!("# at the paper's 100 samples the estimates are stable to a few");
    println!("# percent of their value.");
}
