//! TAB2 — regenerates the paper's Table 2: PLL system-level solution
//! samples from NSGA-II over (Kvco, Ivco, C1, C2, R1) with the VCO
//! performance + variation model in the loop. Every performance carries
//! nominal/min/max values propagated through the variation model.
//!
//! ```text
//! cargo run --release -p bench --bin table2_system [-- --full]
//! ```

use std::sync::Arc;

use behavioral::spec::PllSpec;
use behavioral::timesim::LockSimConfig;
use bench::{artifact_dir, load_or_build_front, Budget};
use hierflow::model::PerfVariationModel;
use hierflow::propagate::select_design;
use hierflow::report::format_table2;
use hierflow::system_opt::{PllArchitecture, PllSystemProblem};
use moea::nsga2::{run_nsga2_seeded, Nsga2Config};

fn main() {
    let budget = Budget::from_args();
    let front = load_or_build_front(budget);
    let model = Arc::new(PerfVariationModel::from_front(&front).expect("model builds"));

    let ga = match budget {
        Budget::Quick => Nsga2Config {
            population: 48,
            generations: 24,
            seed: 7,
            eval_threads: 2,
            axial_seeds: true,
            ..Default::default()
        },
        Budget::Full => Nsga2Config {
            population: 64,
            generations: 40,
            seed: 7,
            eval_threads: 2,
            axial_seeds: true,
            ..Default::default()
        },
    };
    let problem = PllSystemProblem::new(
        Arc::clone(&model),
        PllArchitecture::default(),
        PllSpec::default(),
        LockSimConfig::default(),
    );
    eprintln!(
        "system-level NSGA-II {}x{} with the model in the loop...",
        ga.population, ga.generations
    );
    let result = run_nsga2_seeded(&problem, &ga, &problem.warm_start_seeds());
    let pareto = result.pareto_front();
    let rows: Vec<_> = pareto
        .iter()
        .filter_map(|ind| problem.detail(&ind.x).ok())
        .collect();

    println!(
        "# TAB2: pll system-level solution samples ({} budget, {} model evaluations)\n",
        budget.label(),
        result.evaluations
    );
    println!("{}", format_table2(&rows));

    match select_design(&problem, &pareto) {
        Ok((x, selected)) => {
            println!("# selected design (paper's shaded row):\n");
            println!("{}", format_table2(&[selected]));
            let path = artifact_dir().join(format!("selected_{}.json", budget.label()));
            let payload = serde_json::json!({
                "x": x,
                "solution": selected,
            });
            std::fs::write(&path, serde_json::to_string_pretty(&payload).unwrap())
                .expect("write selected design");
            println!("# selected design cached to {}", path.display());
        }
        Err(e) => println!("# no spec-compliant solution at this budget: {e}"),
    }
}
