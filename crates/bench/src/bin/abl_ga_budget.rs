//! ABL-GA — ablation of the GA budget (paper: 100×30): front quality
//! (3-D hypervolume over jitter/current/−gain) and feasible-front size
//! as a function of population × generations, plus the random-search
//! baseline at equal evaluation count.
//!
//! ```text
//! cargo run --release -p bench --bin abl_ga_budget
//! ```

use hierflow::vco_problem::VcoSizingProblem;
use hierflow::VcoTestbench;
use moea::baseline::{run_random_search, BaselineConfig};
use moea::hypervolume::hypervolume_3d;
use moea::nsga2::{run_nsga2, Nsga2Config};
use moea::problem::Individual;

/// Hypervolume of a front in (jitter ps, current mA, −gain GHz/V) space
/// against a fixed reference box.
fn front_hv(front: &[Individual]) -> f64 {
    let pts: Vec<Vec<f64>> = front
        .iter()
        .map(|ind| {
            vec![
                ind.objectives[0] * 1e12, // jitter ps
                ind.objectives[1] * 1e3,  // current mA
                ind.objectives[2] / 1e9,  // -gain GHz/V (already negated)
            ]
        })
        .collect();
    hypervolume_3d(&pts, &[2.0, 40.0, 0.0])
}

fn main() {
    let testbench = VcoTestbench::default();
    let problem = VcoSizingProblem::new(testbench);

    println!("# ABL-GA: front quality vs GA budget");
    println!(
        "{:>6} {:>6} {:>8} | {:>10} {:>8} | {:>12}",
        "pop", "gens", "evals", "hv", "front", "method"
    );

    for (pop, gens) in [(12usize, 3usize), (16, 6), (24, 10)] {
        let cfg = Nsga2Config {
            population: pop,
            generations: gens,
            seed: 2009,
            eval_threads: 2,
            ..Default::default()
        };
        let result = run_nsga2(&problem, &cfg);
        let front = result.pareto_front();
        println!(
            "{pop:>6} {gens:>6} {:>8} | {:>10.3} {:>8} | {:>12}",
            result.evaluations,
            front_hv(&front),
            front.len(),
            "nsga2"
        );

        // Random search at the same evaluation budget.
        let base_cfg = BaselineConfig {
            population: pop,
            generations: gens,
            seed: 2009,
        };
        let baseline = run_random_search(&problem, &base_cfg);
        let bfront = baseline.pareto_front();
        println!(
            "{pop:>6} {gens:>6} {:>8} | {:>10.3} {:>8} | {:>12}",
            baseline.evaluations,
            front_hv(&bfront),
            bfront.len(),
            "random"
        );
    }
    println!("# expectation: hypervolume grows with budget, and NSGA-II");
    println!("# dominates random search at equal evaluation count.");
}
