//! FIG8 — regenerates the paper's Figure 8: the PLL locking-time
//! transient (control voltage and output frequency vs time) for the
//! selected design. Reads the design cached by `table2_system`, or
//! falls back to a representative design from the characterised front.
//!
//! ```text
//! cargo run --release -p bench --bin fig8_locktime [-- --full]
//! ```

use std::sync::Arc;

use behavioral::spec::PllSpec;
use behavioral::timesim::{simulate_lock, LockSimConfig};
use bench::{artifact_dir, load_or_build_front, Budget};
use hierflow::model::PerfVariationModel;
use hierflow::system_opt::{PllArchitecture, PllSystemProblem};

fn main() {
    let budget = Budget::from_args();
    let front = load_or_build_front(budget);
    let model = Arc::new(PerfVariationModel::from_front(&front).expect("model builds"));
    let arch = PllArchitecture::default();
    let problem = PllSystemProblem::new(
        Arc::clone(&model),
        arch,
        PllSpec::default(),
        LockSimConfig::default(),
    );

    // Preferred: the design selected by table2_system.
    let selected_path = artifact_dir().join(format!("selected_{}.json", budget.label()));
    let x: Vec<f64> = std::fs::read_to_string(&selected_path)
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
        .and_then(|v| serde_json::from_value(v["x"].clone()).ok())
        .unwrap_or_else(|| {
            eprintln!("no cached selected design; using a mid-front point");
            let dom = model.design_domain();
            vec![
                0.5 * (dom[0].0 + dom[0].1),
                0.5 * (dom[1].0 + dom[1].1),
                30e-12,
                3e-12,
                4e3,
            ]
        });

    let q = model.query(x[0], x[1]).expect("design inside model domain");
    let params = behavioral::params::PllParams {
        fref: arch.fref,
        divider: arch.divider,
        icp: arch.icp,
        c1: x[2],
        c2: x[3],
        r1: x[4],
        kvco: q.kvco,
        f0: 0.5 * (q.fmin + q.fmax),
        vctrl_ref: 0.5 * (arch.vctrl_lo + arch.vctrl_hi),
        fmin: q.fmin,
        fmax: q.fmax,
        ivco: q.ivco,
        jvco: q.jvco,
    };
    params.validate().expect("valid pll parameters");
    let cfg = LockSimConfig {
        max_ref_cycles: 400,
        ..Default::default()
    };
    let result = simulate_lock(&params, &cfg).expect("simulates");

    println!("# FIG8: pll locking transient ({} budget)", budget.label());
    println!(
        "# design: kvco={:.0} MHz/V ivco={:.2} mA c1={:.1} pF c2={:.2} pF r1={:.1} k",
        x[0] / 1e6,
        x[1] * 1e3,
        x[2] * 1e12,
        x[3] * 1e12,
        x[4] / 1e3
    );
    match result.lock_time {
        Some(t) => println!(
            "# lock time: {:.3} us (paper: ~0.9 us, spec < 1 us)",
            t * 1e6
        ),
        None => println!("# loop did not lock within the window"),
    }
    println!("# time_us  vctrl_V  freq_GHz");
    let stride = (result.times.len() / 400).max(1);
    for k in (0..result.times.len()).step_by(stride) {
        println!(
            "{:>9.4} {:>8.4} {:>9.4}",
            result.times[k] * 1e6,
            result.vctrl[k],
            result.freq[k] / 1e9
        );
    }

    let check = problem.detail(&x);
    if let Ok(sol) = check {
        println!(
            "# corner lock times: nominal {:.3} us, worst {:.3} us",
            sol.lock_time * 1e6,
            sol.lock_time_worst * 1e6
        );
    }
}
