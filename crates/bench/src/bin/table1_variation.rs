//! TAB1 — regenerates the paper's Table 1: performance and variation
//! values of the Pareto-optimal VCO designs (Kvco/∆Kvco, Jvco/∆Jvco,
//! Ivco/∆Ivco from the per-point Monte-Carlo).
//!
//! ```text
//! cargo run --release -p bench --bin table1_variation [-- --full]
//! ```

use bench::{load_or_build_front, Budget};
use hierflow::report::format_table1;

fn main() {
    let budget = Budget::from_args();
    let front = load_or_build_front(budget);

    println!(
        "# TAB1: performance and variation values ({} budget, {} MC samples/point)\n",
        budget.label(),
        budget.char_mc().samples
    );
    println!("{}", format_table1(&front));

    // Shape summary — the paper's ordering of the spread magnitudes:
    // ∆Jvco (~22-26 %) >> ∆Ivco (~2.6-2.9 %) > ∆Kvco (~0.3-0.5 %).
    let mean = |f: &dyn Fn(&hierflow::charmodel::CharPoint) -> f64| -> f64 {
        front.points.iter().map(f).sum::<f64>() / front.points.len() as f64
    };
    let dk = mean(&|p| p.delta.kvco);
    let di = mean(&|p| p.delta.ivco);
    let dj = mean(&|p| p.delta.jvco);
    println!("# mean spreads: dKvco = {dk:.2}%  dIvco = {di:.2}%  dJvco = {dj:.2}%");
    println!(
        "# paper ordering check (dKvco smallest): {}",
        if dk <= di && dk <= dj {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    println!("# note: with the default analytic jitter model dJvco tracks dIvco;");
    println!("# the paper's ~22% dJvco (noise-transient estimator variance) is");
    println!("# reproduced by JitterMode::NoiseTransient — see EXPERIMENTS.md.");
}
