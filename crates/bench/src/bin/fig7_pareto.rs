//! FIG7 — regenerates the paper's Figure 7: the 3-D Pareto-optimal
//! front of the VCO over (jitter, current, gain).
//!
//! ```text
//! cargo run --release -p bench --bin fig7_pareto [-- --full]
//! ```
//!
//! Prints the (jitter, current, gain) series; pipe into any plotter for
//! the 3-D view. The paper's axes: jitter 0.1–0.35 ps, current
//! 2.5–15 mA, gain up to ~3 GHz/V.

use bench::{load_or_build_front, Budget};

fn main() {
    let budget = Budget::from_args();
    let front = load_or_build_front(budget);

    println!(
        "# FIG7: vco pareto front ({} budget), {} points",
        budget.label(),
        front.points.len()
    );
    println!("# jitter_ps  current_mA  gain_MHzV  fmin_GHz  fmax_GHz");
    let mut points: Vec<_> = front.points.iter().collect();
    points.sort_by(|a, b| {
        a.perf
            .jvco
            .partial_cmp(&b.perf.jvco)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for p in &points {
        println!(
            "{:>9.4} {:>11.3} {:>10.0} {:>9.3} {:>9.3}",
            p.perf.jvco * 1e12,
            p.perf.ivco * 1e3,
            p.perf.kvco / 1e6,
            p.perf.fmin / 1e9,
            p.perf.fmax / 1e9,
        );
    }

    // Shape summary: the paper's figure shows jitter improving with
    // current (spending power buys phase noise) across the front.
    let j: Vec<f64> = points.iter().map(|p| p.perf.jvco).collect();
    let i: Vec<f64> = points.iter().map(|p| p.perf.ivco).collect();
    if let Some(corr) = numkit::stats::pearson(&j, &i) {
        println!("# jitter-vs-current correlation: {corr:.3} (paper shape: negative)");
    }
    let g: Vec<f64> = points.iter().map(|p| p.perf.kvco).collect();
    if let Some(corr) = numkit::stats::pearson(&g, &i) {
        println!("# gain-vs-current correlation:   {corr:.3}");
    }
}
