//! YIELD — regenerates the paper's §4.5 verification: select the design
//! solution (with verification-in-the-loop, Fig 3), then run the
//! Monte-Carlo on the final transistor-level sizing (paper: 500 samples,
//! 100 % yield).
//!
//! ```text
//! cargo run --release -p bench --bin yield_verify [-- --full]
//! ```

use std::sync::Arc;

use behavioral::spec::PllSpec;
use behavioral::timesim::LockSimConfig;
use bench::{load_or_build_front, Budget};
use hierflow::model::PerfVariationModel;
use hierflow::propagate::select_verified_design;
use hierflow::system_opt::{PllArchitecture, PllSystemProblem};
use hierflow::verify::verify_design;
use hierflow::VcoTestbench;
use moea::nsga2::{run_nsga2_seeded, Nsga2Config};
use variation::mc::MonteCarlo;
use variation::process::ProcessSpec;

fn main() {
    let budget = Budget::from_args();
    let front = load_or_build_front(budget);
    let model = Arc::new(PerfVariationModel::from_front(&front).expect("model builds"));
    let arch = PllArchitecture::default();
    let spec = PllSpec::default();
    let sim_cfg = LockSimConfig::default();
    let testbench = VcoTestbench::default();

    // System-level optimisation (model-based, fast).
    let problem = PllSystemProblem::new(Arc::clone(&model), arch, spec, sim_cfg);
    let ga = Nsga2Config {
        population: 48,
        generations: 24,
        seed: 7,
        eval_threads: 2,
        axial_seeds: true,
        ..Default::default()
    };
    eprintln!(
        "system-level optimisation ({}x{})...",
        ga.population, ga.generations
    );
    let result = run_nsga2_seeded(&problem, &ga, &problem.warm_start_seeds());
    let pareto = result.pareto_front();

    // Spec propagation with verification-in-the-loop.
    eprintln!("selecting a design (verification-in-the-loop)...");
    let picked = match select_verified_design(
        &problem, &pareto, &model, &testbench, &arch, &spec, &sim_cfg, 12,
    ) {
        Ok(p) => p,
        Err(e) => {
            println!("# YIELD: no verified design at this budget: {e}");
            std::process::exit(1);
        }
    };

    let s = &picked.sizing;
    println!(
        "# YIELD: bottom-up verification ({} budget)",
        budget.label()
    );
    println!(
        "# selected (model): kvco={:.0} MHz/V ivco={:.2} mA — {} candidate(s) rejected in-loop",
        picked.solution.kvco / 1e6,
        picked.solution.ivco * 1e3,
        picked.rejected
    );
    println!(
        "# actual transistor-level: kvco={:.0} MHz/V ivco={:.2} mA jvco={:.3} ps fmin={:.3} GHz fmax={:.3} GHz",
        picked.actual.kvco / 1e6,
        picked.actual.ivco * 1e3,
        picked.actual.jvco * 1e12,
        picked.actual.fmin / 1e9,
        picked.actual.fmax / 1e9
    );
    println!(
        "# propagated sizing: wn={:.1}u wp={:.1}u wsn={:.1}u wsp={:.1}u l_inv={:.0}n l_starve={:.0}n w_bias={:.1}u",
        s.wn * 1e6,
        s.wp * 1e6,
        s.wsn * 1e6,
        s.wsp * 1e6,
        s.l_inv * 1e9,
        s.l_starve * 1e9,
        s.w_bias * 1e6
    );

    let engine = MonteCarlo::new(ProcessSpec::default());
    let mc = budget.verify_mc();
    eprintln!(
        "running {}-sample transistor-level monte carlo...",
        mc.samples
    );
    let report = verify_design(
        &picked.sizing,
        (picked.solution.c1, picked.solution.c2, picked.solution.r1),
        &testbench,
        &arch,
        &spec,
        &engine,
        &mc,
        &sim_cfg,
    )
    .expect("verification runs");

    println!(
        "# verified yield: {:.1}% ({}/{}, 95% CI [{:.1}%, {:.1}%])",
        100.0 * report.yield_value,
        report.passed,
        report.total,
        100.0 * report.yield_ci.0,
        100.0 * report.yield_ci.1
    );
    println!(
        "# evaluation failures (stopped oscillating): {}",
        report.evaluation_failures
    );
    println!("# paper: 500-sample MC on the final design confirmed 100% yield");
}
