//! ABL-VAR — the paper's core improvement over its predecessor (its ref. 10):
//! system-level optimisation **with** the variation model vs **without**
//! (performance-only hierarchical flow). The variation-blind flow picks
//! designs whose corners violate the spec; the variation-aware flow's
//! selections survive verification.
//!
//! ```text
//! cargo run --release -p bench --bin abl_variation_model [-- --full]
//! ```

use std::sync::Arc;

use behavioral::spec::PllSpec;
use behavioral::timesim::LockSimConfig;
use bench::{load_or_build_front, Budget};
use hierflow::charmodel::CharacterizedFront;
use hierflow::model::PerfVariationModel;
use hierflow::system_opt::{PllArchitecture, PllSystemProblem};
use moea::nsga2::{run_nsga2_seeded, Nsga2Config};

fn main() {
    let budget = Budget::from_args();
    let front = load_or_build_front(budget);

    // Variation-aware model (the paper's proposal).
    let with_var = Arc::new(PerfVariationModel::from_front(&front).expect("model"));

    // Variation-blind model: identical performance surface, zero deltas
    // (what ref [10]'s performance-only flow sees).
    let mut blind_front = CharacterizedFront {
        points: front.points.clone(),
    };
    for p in &mut blind_front.points {
        p.delta.kvco = 0.0;
        p.delta.ivco = 0.0;
        p.delta.jvco = 0.0;
        p.delta.fmin = 0.0;
        p.delta.fmax = 0.0;
    }
    let without_var = Arc::new(PerfVariationModel::from_front(&blind_front).expect("model"));

    let ga = Nsga2Config {
        population: 24,
        generations: 10,
        seed: 7,
        eval_threads: 2,
        ..Default::default()
    };
    let arch = PllArchitecture::default();
    let spec = PllSpec::default();

    println!("# ABL-VAR: system optimisation with vs without the variation model\n");
    let mut corner_stats = Vec::new();
    for (label, model) in [
        ("with-variation", with_var.clone()),
        ("without-variation", without_var),
    ] {
        let problem =
            PllSystemProblem::new(Arc::clone(&model), arch, spec, LockSimConfig::default());
        let result = run_nsga2_seeded(&problem, &ga, &problem.warm_start_seeds());
        let pareto = result.pareto_front();

        // Judge each front under the TRUE (variation-aware) corners.
        let judge =
            PllSystemProblem::new(Arc::clone(&with_var), arch, spec, LockSimConfig::default());
        let mut pass_self = 0usize;
        let mut pass_true = 0usize;
        for ind in &pareto {
            if let Ok(sol) = problem.detail(&ind.x) {
                if sol.meets_spec {
                    pass_self += 1;
                }
            }
            if let Ok(sol) = judge.detail(&ind.x) {
                if sol.meets_spec {
                    pass_true += 1;
                }
            }
        }
        println!(
            "{label:<18}: front {:>3}, claims spec-ok {:>3}, survives true corners {:>3}",
            pareto.len(),
            pass_self,
            pass_true
        );
        corner_stats.push((label, pareto.len(), pass_self, pass_true));
    }

    println!("\n# expectation (the paper's point): the variation-blind flow");
    println!("# over-claims — designs it believes are compliant fail once the");
    println!("# true corners are applied; the variation-aware flow's claims");
    println!("# match the corner-checked outcome.");
    if let [(_, _, claim_a, true_a), (_, _, claim_b, true_b)] = corner_stats[..] {
        let over_a = claim_a.saturating_sub(true_a);
        let over_b = claim_b.saturating_sub(true_b);
        println!("# over-claims: with-variation {over_a}, without-variation {over_b}");
    }
}
