//! ABL-JITTER — the two jitter-extraction routes compared on one
//! design: the fast analytic estimator (used inside optimisation loops)
//! vs the thermal-noise-injected transient (the physically direct
//! measurement, as SpectreRF's noise transient in the paper).
//!
//! The noise-transient ∆Jvco includes the estimator's own sampling
//! variance (σ of a σ-estimate over ~N periods ≈ 1/√(2(N−1)) ≈ 13 % for
//! N = 30), which is how the paper's ~22 % ∆Jvco arises from a 100-run
//! Monte Carlo of noise-transient measurements.
//!
//! ```text
//! cargo run --release -p bench --bin abl_jitter_mode
//! ```

use hierflow::vco_eval::JitterMode;
use hierflow::VcoTestbench;
use netlist::topology::VcoSizing;
use variation::mc::{McConfig, MonteCarlo};
use variation::process::ProcessSpec;

fn main() {
    let sizing = VcoSizing {
        wn: 10e-6,
        wp: 12e-6,
        wsn: 15e-6,
        wsp: 30e-6,
        l_inv: 0.12e-6,
        l_starve: 0.3e-6,
        w_bias: 15e-6,
    };
    let engine = MonteCarlo::new(ProcessSpec::default());
    let mc = McConfig {
        samples: 12,
        seed: 42,
        threads: 2,
    };

    println!("# ABL-JITTER: analytic vs noise-transient jitter extraction");
    println!(
        "# design: lean band-covering sizing, {} MC samples\n",
        mc.samples
    );

    for (label, mode) in [
        ("analytic", JitterMode::Analytic),
        (
            "noise-transient",
            JitterMode::NoiseTransient {
                periods: 30,
                seed: 7,
            },
        ),
    ] {
        let tb = VcoTestbench {
            jitter: mode,
            ..Default::default()
        };
        let ring = tb.build(&sizing);
        let run = engine.run(&ring.circuit, &mc, |i, perturbed| {
            // Decorrelate the noise seed per MC sample so the transient
            // measurement carries its natural estimator variance.
            let tb_sample = match mode {
                JitterMode::NoiseTransient { periods, .. } => VcoTestbench {
                    jitter: JitterMode::NoiseTransient {
                        periods,
                        seed: 7 + i as u64,
                    },
                    ..tb.clone()
                },
                JitterMode::Analytic => tb.clone(),
            };
            tb_sample
                .evaluate_circuit(perturbed, &ring)
                .ok()
                .map(|p| p.to_array().to_vec())
        });
        let jv = run.summary(2);
        match jv {
            Some(s) => println!(
                "{label:<16}: jvco mean {:.3} ps, sigma {:.3} ps, dJvco = {:.1}% ({} samples)",
                s.mean * 1e12,
                s.std_dev * 1e12,
                100.0 * s.std_dev / s.mean,
                s.count
            ),
            None => println!("{label:<16}: no samples evaluated"),
        }
    }
    println!("\n# paper Table 1: dJvco ~= 22-26% — the noise-transient route;");
    println!("# the analytic route under-disperses by design (see DESIGN.md).");
}
