//! Shared plumbing for the experiment harnesses: budget selection
//! (`--full` = paper scale), artifact caching under `target/experiments/`
//! so the expensive circuit-level stages are computed once and reused by
//! every table/figure binary.

use std::path::PathBuf;

use hierflow::charmodel::{characterize_front_with, CharacterizedFront};
use hierflow::vco_problem::VcoSizingProblem;
use hierflow::{DegradePolicy, FlowEvents, VcoTestbench};
use moea::nsga2::{run_nsga2, Nsga2Config};
use variation::mc::{McConfig, MonteCarlo};
use variation::process::ProcessSpec;

/// Experiment budget, selected by the `--full` CLI flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Scaled-down budgets that finish in minutes on a laptop.
    Quick,
    /// The paper's budgets (§4.2–4.5): 100×30 GA, 100-sample MC,
    /// 500-sample verification. Hours of CPU.
    Full,
}

impl Budget {
    /// Reads the budget from the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Budget::Full
        } else {
            Budget::Quick
        }
    }

    /// Label used in artifact file names and printouts.
    pub fn label(self) -> &'static str {
        match self {
            Budget::Quick => "quick",
            Budget::Full => "full",
        }
    }

    /// Circuit-level GA budget.
    pub fn circuit_ga(self) -> Nsga2Config {
        match self {
            Budget::Quick => Nsga2Config {
                population: 40,
                generations: 12,
                seed: 2009,
                eval_threads: 2,
                axial_seeds: true,
                ..Default::default()
            },
            Budget::Full => Nsga2Config {
                population: 100,
                generations: 30,
                seed: 2009,
                eval_threads: 2,
                axial_seeds: true,
                ..Default::default()
            },
        }
    }

    /// Characterisation Monte-Carlo budget (paper: 100).
    pub fn char_mc(self) -> McConfig {
        McConfig {
            samples: match self {
                Budget::Quick => 24,
                Budget::Full => 100,
            },
            seed: 42,
            threads: 2,
        }
    }

    /// Verification Monte-Carlo budget (paper: 500).
    pub fn verify_mc(self) -> McConfig {
        McConfig {
            samples: match self {
                Budget::Quick => 60,
                Budget::Full => 500,
            },
            seed: 99,
            threads: 2,
        }
    }

    /// Cap on characterised Pareto points.
    pub fn max_char_points(self) -> usize {
        match self {
            Budget::Quick => 12,
            Budget::Full => 24,
        }
    }
}

/// Directory for cached experiment artifacts.
pub fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Loads the characterised VCO Pareto front for a budget, computing and
/// caching it on first use. Every table/figure binary shares this
/// artifact so the expensive stage-1/stage-2 work runs once.
pub fn load_or_build_front(budget: Budget) -> CharacterizedFront {
    let path = artifact_dir().join(format!("front_{}.json", budget.label()));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(front) = serde_json::from_str::<CharacterizedFront>(&text) {
            eprintln!("loaded cached front from {}", path.display());
            return front;
        }
    }
    eprintln!(
        "building characterised front ({} budget) — this runs transistor-level NSGA-II + MC...",
        budget.label()
    );
    let testbench = VcoTestbench::default();
    // Specification propagation: the PLL band becomes circuit-level
    // coverage constraints (paper Fig 3).
    let problem = VcoSizingProblem::with_band(testbench.clone(), 500e6, 1.2e9);
    let result = run_nsga2(&problem, &budget.circuit_ga());
    let mut front = result.pareto_front();
    eprintln!(
        "  stage 1 done: {} evaluations, {} pareto designs",
        result.evaluations,
        front.len()
    );
    thin(&mut front, budget.max_char_points());
    let engine = MonteCarlo::new(ProcessSpec::default());
    // Long experiment runs absorb solver hiccups (retry relaxed, then
    // drop the point) rather than discarding the stage-1 investment.
    let mut events = FlowEvents::new();
    let characterized = characterize_front_with(
        &front,
        &testbench,
        &engine,
        &budget.char_mc(),
        DegradePolicy::RetryRelaxed {
            max_retries: 2,
            min_surviving_points: 2,
        },
        None,
        &mut events,
    )
    .expect("characterisation succeeds");
    for event in events.iter() {
        eprintln!("  [event] {event}");
    }
    let json = serde_json::to_string(&characterized).expect("serialise front");
    std::fs::write(&path, json).expect("cache front");
    eprintln!("  stage 2 done: cached to {}", path.display());
    characterized
}

fn thin(front: &mut Vec<moea::problem::Individual>, max_points: usize) {
    if front.len() <= max_points || max_points < 2 {
        return;
    }
    // Every feasible point covers the band; order along current so the
    // power/jitter trade-off survives thinning.
    front.sort_by(|a, b| {
        a.objectives[1]
            .partial_cmp(&b.objectives[1])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let n = front.len();
    let picked: Vec<_> = (0..max_points)
        .map(|k| front[k * (n - 1) / (max_points - 1)].clone())
        .collect();
    *front = picked;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_labels_and_scaling() {
        assert_eq!(Budget::Quick.label(), "quick");
        assert_eq!(Budget::Full.label(), "full");
        assert_eq!(Budget::Full.circuit_ga().population, 100);
        assert_eq!(Budget::Full.circuit_ga().generations, 30);
        assert_eq!(Budget::Full.char_mc().samples, 100);
        assert_eq!(Budget::Full.verify_mc().samples, 500);
        assert!(Budget::Quick.char_mc().samples < 100);
    }

    #[test]
    fn artifact_dir_is_created() {
        let d = artifact_dir();
        assert!(d.exists());
    }
}
