//! Wall-clock overhead of the telemetry layer: the same
//! transistor-level evaluation batch with telemetry disabled (the
//! default — every instrumentation site is a single relaxed atomic
//! load) and enabled (recorder installed, spans and metrics live).
//!
//! Custom harness (no criterion): the numbers are written to
//! `BENCH_telemetry.json` at the workspace root so the repository
//! carries a reference record of the overhead. The enabled target is
//! <3 % over disabled on this workload. `--test` runs a seconds-scale
//! smoke version and skips the JSON write — CI uses it to keep the
//! bench compiling and running with telemetry actually exercised.

use std::hint::black_box;
use std::time::Instant;

use hierflow::VcoTestbench;
use netlist::topology::VcoSizing;

/// A small family of nominal-adjacent sizings: every evaluation runs
/// the real DC + transient testbench, which is exactly the code the
/// solve spans and Newton histograms instrument.
fn sizings(n: usize) -> Vec<VcoSizing> {
    (0..n)
        .map(|i| {
            let mut s = VcoSizing::nominal();
            let f = 1.0 + 0.02 * (i % 7) as f64;
            s.wsn *= f;
            s.wsp *= f;
            s
        })
        .collect()
}

/// Evaluates every sizing once and returns the elapsed microseconds.
fn run_workload(tb: &VcoTestbench, batch: &[VcoSizing]) -> f64 {
    let start = Instant::now();
    for s in batch {
        black_box(
            tb.evaluate_sizing(s)
                .expect("nominal-family sizing evaluates"),
        );
    }
    start.elapsed().as_secs_f64() * 1e6
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n = if test_mode { 4 } else { 32 };
    let rounds = if test_mode { 1 } else { 3 };
    let tb = VcoTestbench::default();
    let batch = sizings(n);

    // One throwaway pass warms allocator and caches before timing.
    run_workload(&tb, &batch[..1.min(batch.len())]);

    // Alternate disabled/enabled rounds and keep the fastest of each,
    // so ambient machine noise hits both arms evenly.
    let mut disabled_us = f64::INFINITY;
    let mut enabled_us = f64::INFINITY;
    let mut recorded_spans = 0u64;
    for _ in 0..rounds {
        assert!(
            !telemetry::enabled(),
            "baseline round must run with telemetry off"
        );
        disabled_us = disabled_us.min(run_workload(&tb, &batch));

        let recorder = telemetry::Recorder::new();
        let this_round = {
            let _install = recorder.install();
            let _run = telemetry::span("run");
            run_workload(&tb, &batch)
        };
        enabled_us = enabled_us.min(this_round);
        recorded_spans = recorded_spans.max(recorder.records().len() as u64);
    }
    assert!(
        recorded_spans > 0,
        "the enabled arm must actually record spans"
    );

    let overhead_percent = 100.0 * (enabled_us - disabled_us) / disabled_us;
    println!(
        "{:<44} {disabled_us:>12.1} us",
        format!("evaluate_{n}/disabled")
    );
    println!(
        "{:<44} {enabled_us:>12.1} us",
        format!("evaluate_{n}/enabled")
    );
    println!(
        "{:<44} {overhead_percent:>11.2} %  (target < 3 %)",
        "telemetry_overhead"
    );

    if !test_mode {
        let json = format!(
            "{{\n\"bench\": \"telemetry\",\n\"unit\": \"microseconds\",\n\"results\": [\n  \
             {{ \"name\": \"evaluate_{n}/disabled\", \"micros\": {disabled_us:.1} }},\n  \
             {{ \"name\": \"evaluate_{n}/enabled\", \"micros\": {enabled_us:.1} }},\n  \
             {{ \"name\": \"overhead_percent\", \"micros\": {overhead_percent:.2} }}\n]\n}}\n"
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
        std::fs::write(path, json).expect("write BENCH_telemetry.json");
        println!("wrote {path}");
    }
}
