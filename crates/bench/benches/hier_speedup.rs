//! ABL-SPEED — the paper's motivation, measured: the cost of one
//! system-level candidate evaluation through the behavioural model vs
//! the same evaluation with the transistor-level VCO in the loop.
//! Hierarchical optimisation exists because the first is orders of
//! magnitude cheaper than the second.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use behavioral::spec::PllSpec;
use behavioral::timesim::LockSimConfig;
use hierflow::charmodel::{CharPoint, CharacterizedFront, VcoDeltas};
use hierflow::model::PerfVariationModel;
use hierflow::system_opt::{PllArchitecture, PllSystemProblem};
use hierflow::vco_eval::{VcoPerf, VcoTestbench};
use moea::problem::Problem;
use netlist::topology::VcoSizing;

/// A synthetic characterised front standing in for stage-2 output (the
/// model's content does not affect lookup cost).
fn model() -> Arc<PerfVariationModel> {
    let n = 16;
    let points: Vec<CharPoint> = (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            CharPoint {
                sizing: VcoSizing::nominal(),
                perf: VcoPerf {
                    kvco: 0.9e9 + 1.2e9 * t,
                    ivco: 2e-3 + 5e-3 * t,
                    jvco: 0.3e-12 - 0.15e-12 * t,
                    fmin: 0.35e9 + 0.1e9 * t,
                    fmax: 1.4e9 + 0.9e9 * t,
                },
                delta: VcoDeltas {
                    kvco: 0.4,
                    ivco: 2.7,
                    jvco: 22.0,
                    fmin: 1.0,
                    fmax: 1.0,
                },
                mc_accepted: 100,
                mc_failed: 0,
            }
        })
        .collect();
    Arc::new(PerfVariationModel::from_front(&CharacterizedFront { points }).unwrap())
}

fn bench_model_based(c: &mut Criterion) {
    let problem = PllSystemProblem::new(
        model(),
        PllArchitecture::default(),
        PllSpec::default(),
        LockSimConfig::default(),
    );
    let x = [1.5e9, 4.5e-3, 30e-12, 3e-12, 4e3];
    let mut group = c.benchmark_group("system_candidate_eval");
    group.sample_size(20);
    group.bench_function("model_based_hierarchical", |b| {
        b.iter(|| problem.evaluate(black_box(&x)))
    });
    group.finish();
}

fn bench_transistor_in_loop(c: &mut Criterion) {
    // The flat alternative: evaluating the same candidate requires a
    // full transistor-level VCO characterisation (two oscillator
    // measurements) before the behavioural loop can even run.
    let tb = VcoTestbench::default();
    let sizing = VcoSizing::nominal();
    let mut group = c.benchmark_group("system_candidate_eval");
    group.sample_size(10);
    group.bench_function("transistor_in_the_loop", |b| {
        b.iter(|| tb.evaluate_sizing(black_box(&sizing)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_model_based, bench_transistor_in_loop);
criterion_main!(benches);
