//! Criterion benchmarks of the table-model lookups — the operation the
//! hierarchical flow performs thousands of times per system-level
//! optimisation (its cheapness versus transistor simulation is the whole
//! point of the paper's approach).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tablemodel::grid::GridTable;
use tablemodel::interp::Table1d;
use tablemodel::scattered::{ScatterMethod, ScatteredTable};
use tablemodel::spline::CubicSpline;

fn bench_spline(c: &mut Criterion) {
    let xs: Vec<f64> = (0..64).map(|i| i as f64 * 0.1).collect();
    let ys: Vec<f64> = xs.iter().map(|x| (x * 0.7).sin()).collect();
    let spline = CubicSpline::natural(&xs, &ys).unwrap();
    c.bench_function("spline_eval_64_knots", |b| {
        b.iter(|| spline.eval(black_box(3.21)))
    });
    c.bench_function("spline_build_64_knots", |b| {
        b.iter(|| CubicSpline::natural(black_box(&xs), black_box(&ys)).unwrap())
    });
}

fn bench_table1d(c: &mut Criterion) {
    let xs: Vec<f64> = (0..32).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
    let cubic = Table1d::new(xs.clone(), ys.clone(), "3C".parse().unwrap()).unwrap();
    let linear = Table1d::new(xs, ys, "1C".parse().unwrap()).unwrap();
    c.bench_function("table1d_cubic_eval", |b| {
        b.iter(|| cubic.eval(black_box(17.3)).unwrap())
    });
    c.bench_function("table1d_linear_eval", |b| {
        b.iter(|| linear.eval(black_box(17.3)).unwrap())
    });
}

fn bench_grid(c: &mut Criterion) {
    let axis: Vec<f64> = (0..16).map(|i| i as f64).collect();
    let mut values = Vec::new();
    for x in &axis {
        for y in &axis {
            values.push(x * 2.0 + y);
        }
    }
    let grid = GridTable::new(
        vec![axis.clone(), axis],
        values,
        vec!["1C".parse().unwrap(), "1C".parse().unwrap()],
    )
    .unwrap();
    c.bench_function("grid2d_16x16_eval", |b| {
        b.iter(|| grid.eval(black_box(&[7.3, 9.1])).unwrap())
    });
}

fn bench_scattered(c: &mut Criterion) {
    let points: Vec<Vec<f64>> = (0..24)
        .map(|i| {
            let t = i as f64 / 23.0;
            vec![t, (t * 5.0).sin() * 0.5 + 0.5]
        })
        .collect();
    let values: Vec<f64> = points.iter().map(|p| p[0] * 3.0 - p[1]).collect();
    let idw =
        ScatteredTable::new(points.clone(), values.clone(), ScatterMethod::default()).unwrap();
    let rbf = ScatteredTable::new(points, values, ScatterMethod::Rbf { shape: 1.5 }).unwrap();
    c.bench_function("scattered_idw_24pts_eval", |b| {
        b.iter(|| idw.eval(black_box(&[0.5, 0.5])).unwrap())
    });
    c.bench_function("scattered_rbf_24pts_eval", |b| {
        b.iter(|| rbf.eval(black_box(&[0.5, 0.5])).unwrap())
    });
}

criterion_group!(
    benches,
    bench_spline,
    bench_table1d,
    bench_grid,
    bench_scattered
);
criterion_main!(benches);
