//! Wall-clock benchmark of the evaluation memo cache (`evalcache`):
//! cold vs warm batch evaluation, and a duplicate-ratio sweep showing
//! how pre-batch deduplication pays off as genome duplication rises
//! (late NSGA-II generations routinely re-submit identical survivors).
//!
//! Custom harness (no criterion): the numbers are written to
//! `BENCH_evalcache.json` at the workspace root so the repository
//! carries a reference record. `--test` runs a seconds-scale smoke
//! version and skips the JSON write — CI uses it to keep the bench
//! compiling and running.

use std::hint::black_box;
use std::time::Instant;

use evalcache::{EvalCache, KeyQuantiser};

/// Deterministic stand-in for a transistor-level evaluation: a few
/// hundred transcendental operations per call, so cache hits are
/// measurably cheaper than evaluation without the bench taking minutes.
fn expensive_eval(x: &[f64]) -> Vec<f64> {
    let mut acc = [0.0f64; 4];
    for k in 1..=400u32 {
        for (i, &v) in x.iter().enumerate() {
            acc[i % 4] += (v * f64::from(k) * 1e-3).sin();
        }
    }
    acc.to_vec()
}

/// `n` deterministic 7-coordinate designs, of which `dup_percent` are
/// exact bit-pattern repeats of earlier ones (drawn round-robin).
fn designs(n: usize, dup_percent: usize) -> Vec<Vec<f64>> {
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        // xorshift64*: deterministic, no external RNG dependency.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut out: Vec<Vec<f64>> = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && i % 100 < dup_percent {
            out.push(out[i / 2].clone());
        } else {
            out.push((0..7).map(|_| next()).collect());
        }
    }
    out
}

/// Evaluates every design once, through the cache when given, and
/// returns the elapsed time in microseconds.
fn run_batch(cache: Option<&EvalCache<Vec<f64>>>, batch: &[Vec<f64>]) -> f64 {
    let start = Instant::now();
    for d in batch {
        match cache {
            Some(c) => {
                let key = c.key(d);
                let v = match c.get(&key) {
                    Some(v) => v,
                    None => {
                        let v = expensive_eval(d);
                        c.put(key, &v);
                        v
                    }
                };
                black_box(v);
            }
            None => {
                black_box(expensive_eval(d));
            }
        }
    }
    start.elapsed().as_secs_f64() * 1e6
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n = if test_mode { 64 } else { 2048 };
    let mut records: Vec<String> = Vec::new();
    let mut record = |name: &str, micros: f64| {
        println!("{name:<44} {micros:>12.1} us");
        records.push(format!(
            "  {{ \"name\": \"{name}\", \"micros\": {micros:.1} }}"
        ));
    };

    // Cold vs warm: the same unique batch, twice, through one cache.
    let unique = designs(n, 0);
    let cache = EvalCache::<Vec<f64>>::new(2 * n, KeyQuantiser::exact(), 0xbe_c4);
    let uncached = run_batch(None, &unique);
    let cold = run_batch(Some(&cache), &unique);
    let warm = run_batch(Some(&cache), &unique);
    record(&format!("evaluate_{n}/uncached"), uncached);
    record(&format!("evaluate_{n}/cold_cache"), cold);
    record(&format!("evaluate_{n}/warm_cache"), warm);
    assert_eq!(cache.stats().misses as usize, n, "cold pass evaluates all");
    assert_eq!(cache.stats().hits as usize, n, "warm pass replays all");
    if !test_mode {
        assert!(
            warm < cold,
            "warm replay ({warm:.1} us) must beat cold evaluation ({cold:.1} us)"
        );
    }

    // Duplicate-ratio sweep: one cold pass per ratio; the cache turns
    // every repeated genome into a probe instead of an evaluation.
    for dup in [0usize, 50, 90] {
        let batch = designs(n, dup);
        let plain = run_batch(None, &batch);
        let c = EvalCache::<Vec<f64>>::new(2 * n, KeyQuantiser::exact(), dup as u64);
        let cached = run_batch(Some(&c), &batch);
        record(&format!("dup_sweep_{n}/{dup}pct/uncached"), plain);
        record(&format!("dup_sweep_{n}/{dup}pct/cached"), cached);
    }

    if !test_mode {
        let json = format!(
            "{{\n\"bench\": \"evalcache\",\n\"unit\": \"microseconds\",\n\"results\": [\n{}\n]\n}}\n",
            records.join(",\n")
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_evalcache.json");
        std::fs::write(path, json).expect("write BENCH_evalcache.json");
        println!("wrote {path}");
    }
}
