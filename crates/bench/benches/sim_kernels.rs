//! Criterion benchmarks of the simulator kernels: DC operating point,
//! transient integration and oscillator measurement — the costs that
//! dominate the paper's "computationally intensive" transistor-level
//! stage.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use netlist::topology::{build_rc_lowpass, build_ring_vco, VcoSizing};
use netlist::SourceWaveform;
use spicesim::dc::dc_operating_point;
use spicesim::measure::{measure_oscillator, OscConfig};
use spicesim::transient::{run_transient, TransientSpec};
use spicesim::SimOptions;

fn bench_dc(c: &mut Criterion) {
    let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.9);
    let opts = SimOptions::default();
    c.bench_function("dc_op_ring_vco_22fets", |b| {
        b.iter(|| dc_operating_point(black_box(&vco.circuit), &opts).unwrap())
    });
}

fn bench_transient(c: &mut Criterion) {
    let rc = build_rc_lowpass(
        1e3,
        1e-9,
        SourceWaveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 1e-12,
            fall: 1e-12,
            width: 1.0,
            period: 0.0,
        },
    );
    let opts = SimOptions::default();
    c.bench_function("transient_rc_1000_steps", |b| {
        let spec = TransientSpec::new(1e-6, 1e-9).with_ic().recording_every(10);
        b.iter(|| run_transient(black_box(&rc), &spec, &opts).unwrap())
    });

    let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.9);
    c.bench_function("transient_ring_vco_5ns", |b| {
        let spec = TransientSpec::new(5e-9, 5e-12).with_ic().recording_every(8);
        b.iter(|| run_transient(black_box(&vco.circuit), &spec, &opts).unwrap())
    });
}

fn bench_oscillator_measurement(c: &mut Criterion) {
    let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.9);
    let opts = SimOptions::default();
    let mut group = c.benchmark_group("oscillator");
    group.sample_size(10);
    group.bench_function("measure_freq_and_current", |b| {
        b.iter(|| {
            measure_oscillator(
                black_box(&vco.circuit),
                vco.out,
                vco.vdd_source,
                &OscConfig::default(),
                &opts,
                None,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dc,
    bench_transient,
    bench_oscillator_measurement
);
criterion_main!(benches);
