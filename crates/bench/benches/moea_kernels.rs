//! Criterion benchmarks of the optimisation machinery: non-dominated
//! sorting, crowding and a full NSGA-II run on a cheap analytic problem.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use moea::nsga2::{run_nsga2, Nsga2Config};
use moea::problem::{Evaluation, Individual, Problem};
use moea::sorting::{crowding_distance, fast_non_dominated_sort};

struct Zdt1;

impl Problem for Zdt1 {
    fn num_vars(&self) -> usize {
        10
    }
    fn bounds(&self, _i: usize) -> (f64, f64) {
        (0.0, 1.0)
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let f1 = x[0];
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (x.len() - 1) as f64;
        Evaluation::feasible(vec![f1, g * (1.0 - (f1 / g).sqrt())])
    }
}

fn synth_population(n: usize) -> Vec<Individual> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Individual::new(
                vec![t],
                Evaluation::feasible(vec![
                    (t * 0.37).sin() + 2.0,
                    (t * 0.61).cos() + 2.0,
                    (t * 0.13).sin() * (t * 0.07).cos() + 2.0,
                ]),
            )
        })
        .collect()
}

fn bench_sorting(c: &mut Criterion) {
    let pop = synth_population(200);
    c.bench_function("fast_non_dominated_sort_200x3", |b| {
        b.iter(|| fast_non_dominated_sort(black_box(&pop)))
    });
    let fronts = fast_non_dominated_sort(&pop);
    c.bench_function("crowding_distance_front0", |b| {
        b.iter(|| crowding_distance(black_box(&pop), black_box(&fronts[0])))
    });
}

fn bench_nsga2(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsga2");
    group.sample_size(10);
    group.bench_function("zdt1_pop40_gen20", |b| {
        let cfg = Nsga2Config {
            population: 40,
            generations: 20,
            seed: 1,
            ..Default::default()
        };
        b.iter(|| run_nsga2(black_box(&Zdt1), &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_sorting, bench_nsga2);
criterion_main!(benches);
