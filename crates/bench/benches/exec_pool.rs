//! Scheduling benchmark: static contiguous chunking versus the
//! supervised pool's shared-cursor work stealing, on a deliberately
//! skewed workload.
//!
//! The skew mirrors what Monte-Carlo characterisation actually sees:
//! a handful of samples land on hard solver corners and cost an order
//! of magnitude more than the rest, and under static chunking they all
//! sit in the same worker's chunk. Work stealing lets the idle workers
//! drain the cheap tail instead of waiting.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use exec::{run_batch, ExecPolicy};

const TASKS: usize = 64;
const LIGHT_SPINS: u64 = 2_000;
const HEAVY_SPINS: u64 = 40_000;

/// Tasks in the first quarter are ~20x the cost of the rest — the
/// worst case for contiguous chunking, which hands every heavy task
/// to worker 0.
fn spins_for(task: usize) -> u64 {
    if task < TASKS / 4 {
        HEAVY_SPINS
    } else {
        LIGHT_SPINS
    }
}

/// Deterministic busy work standing in for a simulator evaluation.
fn evaluate(task: usize) -> f64 {
    let mut acc = task as f64 + 1.0;
    for k in 0..spins_for(task) {
        acc = (acc + k as f64).sqrt() + 1.0;
    }
    acc
}

/// Baseline: split the index range into contiguous per-worker chunks
/// up front, no rebalancing.
fn static_chunk(workers: usize) -> Vec<f64> {
    let mut out = vec![0.0; TASKS];
    let chunk = TASKS.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(TASKS);
                let hi = ((w + 1) * chunk).min(TASKS);
                scope.spawn(move || (lo, (lo..hi).map(evaluate).collect::<Vec<f64>>()))
            })
            .collect();
        for handle in handles {
            let (lo, vals) = handle.join().expect("chunk worker panicked");
            out[lo..lo + vals.len()].copy_from_slice(&vals);
        }
    });
    out
}

fn work_stealing(workers: usize) -> Vec<f64> {
    let batch = run_batch(TASKS, &ExecPolicy::with_threads(workers), |ctx| {
        Ok(evaluate(ctx.index))
    });
    batch
        .items
        .into_iter()
        .map(|v| v.expect("no task may fail in this benchmark"))
        .collect()
}

fn bench_scheduling(c: &mut Criterion) {
    // Same skewed batch under both schedulers; identical output is
    // asserted once so the timed bodies stay pure.
    let workers = exec::threads_from_env(4).max(2);
    assert_eq!(static_chunk(workers), work_stealing(workers));

    let mut group = c.benchmark_group("exec_pool");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            black_box((0..TASKS).map(evaluate).collect::<Vec<f64>>());
        })
    });
    group.bench_function(format!("static_chunk_{workers}t").as_str(), |b| {
        b.iter(|| black_box(static_chunk(workers)))
    });
    group.bench_function(format!("work_stealing_{workers}t").as_str(), |b| {
        b.iter(|| black_box(work_stealing(workers)))
    });
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
