//! Front-quality indicators: hypervolume (2-D exact sweep, 3-D exact
//! slicing) and inverted generational distance (IGD). Used by the
//! GA-budget ablation bench.

/// Exact hypervolume of a 2-objective front against `reference`
/// (both objectives minimised; points beyond the reference are clipped
/// out).
///
/// # Panics
///
/// Panics if any point has a dimension other than 2.
pub fn hypervolume_2d(points: &[Vec<f64>], reference: &[f64; 2]) -> f64 {
    for p in points {
        assert_eq!(p.len(), 2, "hypervolume_2d needs 2-d points");
    }
    // Keep points that dominate the reference corner.
    let mut pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p[0] < reference[0] && p[1] < reference[1])
        .map(|p| (p[0], p[1]))
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Sort by f1 ascending; sweep keeping the best (lowest) f2 so far.
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut volume = 0.0;
    let mut best_f2 = reference[1];
    let mut prev_f1 = pts[0].0;
    for &(f1, f2) in &pts {
        if f1 > prev_f1 {
            volume += (f1 - prev_f1) * (reference[1] - best_f2);
            prev_f1 = f1;
        }
        if f2 < best_f2 {
            best_f2 = f2;
        }
    }
    volume += (reference[0] - prev_f1) * (reference[1] - best_f2);
    volume
}

/// Exact hypervolume of a 3-objective front against `reference` by
/// slicing along the third objective and accumulating 2-D volumes.
///
/// # Panics
///
/// Panics if any point has a dimension other than 3.
pub fn hypervolume_3d(points: &[Vec<f64>], reference: &[f64; 3]) -> f64 {
    for p in points {
        assert_eq!(p.len(), 3, "hypervolume_3d needs 3-d points");
    }
    let pts: Vec<&Vec<f64>> = points
        .iter()
        .filter(|p| p[0] < reference[0] && p[1] < reference[1] && p[2] < reference[2])
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Distinct f3 levels, ascending.
    let mut levels: Vec<f64> = pts.iter().map(|p| p[2]).collect();
    levels.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    levels.dedup();
    levels.push(reference[2]);

    let mut volume = 0.0;
    for w in levels.windows(2) {
        let (z0, z1) = (w[0], w[1]);
        // 2-D front of all points with f3 <= z0.
        let slice: Vec<Vec<f64>> = pts
            .iter()
            .filter(|p| p[2] <= z0)
            .map(|p| vec![p[0], p[1]])
            .collect();
        let area = hypervolume_2d(&slice, &[reference[0], reference[1]]);
        volume += area * (z1 - z0);
    }
    volume
}

/// Inverted generational distance: mean Euclidean distance from each
/// reference-front point to its nearest approximation point. Lower is
/// better; 0 means the reference front is fully covered.
///
/// # Panics
///
/// Panics if either set is empty or dimensions differ.
pub fn igd(approximation: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    assert!(
        !approximation.is_empty() && !reference.is_empty(),
        "igd needs non-empty fronts"
    );
    let dim = reference[0].len();
    assert!(
        approximation
            .iter()
            .chain(reference)
            .all(|p| p.len() == dim),
        "igd dimension mismatch"
    );
    let total: f64 = reference
        .iter()
        .map(|r| {
            approximation
                .iter()
                .map(|a| {
                    r.iter()
                        .zip(a)
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total / reference.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_2d() {
        let hv = hypervolume_2d(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn staircase_2d() {
        // Two points: (1,2) and (2,1) against (3,3). Inclusion-exclusion:
        // box areas 2 + 2 minus intersection 1 → union 3.
        let hv = hypervolume_2d(&[vec![1.0, 2.0], vec![2.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 3.0).abs() < 1e-12, "got {hv}");
    }

    #[test]
    fn dominated_points_add_nothing() {
        let base = hypervolume_2d(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        let with_dominated = hypervolume_2d(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[3.0, 3.0]);
        assert!((base - with_dominated).abs() < 1e-12);
    }

    #[test]
    fn out_of_reference_points_clip_to_zero() {
        assert_eq!(hypervolume_2d(&[vec![4.0, 4.0]], &[3.0, 3.0]), 0.0);
        assert_eq!(hypervolume_2d(&[], &[3.0, 3.0]), 0.0);
    }

    #[test]
    fn better_front_has_larger_hypervolume() {
        let near: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                let t = i as f64 / 9.0;
                vec![t, 1.0 - t]
            })
            .collect();
        let far: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                let t = i as f64 / 9.0;
                vec![t + 0.5, 1.5 - t]
            })
            .collect();
        let r = [3.0, 3.0];
        assert!(hypervolume_2d(&near, &r) > hypervolume_2d(&far, &r));
    }

    #[test]
    fn igd_zero_when_fronts_coincide() {
        let f = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert_eq!(igd(&f, &f), 0.0);
    }

    #[test]
    fn igd_grows_with_distance() {
        let reference = vec![vec![0.0, 0.0]];
        let near = vec![vec![0.1, 0.0]];
        let far = vec![vec![1.0, 0.0]];
        assert!(igd(&near, &reference) < igd(&far, &reference));
        assert!((igd(&far, &reference) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn igd_uses_nearest_neighbour() {
        let reference = vec![vec![0.0, 0.0], vec![10.0, 0.0]];
        let approx = vec![vec![0.0, 0.0], vec![10.0, 1.0]];
        // First ref point covered exactly, second at distance 1 → mean 0.5.
        assert!((igd(&approx, &reference) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_point_3d() {
        let hv = hypervolume_3d(&[vec![1.0, 1.0, 1.0]], &[2.0, 2.0, 2.0]);
        assert!((hv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_point_3d_matches_inclusion_exclusion() {
        // Boxes: (1,1,1)->(3,3,3) volume 8; (2,2,0)->(3,3,3) volume 3;
        // intersection (2,2,1)->(3,3,3) volume 2 → union 9.
        let hv = hypervolume_3d(
            &[vec![1.0, 1.0, 1.0], vec![2.0, 2.0, 0.0]],
            &[3.0, 3.0, 3.0],
        );
        assert!((hv - 9.0).abs() < 1e-12, "got {hv}");
    }

    #[test]
    fn hv3d_consistent_with_2d_extrusion() {
        // Points sharing one f3 level: volume = 2-D area × depth.
        let pts2 = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let area = hypervolume_2d(&pts2, &[3.0, 3.0]);
        let pts3: Vec<Vec<f64>> = pts2.iter().map(|p| vec![p[0], p[1], 0.0]).collect();
        let vol = hypervolume_3d(&pts3, &[3.0, 3.0, 4.0]);
        assert!((vol - area * 4.0).abs() < 1e-12);
    }
}
