//! Baseline optimisers for comparison benches: a single-objective
//! weighted-sum GA and pure random search.
//!
//! The paper positions NSGA-II as the standard tool for analogue sizing;
//! the ablation benches use these baselines to show what the
//! multi-objective machinery buys (front coverage per evaluation).

use rand::RngExt;
use serde::{Deserialize, Serialize};

use numkit::dist;

use crate::problem::{Individual, Problem};
use crate::sorting::pareto_front_indices;

/// Configuration shared by the baseline optimisers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Population size (GA) or batch size (random search).
    pub population: usize,
    /// Generations (GA) or batches (random search).
    pub generations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            population: 100,
            generations: 30,
            seed: 0,
        }
    }
}

/// Result of a baseline run: every evaluated individual plus the
/// non-dominated subset, for apples-to-apples front comparisons.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// All evaluated individuals.
    pub evaluated: Vec<Individual>,
    /// Total evaluations (== `evaluated.len()`).
    pub evaluations: usize,
}

impl BaselineResult {
    /// Non-dominated feasible subset of everything evaluated.
    pub fn pareto_front(&self) -> Vec<Individual> {
        pareto_front_indices(&self.evaluated)
            .into_iter()
            .map(|i| self.evaluated[i].clone())
            .filter(|ind| ind.is_feasible())
            .collect()
    }
}

/// Pure random search: uniform samples over the box bounds.
pub fn run_random_search<P: Problem>(problem: &P, cfg: &BaselineConfig) -> BaselineResult {
    let mut rng = dist::seeded_rng(cfg.seed);
    let bounds = problem.all_bounds();
    let total = cfg.population * (cfg.generations + 1);
    let mut evaluated = Vec::with_capacity(total);
    for _ in 0..total {
        let x: Vec<f64> = bounds
            .iter()
            .map(|&(lo, hi)| dist::uniform(&mut rng, lo, hi))
            .collect();
        let eval = problem.evaluate(&x);
        evaluated.push(Individual::new(x, eval));
    }
    BaselineResult {
        evaluations: evaluated.len(),
        evaluated,
    }
}

/// Single-objective GA on a fixed weighted sum of the objectives, with a
/// penalty for constraint violation. Repeated runs with different weight
/// vectors approximate a front the way pre-NSGA flows did.
///
/// # Panics
///
/// Panics if `weights.len() != problem.num_objectives()` or all weights
/// are zero.
pub fn run_weighted_sum_ga<P: Problem>(
    problem: &P,
    weights: &[f64],
    cfg: &BaselineConfig,
) -> BaselineResult {
    assert_eq!(
        weights.len(),
        problem.num_objectives(),
        "one weight per objective required"
    );
    assert!(
        weights.iter().any(|&w| w != 0.0),
        "at least one weight must be nonzero"
    );
    let mut rng = dist::seeded_rng(cfg.seed);
    let bounds = problem.all_bounds();
    let fitness = |ind: &Individual| -> f64 {
        let weighted: f64 = ind.objectives.iter().zip(weights).map(|(o, w)| o * w).sum();
        weighted + 1e6 * ind.violation()
    };

    let initial = dist::latin_hypercube(&mut rng, cfg.population, &bounds);
    let mut evaluated: Vec<Individual> = Vec::new();
    let mut population: Vec<Individual> = initial
        .into_iter()
        .map(|x| {
            let eval = problem.evaluate(&x);
            Individual::new(x, eval)
        })
        .collect();
    evaluated.extend(population.iter().cloned());

    for _gen in 0..cfg.generations {
        let mut offspring = Vec::with_capacity(cfg.population);
        while offspring.len() < cfg.population {
            // Binary tournament on scalar fitness.
            let pick = |rng: &mut rand::rngs::StdRng, pop: &[Individual]| -> usize {
                let a = rng.random_range(0..pop.len());
                let b = rng.random_range(0..pop.len());
                if fitness(&pop[a]) < fitness(&pop[b]) {
                    a
                } else {
                    b
                }
            };
            let p1 = pick(&mut rng, &population);
            let p2 = pick(&mut rng, &population);
            // Arithmetic crossover + gaussian mutation.
            let alpha: f64 = rng.random();
            let mut child: Vec<f64> = population[p1]
                .x
                .iter()
                .zip(&population[p2].x)
                .map(|(a, b)| alpha * a + (1.0 - alpha) * b)
                .collect();
            for (i, v) in child.iter_mut().enumerate() {
                if rng.random::<f64>() < 0.2 {
                    let (lo, hi) = bounds[i];
                    *v = (*v + dist::normal(&mut rng, 0.0, 0.1 * (hi - lo))).clamp(lo, hi);
                }
            }
            let eval = problem.evaluate(&child);
            offspring.push(Individual::new(child, eval));
        }
        evaluated.extend(offspring.iter().cloned());
        // Elitist (µ+λ) truncation on scalar fitness.
        population.extend(offspring);
        population.sort_by(|a, b| {
            fitness(a)
                .partial_cmp(&fitness(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        population.truncate(cfg.population);
    }

    BaselineResult {
        evaluations: evaluated.len(),
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    struct Sphere;

    impl Problem for Sphere {
        fn num_vars(&self) -> usize {
            3
        }
        fn bounds(&self, _i: usize) -> (f64, f64) {
            (-2.0, 2.0)
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, x: &[f64]) -> Evaluation {
            let s1: f64 = x.iter().map(|v| v * v).sum();
            let s2: f64 = x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum();
            Evaluation::feasible(vec![s1, s2])
        }
    }

    #[test]
    fn random_search_counts_evaluations() {
        let cfg = BaselineConfig {
            population: 10,
            generations: 4,
            seed: 1,
        };
        let r = run_random_search(&Sphere, &cfg);
        assert_eq!(r.evaluations, 50);
        assert!(!r.pareto_front().is_empty());
    }

    #[test]
    fn weighted_ga_minimises_weighted_sum() {
        let cfg = BaselineConfig {
            population: 30,
            generations: 30,
            seed: 2,
        };
        // All weight on the first objective → should reach x ≈ 0.
        let r = run_weighted_sum_ga(&Sphere, &[1.0, 0.0], &cfg);
        let best = r
            .evaluated
            .iter()
            .min_by(|a, b| {
                a.objectives[0]
                    .partial_cmp(&b.objectives[0])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap();
        assert!(best.objectives[0] < 0.05, "best f1 {}", best.objectives[0]);
    }

    #[test]
    fn weighted_ga_front_is_narrower_than_nsga2() {
        // A single weight vector concentrates solutions around one point
        // of the trade-off; its non-dominated set spreads much less than
        // the true front [0, 3] in f1.
        let cfg = BaselineConfig {
            population: 40,
            generations: 20,
            seed: 3,
        };
        let r = run_weighted_sum_ga(&Sphere, &[0.5, 0.5], &cfg);
        let front = r.pareto_front();
        assert!(!front.is_empty());
        let min_f1 = front
            .iter()
            .map(|i| i.objectives[0])
            .fold(f64::INFINITY, f64::min);
        let max_f1 = front
            .iter()
            .map(|i| i.objectives[0])
            .fold(f64::NEG_INFINITY, f64::max);
        // Concentration: the weighted-sum front covers a narrow band.
        assert!(max_f1 - min_f1 < 3.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = BaselineConfig {
            population: 10,
            generations: 3,
            seed: 7,
        };
        let a = run_random_search(&Sphere, &cfg);
        let b = run_random_search(&Sphere, &cfg);
        assert_eq!(a.evaluated, b.evaluated);
    }

    #[test]
    #[should_panic(expected = "one weight per objective")]
    fn weight_count_checked() {
        let cfg = BaselineConfig::default();
        let _ = run_weighted_sum_ga(&Sphere, &[1.0], &cfg);
    }
}
