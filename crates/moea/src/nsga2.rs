//! NSGA-II: elitist non-dominated sorting genetic algorithm
//! (Deb, Pratap, Agarwal, Meyarivan, 2002) — the optimiser named by the
//! paper for both the circuit-level and system-level stages.
//!
//! Candidate evaluation runs on the supervised [`exec`] pool: workers
//! claim candidates from a shared cursor (a slow simulation no longer
//! sets the generation's wall clock through its static chunk), panics
//! and per-task deadline overruns become failed candidates, and
//! [`run_nsga2_supervised`] threads a cancellation token and batch
//! deadline through every generation.

use std::collections::HashMap;

use evalcache::EvalCache;
use exec::{AbortReason, ExecPolicy, PoolStats};
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use numkit::dist;

use crate::problem::{Evaluation, Individual, Problem};
use crate::sorting::{crowding_distance, fast_non_dominated_sort};

/// NSGA-II configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Nsga2Config {
    /// Population size (paper §4.2 uses 100).
    pub population: usize,
    /// Number of generations (paper §4.2 uses 30).
    pub generations: usize,
    /// Crossover probability.
    pub crossover_prob: f64,
    /// Per-variable mutation probability; `None` → `1/num_vars`.
    pub mutation_prob: Option<f64>,
    /// SBX distribution index (larger → children closer to parents).
    pub eta_crossover: f64,
    /// Polynomial-mutation distribution index.
    pub eta_mutation: f64,
    /// RNG seed — runs are deterministic given the seed.
    pub seed: u64,
    /// Number of worker threads for evaluation (1 = serial).
    pub eval_threads: usize,
    /// Include axial design-of-experiments seeds in the initial
    /// population: the box centre, the two diagonal corners, and per
    /// variable one point at each bound with the others centred
    /// (2·n_vars + 3 points). Gives the GA structured coverage of the
    /// parameter axes and extremes, which matters for narrow feasible
    /// corners under tight budgets.
    pub axial_seeds: bool,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population: 100,
            generations: 30,
            crossover_prob: 0.9,
            mutation_prob: None,
            eta_crossover: 15.0,
            eta_mutation: 20.0,
            seed: 0,
            eval_threads: 1,
            axial_seeds: false,
        }
    }
}

impl Nsga2Config {
    fn validate(&self) {
        assert!(self.population >= 4, "population must be at least 4");
        assert!(self.population.is_multiple_of(2), "population must be even");
        assert!(self.generations >= 1, "need at least one generation");
        assert!(
            (0.0..=1.0).contains(&self.crossover_prob),
            "crossover probability must be in [0,1]"
        );
        assert!(self.eval_threads >= 1, "need at least one eval thread");
    }
}

/// Per-generation convergence record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0 = initial population).
    pub generation: usize,
    /// Feasible individuals in the population.
    pub feasible: usize,
    /// Size of the current first front.
    pub front_size: usize,
    /// Best (minimum) value of the first objective among feasible
    /// individuals, or `NaN` when none are feasible.
    pub best_first_objective: f64,
}

/// Outcome of an NSGA-II run.
#[derive(Debug, Clone)]
pub struct Nsga2Result {
    /// Final population (sorted: best fronts first).
    pub population: Vec<Individual>,
    /// Total candidate evaluations performed.
    pub evaluations: usize,
    /// Generation count actually run.
    pub generations: usize,
    /// Per-generation convergence history (initial population plus one
    /// entry per generation).
    pub history: Vec<GenerationStats>,
    /// Accumulated scheduling statistics of every evaluation batch
    /// (worker utilisation, stolen tasks, panics, timeouts, retries).
    pub pool: PoolStats,
}

impl Nsga2Result {
    /// The feasible non-dominated front of the final population.
    pub fn pareto_front(&self) -> Vec<Individual> {
        let fronts = fast_non_dominated_sort(&self.population);
        let Some(first) = fronts.first() else {
            return Vec::new();
        };
        first
            .iter()
            .map(|&i| self.population[i].clone())
            .filter(|ind| ind.is_feasible())
            .collect()
    }
}

/// Runs NSGA-II on `problem`.
///
/// # Panics
///
/// Panics on invalid configuration (population < 4 or odd, zero
/// generations) or if the problem reports zero variables/objectives.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn run_nsga2<P: Problem>(problem: &P, cfg: &Nsga2Config) -> Nsga2Result {
    run_nsga2_seeded(problem, cfg, &[])
}

/// Runs NSGA-II with user-provided warm-start candidates injected into
/// the initial population (clamped to bounds; excess beyond the
/// population size is dropped). Warm starts matter when the feasible
/// region is a set of small islands — e.g. a system-level problem whose
/// trusted design points come from a characterised library.
///
/// # Panics
///
/// As [`run_nsga2`]; additionally if any seed has the wrong dimension.
pub fn run_nsga2_seeded<P: Problem>(
    problem: &P,
    cfg: &Nsga2Config,
    seeds: &[Vec<f64>],
) -> Nsga2Result {
    run_nsga2_supervised(problem, cfg, seeds, &ExecPolicy::default())
        .expect("an unsupervised run has no cancellation or deadline to abort it")
}

/// Runs NSGA-II under an explicit execution policy: candidate
/// evaluation uses the supervised pool (worker threads from
/// `exec.threads` when set, else `cfg.eval_threads`), a per-task
/// deadline turns slow candidates into failed evaluations, and the
/// cancel token / batch deadline are honoured between tasks and between
/// generations.
///
/// # Errors
///
/// Returns the [`AbortReason`] when the run was cancelled or its batch
/// deadline expired; partial GA state is discarded (a half-evolved
/// population is not a result).
///
/// # Panics
///
/// As [`run_nsga2_seeded`].
pub fn run_nsga2_supervised<P: Problem>(
    problem: &P,
    cfg: &Nsga2Config,
    seeds: &[Vec<f64>],
    exec: &ExecPolicy,
) -> Result<Nsga2Result, AbortReason> {
    run_nsga2_cached(problem, cfg, seeds, exec, None)
}

/// Runs NSGA-II as [`run_nsga2_supervised`], additionally memoising
/// candidate evaluations through `cache` when one is provided.
///
/// With a cache, each generation's batch is first deduplicated by exact
/// genome bit pattern (SBX and elitism re-propose identical genomes
/// across generations), then probed against the cache; only misses
/// reach the evaluator. Because the default cache key is the exact
/// IEEE-754 bit pattern and the evaluator is deterministic, the
/// returned population is bit-identical to an uncached run —
/// [`Nsga2Result::evaluations`] then counts *evaluator invocations*
/// (misses), not candidates. Hit/miss counters accumulate on `cache`
/// for the caller to report.
///
/// # Errors
///
/// As [`run_nsga2_supervised`].
///
/// # Panics
///
/// As [`run_nsga2_seeded`].
pub fn run_nsga2_cached<P: Problem>(
    problem: &P,
    cfg: &Nsga2Config,
    seeds: &[Vec<f64>],
    exec: &ExecPolicy,
    cache: Option<&EvalCache<Evaluation>>,
) -> Result<Nsga2Result, AbortReason> {
    cfg.validate();
    assert!(problem.num_vars() > 0, "problem has no variables");
    assert!(problem.num_objectives() > 0, "problem has no objectives");

    let mut policy = exec.clone();
    if policy.threads == 0 {
        policy.threads = cfg.eval_threads;
    }
    let mut pool = PoolStats::default();

    let mut rng = dist::seeded_rng(cfg.seed);
    let bounds = problem.all_bounds();
    let pm = cfg.mutation_prob.unwrap_or(1.0 / bounds.len() as f64);
    let mut evaluations = 0usize;

    // Warm starts, then axial DOE seeds, then Latin hypercube.
    let mut initial: Vec<Vec<f64>> = Vec::with_capacity(cfg.population);
    for seed in seeds.iter().take(cfg.population) {
        assert_eq!(
            seed.len(),
            bounds.len(),
            "seed dimension mismatch: {} vs {}",
            seed.len(),
            bounds.len()
        );
        let clamped: Vec<f64> = seed
            .iter()
            .zip(&bounds)
            .map(|(v, &(lo, hi))| v.clamp(lo, hi))
            .collect();
        initial.push(clamped);
    }
    if cfg.axial_seeds {
        let centre: Vec<f64> = bounds.iter().map(|&(lo, hi)| 0.5 * (lo + hi)).collect();
        initial.push(centre.clone());
        // Diagonal corners: all-low and all-high.
        initial.push(bounds.iter().map(|&(lo, _)| lo).collect());
        initial.push(bounds.iter().map(|&(_, hi)| hi).collect());
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            for v in [lo, hi] {
                let mut p = centre.clone();
                p[i] = v;
                initial.push(p);
                if initial.len() >= cfg.population {
                    break;
                }
            }
            if initial.len() >= cfg.population {
                break;
            }
        }
        initial.truncate(cfg.population);
    }
    let remaining = cfg.population.saturating_sub(initial.len());
    if remaining > 0 {
        initial.extend(dist::latin_hypercube(&mut rng, remaining, &bounds));
    }
    let mut population = evaluate_all(
        problem,
        initial,
        &policy,
        &mut pool,
        cache,
        &mut evaluations,
    )?;
    let mut history = vec![generation_stats(0, &population)];

    for gen in 0..cfg.generations {
        let gen_start = telemetry::enabled().then(std::time::Instant::now);
        if policy.cancel.is_cancelled() {
            return Err(AbortReason::Cancelled);
        }
        if policy.batch_deadline.is_some_and(|d| d.expired()) {
            return Err(AbortReason::DeadlineExceeded);
        }
        // Selection + variation produce an offspring population.
        let ranks = rank_and_crowd(&population);
        let mut offspring_x = Vec::with_capacity(cfg.population);
        while offspring_x.len() < cfg.population {
            let p1 = tournament(&population, &ranks, &mut rng);
            let p2 = tournament(&population, &ranks, &mut rng);
            let (mut c1, mut c2) = if rng.random::<f64>() < cfg.crossover_prob {
                sbx_crossover(
                    &population[p1].x,
                    &population[p2].x,
                    &bounds,
                    cfg.eta_crossover,
                    &mut rng,
                )
            } else {
                (population[p1].x.clone(), population[p2].x.clone())
            };
            polynomial_mutation(&mut c1, &bounds, pm, cfg.eta_mutation, &mut rng);
            polynomial_mutation(&mut c2, &bounds, pm, cfg.eta_mutation, &mut rng);
            offspring_x.push(c1);
            if offspring_x.len() < cfg.population {
                offspring_x.push(c2);
            }
        }
        let offspring = evaluate_all(
            problem,
            offspring_x,
            &policy,
            &mut pool,
            cache,
            &mut evaluations,
        )?;

        // Elitist environmental selection on parents ∪ offspring.
        let mut combined = population;
        combined.extend(offspring);
        population = environmental_selection(combined, cfg.population);
        history.push(generation_stats(gen + 1, &population));
        if let Some(start) = gen_start {
            telemetry::observe_secs("moea.generation_seconds", start.elapsed());
        }
    }

    Ok(Nsga2Result {
        population,
        evaluations,
        generations: cfg.generations,
        history,
        pool,
    })
}

fn generation_stats(generation: usize, population: &[Individual]) -> GenerationStats {
    let feasible = population.iter().filter(|i| i.is_feasible()).count();
    let fronts = fast_non_dominated_sort(population);
    let front_size = fronts.first().map_or(0, |f| f.len());
    let best_first_objective = population
        .iter()
        .filter(|i| i.is_feasible())
        .map(|i| i.objectives[0])
        .fold(
            f64::NAN,
            |acc, v| if acc.is_nan() || v < acc { v } else { acc },
        );
    GenerationStats {
        generation,
        feasible,
        front_size,
        best_first_objective,
    }
}

/// (rank, crowding) per individual, used by tournament selection.
fn rank_and_crowd(pop: &[Individual]) -> Vec<(usize, f64)> {
    let fronts = fast_non_dominated_sort(pop);
    let mut out = vec![(0usize, 0.0f64); pop.len()];
    for (rank, front) in fronts.iter().enumerate() {
        let dist = crowding_distance(pop, front);
        for (k, &i) in front.iter().enumerate() {
            out[i] = (rank, dist[k]);
        }
    }
    out
}

/// Binary tournament on (rank, crowding distance).
fn tournament(pop: &[Individual], ranks: &[(usize, f64)], rng: &mut StdRng) -> usize {
    let a = rng.random_range(0..pop.len());
    let b = rng.random_range(0..pop.len());
    let (ra, da) = ranks[a];
    let (rb, db) = ranks[b];
    if ra < rb || (ra == rb && da > db) {
        a
    } else {
        b
    }
}

/// Keeps the best `target` individuals by (front rank, crowding).
fn environmental_selection(pop: Vec<Individual>, target: usize) -> Vec<Individual> {
    let fronts = fast_non_dominated_sort(&pop);
    let mut selected: Vec<Individual> = Vec::with_capacity(target);
    for front in fronts {
        if selected.len() + front.len() <= target {
            selected.extend(front.iter().map(|&i| pop[i].clone()));
            if selected.len() == target {
                break;
            }
        } else {
            // Partial front: take the most crowded-distance-diverse.
            let dist = crowding_distance(&pop, &front);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| {
                dist[b]
                    .partial_cmp(&dist[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &k in order.iter().take(target - selected.len()) {
                selected.push(pop[front[k]].clone());
            }
            break;
        }
    }
    selected
}

/// Simulated binary crossover (SBX), bound-respecting variant.
fn sbx_crossover(
    p1: &[f64],
    p2: &[f64],
    bounds: &[(f64, f64)],
    eta: f64,
    rng: &mut StdRng,
) -> (Vec<f64>, Vec<f64>) {
    let mut c1 = p1.to_vec();
    let mut c2 = p2.to_vec();
    for i in 0..p1.len() {
        if rng.random::<f64>() > 0.5 {
            continue;
        }
        let (lo, hi) = bounds[i];
        let (x1, x2) = (p1[i].min(p2[i]), p1[i].max(p2[i]));
        if (x2 - x1).abs() < 1e-14 {
            continue;
        }
        let u: f64 = rng.random();
        let beta = if u <= 0.5 {
            (2.0 * u).powf(1.0 / (eta + 1.0))
        } else {
            (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (eta + 1.0))
        };
        let v1 = 0.5 * ((x1 + x2) - beta * (x2 - x1));
        let v2 = 0.5 * ((x1 + x2) + beta * (x2 - x1));
        c1[i] = v1.clamp(lo, hi);
        c2[i] = v2.clamp(lo, hi);
        if rng.random::<f64>() < 0.5 {
            std::mem::swap(&mut c1[i], &mut c2[i]);
        }
    }
    (c1, c2)
}

/// Polynomial mutation, bound-respecting variant.
fn polynomial_mutation(x: &mut [f64], bounds: &[(f64, f64)], pm: f64, eta: f64, rng: &mut StdRng) {
    for i in 0..x.len() {
        if rng.random::<f64>() >= pm {
            continue;
        }
        let (lo, hi) = bounds[i];
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        let delta = if u < 0.5 {
            (2.0 * u).powf(1.0 / (eta + 1.0)) - 1.0
        } else {
            1.0 - (2.0 * (1.0 - u)).powf(1.0 / (eta + 1.0))
        };
        x[i] = (x[i] + delta * span).clamp(lo, hi);
    }
}

/// Evaluates a batch of candidates on the supervised pool. Results are
/// keyed by candidate index, so the outcome is identical across thread
/// counts. Individual evaluation failures (panics, per-task deadline
/// overruns) become failed candidates; only a batch-level abort
/// (cancellation or batch deadline) surfaces as an error.
fn evaluate_all<P: Problem>(
    problem: &P,
    candidates: Vec<Vec<f64>>,
    policy: &ExecPolicy,
    pool: &mut PoolStats,
    cache: Option<&EvalCache<Evaluation>>,
    evaluations: &mut usize,
) -> Result<Vec<Individual>, AbortReason> {
    let Some(cache) = cache else {
        *evaluations += candidates.len();
        telemetry::counter_add("moea.evaluations", candidates.len() as u64);
        let batch = exec::run_batch(candidates.len(), policy, |ctx| {
            let x = &candidates[ctx.index];
            Ok(Individual::new(x.clone(), checked_eval(problem, x)))
        });
        pool.absorb(&batch.stats);
        if let Some(reason) = batch.aborted {
            return Err(reason);
        }
        // Per-item pool failures (a timed-out or panicking evaluation)
        // cost the candidate, not the generation: they re-enter the GA
        // as failed evaluations, exactly like a NaN objective.
        return Ok(batch
            .items
            .into_iter()
            .zip(candidates)
            .map(|(item, x)| {
                item.unwrap_or_else(|| {
                    Individual::new(x, Evaluation::failed(problem.num_objectives()))
                })
            })
            .collect());
    };
    evaluate_all_cached(problem, candidates, policy, pool, cache, evaluations)
}

/// Cache-aware evaluation: dedup identical genomes within the batch,
/// probe the cache per unique genome, evaluate only the misses on the
/// pool, then fan results back out to every candidate slot. Evaluations
/// that complete (including deterministic [`Evaluation::failed`]
/// quarantines from [`checked_eval`]) are cached; pool-level losses
/// (timeouts, which are wall-clock dependent) are not, so the cache
/// never replays a transient scheduling failure.
fn evaluate_all_cached<P: Problem>(
    problem: &P,
    candidates: Vec<Vec<f64>>,
    policy: &ExecPolicy,
    pool: &mut PoolStats,
    cache: &EvalCache<Evaluation>,
    evaluations: &mut usize,
) -> Result<Vec<Individual>, AbortReason> {
    // Dedup by exact bit pattern: `slot_of[i]` maps candidate `i` to
    // its unique-genome slot.
    let mut unique: Vec<usize> = Vec::new();
    let mut slot_of: Vec<usize> = Vec::with_capacity(candidates.len());
    let mut seen: HashMap<Vec<u64>, usize> = HashMap::new();
    for x in &candidates {
        let bits: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
        let next_slot = unique.len();
        let slot = *seen.entry(bits).or_insert(next_slot);
        if slot == next_slot {
            unique.push(slot_of.len());
        }
        slot_of.push(slot);
    }

    let mut results: Vec<Option<Evaluation>> = vec![None; unique.len()];
    let mut misses: Vec<usize> = Vec::new();
    for (slot, &ci) in unique.iter().enumerate() {
        match cache.get(&cache.key(&candidates[ci])) {
            Some(eval) => results[slot] = Some(eval),
            None => misses.push(slot),
        }
    }

    *evaluations += misses.len();
    telemetry::counter_add("moea.evaluations", misses.len() as u64);
    let batch = exec::run_batch(misses.len(), policy, |ctx| {
        let x = &candidates[unique[misses[ctx.index]]];
        Ok(checked_eval(problem, x))
    });
    pool.absorb(&batch.stats);
    if let Some(reason) = batch.aborted {
        return Err(reason);
    }
    for (k, item) in batch.items.into_iter().enumerate() {
        if let Some(eval) = item {
            let slot = misses[k];
            cache.put(cache.key(&candidates[unique[slot]]), &eval);
            results[slot] = Some(eval);
        }
    }

    Ok(candidates
        .into_iter()
        .zip(slot_of)
        .map(|(x, slot)| {
            let eval = results[slot]
                .clone()
                .unwrap_or_else(|| Evaluation::failed(problem.num_objectives()));
            Individual::new(x, eval)
        })
        .collect())
}

/// Guards the dominance machinery against broken evaluations: a
/// panicking evaluator, non-finite objectives, or NaN constraints all
/// become a failed candidate (worst objectives, violated constraint)
/// instead of poisoning the sort or aborting a worker thread.
/// Non-finite *constraints* other than NaN stay as-is — ±∞ violations
/// still order correctly.
fn checked_eval<P: Problem>(problem: &P, x: &[f64]) -> Evaluation {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| problem.evaluate(x)));
    let Ok(eval) = result else {
        return Evaluation::failed(problem.num_objectives());
    };
    let broken = eval.objectives.len() != problem.num_objectives()
        || eval.objectives.iter().any(|v| !v.is_finite())
        || eval.constraints.iter().any(|v| v.is_nan());
    if broken {
        Evaluation::failed(problem.num_objectives())
    } else {
        eval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::pareto_dominates;

    /// ZDT1: 30-var benchmark with known Pareto front f2 = 1 − √f1.
    struct Zdt1;

    impl Problem for Zdt1 {
        fn num_vars(&self) -> usize {
            10
        }
        fn bounds(&self, _i: usize) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, x: &[f64]) -> Evaluation {
            let f1 = x[0];
            let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (x.len() - 1) as f64;
            let f2 = g * (1.0 - (f1 / g).sqrt());
            Evaluation::feasible(vec![f1, f2])
        }
    }

    /// Constrained single-variable problem: minimise (x², (x−2)²) s.t. x ≥ 1.
    struct ConstrainedSchaffer;

    impl Problem for ConstrainedSchaffer {
        fn num_vars(&self) -> usize {
            1
        }
        fn bounds(&self, _i: usize) -> (f64, f64) {
            (-3.0, 3.0)
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn num_constraints(&self) -> usize {
            1
        }
        fn evaluate(&self, x: &[f64]) -> Evaluation {
            Evaluation {
                objectives: vec![x[0] * x[0], (x[0] - 2.0) * (x[0] - 2.0)],
                constraints: vec![x[0] - 1.0],
            }
        }
    }

    #[test]
    fn zdt1_front_approaches_analytic() {
        let cfg = Nsga2Config {
            population: 60,
            generations: 60,
            seed: 3,
            ..Default::default()
        };
        let result = run_nsga2(&Zdt1, &cfg);
        let front = result.pareto_front();
        assert!(front.len() >= 20, "front size {}", front.len());
        // Mean distance to the analytic front f2 = 1 - sqrt(f1) is small.
        let mean_err: f64 = front
            .iter()
            .map(|ind| {
                let f1 = ind.objectives[0];
                (ind.objectives[1] - (1.0 - f1.sqrt())).abs()
            })
            .sum::<f64>()
            / front.len() as f64;
        assert!(mean_err < 0.25, "mean distance to true front {mean_err}");
    }

    #[test]
    fn front_is_mutually_nondominated() {
        let cfg = Nsga2Config {
            population: 40,
            generations: 20,
            seed: 5,
            ..Default::default()
        };
        let result = run_nsga2(&Zdt1, &cfg);
        let front = result.pareto_front();
        for a in &front {
            for b in &front {
                if a.x != b.x {
                    assert!(!pareto_dominates(&a.objectives, &b.objectives));
                }
            }
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let cfg = Nsga2Config {
            population: 20,
            generations: 10,
            seed: 11,
            ..Default::default()
        };
        let a = run_nsga2(&Zdt1, &cfg);
        let b = run_nsga2(&Zdt1, &cfg);
        assert_eq!(a.population, b.population);
        let cfg2 = Nsga2Config { seed: 12, ..cfg };
        let c = run_nsga2(&Zdt1, &cfg2);
        assert_ne!(a.population, c.population);
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let cfg = Nsga2Config {
            population: 24,
            generations: 8,
            seed: 9,
            eval_threads: 1,
            ..Default::default()
        };
        let serial = run_nsga2(&Zdt1, &cfg);
        let cfg_par = Nsga2Config {
            eval_threads: 4,
            ..cfg
        };
        let parallel = run_nsga2(&Zdt1, &cfg_par);
        assert_eq!(serial.population, parallel.population);
    }

    #[test]
    fn constraints_are_respected() {
        let cfg = Nsga2Config {
            population: 40,
            generations: 40,
            seed: 2,
            ..Default::default()
        };
        let result = run_nsga2(&ConstrainedSchaffer, &cfg);
        let front = result.pareto_front();
        assert!(!front.is_empty());
        for ind in &front {
            assert!(
                ind.x[0] >= 1.0 - 1e-9,
                "constraint x >= 1 violated: {}",
                ind.x[0]
            );
        }
    }

    #[test]
    fn warm_start_seeds_survive_into_the_search() {
        // A problem whose optimum is a tiny feasible island: only the
        // warm-started run finds it in one generation.
        struct Island;
        impl Problem for Island {
            fn num_vars(&self) -> usize {
                2
            }
            fn bounds(&self, _i: usize) -> (f64, f64) {
                (0.0, 1.0)
            }
            fn num_objectives(&self) -> usize {
                1
            }
            fn num_constraints(&self) -> usize {
                1
            }
            fn evaluate(&self, x: &[f64]) -> Evaluation {
                let d = ((x[0] - 0.123).powi(2) + (x[1] - 0.456).powi(2)).sqrt();
                Evaluation {
                    objectives: vec![d],
                    constraints: vec![0.01 - d], // feasible within 0.01
                }
            }
        }
        let cfg = Nsga2Config {
            population: 12,
            generations: 1,
            seed: 1,
            ..Default::default()
        };
        let cold = run_nsga2(&Island, &cfg);
        let warm = run_nsga2_seeded(&Island, &cfg, &[vec![0.123, 0.456]]);
        assert!(warm.pareto_front().iter().any(|i| i.is_feasible()));
        assert!(warm.pareto_front().iter().any(|i| i.objectives[0] < 1e-12));
        // The cold run almost surely misses the island in one generation.
        let _ = cold;
    }

    #[test]
    fn seeds_are_clamped_to_bounds() {
        let cfg = Nsga2Config {
            population: 8,
            generations: 1,
            seed: 2,
            ..Default::default()
        };
        let result = run_nsga2_seeded(&Zdt1, &cfg, &[vec![5.0; 10]]);
        for ind in &result.population {
            assert!(ind.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn axial_seeds_cover_the_bounds() {
        // With axial seeding, a 1-generation run on a problem whose
        // optimum sits at a bound corner finds that bound immediately.
        struct EdgeProblem;
        impl Problem for EdgeProblem {
            fn num_vars(&self) -> usize {
                3
            }
            fn bounds(&self, _i: usize) -> (f64, f64) {
                (0.0, 1.0)
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn evaluate(&self, x: &[f64]) -> Evaluation {
                Evaluation::feasible(vec![x[0], 1.0 - x[0] + x[1] + x[2]])
            }
        }
        let cfg = Nsga2Config {
            population: 20,
            generations: 1,
            seed: 3,
            axial_seeds: true,
            ..Default::default()
        };
        let result = run_nsga2(&EdgeProblem, &cfg);
        // The axial point x0 = 0 (others centred) is in the population's
        // history: best first objective is exactly 0.
        assert_eq!(result.history[0].best_first_objective, 0.0);
    }

    #[test]
    fn history_tracks_convergence() {
        let cfg = Nsga2Config {
            population: 30,
            generations: 15,
            seed: 8,
            ..Default::default()
        };
        let result = run_nsga2(&Zdt1, &cfg);
        assert_eq!(result.history.len(), 16); // initial + 15 generations
        assert_eq!(result.history[0].generation, 0);
        // Everything feasible on ZDT1.
        assert!(result.history.iter().all(|h| h.feasible == 30));
        // Best f1 never worsens under elitism... (f1 = x0 can trade off;
        // check the LAST entry at least matches the final population).
        let final_best = result
            .population
            .iter()
            .map(|i| i.objectives[0])
            .fold(f64::INFINITY, f64::min);
        let hist_best = result.history.last().unwrap().best_first_objective;
        assert!((final_best - hist_best).abs() < 1e-12);
    }

    #[test]
    fn evaluation_count_is_reported() {
        let cfg = Nsga2Config {
            population: 10,
            generations: 5,
            seed: 1,
            ..Default::default()
        };
        let result = run_nsga2(&Zdt1, &cfg);
        // Initial pop + one offspring pop per generation.
        assert_eq!(result.evaluations, 10 * (5 + 1));
    }

    #[test]
    fn nan_objectives_become_failed_candidates() {
        struct NanProblem;
        impl Problem for NanProblem {
            fn num_vars(&self) -> usize {
                1
            }
            fn bounds(&self, _i: usize) -> (f64, f64) {
                (0.0, 1.0)
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn evaluate(&self, x: &[f64]) -> Evaluation {
                if x[0] > 0.5 {
                    Evaluation::feasible(vec![f64::NAN, 0.0])
                } else {
                    Evaluation::feasible(vec![x[0], 1.0 - x[0]])
                }
            }
        }
        let cfg = Nsga2Config {
            population: 20,
            generations: 10,
            seed: 4,
            ..Default::default()
        };
        let result = run_nsga2(&NanProblem, &cfg);
        let front = result.pareto_front();
        assert!(!front.is_empty());
        for ind in &front {
            assert!(ind.objectives.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn infinite_objectives_become_failed_candidates() {
        // ±∞ compares fine but saturates crowding-distance arithmetic
        // and shadows every real trade-off; it must be quarantined the
        // same way NaN is.
        struct InfProblem;
        impl Problem for InfProblem {
            fn num_vars(&self) -> usize {
                1
            }
            fn bounds(&self, _i: usize) -> (f64, f64) {
                (0.0, 1.0)
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn evaluate(&self, x: &[f64]) -> Evaluation {
                if x[0] > 0.5 {
                    Evaluation::feasible(vec![f64::NEG_INFINITY, 0.0])
                } else {
                    Evaluation::feasible(vec![x[0], 1.0 - x[0]])
                }
            }
        }
        let cfg = Nsga2Config {
            population: 20,
            generations: 10,
            seed: 4,
            ..Default::default()
        };
        let result = run_nsga2(&InfProblem, &cfg);
        let front = result.pareto_front();
        assert!(!front.is_empty());
        for ind in &front {
            assert!(
                ind.objectives.iter().all(|v| v.is_finite()),
                "-inf objective survived into the front: {:?}",
                ind.objectives
            );
        }
    }

    #[test]
    fn panicking_evaluator_becomes_failed_candidate() {
        // A panic in evaluate() (index bug, assert, poisoned solver
        // state) must cost one candidate, not the run: serially and
        // with worker threads alike.
        struct PanickyProblem;
        impl Problem for PanickyProblem {
            fn num_vars(&self) -> usize {
                1
            }
            fn bounds(&self, _i: usize) -> (f64, f64) {
                (0.0, 1.0)
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn evaluate(&self, x: &[f64]) -> Evaluation {
                assert!(x[0] <= 0.7, "solver blew up at x = {}", x[0]);
                Evaluation::feasible(vec![x[0], 1.0 - x[0]])
            }
        }
        // Silence the panic hook for the duration: these panics are the
        // test fixture, not failures worth printing hundreds of times.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let run = std::panic::catch_unwind(|| {
            let cfg = Nsga2Config {
                population: 20,
                generations: 8,
                seed: 6,
                ..Default::default()
            };
            let serial = run_nsga2(&PanickyProblem, &cfg);
            let cfg_par = Nsga2Config {
                eval_threads: 4,
                ..cfg
            };
            let parallel = run_nsga2(&PanickyProblem, &cfg_par);
            (serial, parallel)
        });
        std::panic::set_hook(hook);
        let (serial, parallel) = run.expect("the GA itself must not panic");
        for result in [&serial, &parallel] {
            let front = result.pareto_front();
            assert!(!front.is_empty());
            for ind in &front {
                assert!(ind.x[0] <= 0.7, "panicking candidate won: {:?}", ind.x);
                assert!(ind.objectives.iter().all(|v| v.is_finite()));
            }
        }
        // Failure handling is deterministic too.
        assert_eq!(serial.population, parallel.population);
    }

    #[test]
    fn supervised_run_reports_pool_stats() {
        let cfg = Nsga2Config {
            population: 20,
            generations: 5,
            seed: 3,
            eval_threads: 4,
            ..Default::default()
        };
        let result = run_nsga2(&Zdt1, &cfg);
        // Initial pop + one offspring batch per generation.
        assert_eq!(result.pool.tasks, 20 * 6);
        assert_eq!(result.pool.completed, 20 * 6);
        assert_eq!(result.pool.workers, 4);
        assert_eq!(result.pool.panics, 0);
    }

    #[test]
    fn cancelled_supervised_run_aborts() {
        let cfg = Nsga2Config {
            population: 16,
            generations: 50,
            seed: 1,
            ..Default::default()
        };
        let token = exec::CancelToken::new();
        token.cancel();
        let err = run_nsga2_supervised(&Zdt1, &cfg, &[], &ExecPolicy::default().with_cancel(token))
            .unwrap_err();
        assert_eq!(err, AbortReason::Cancelled);
    }

    #[test]
    fn mid_run_cancellation_stops_between_generations() {
        // One worker + a poll budget that expires during generation 2's
        // evaluations: the run aborts instead of finishing 50 gens.
        let cfg = Nsga2Config {
            population: 16,
            generations: 50,
            seed: 1,
            eval_threads: 1,
            ..Default::default()
        };
        let policy = ExecPolicy::default().with_cancel(exec::CancelToken::cancel_after(40));
        let err = run_nsga2_supervised(&Zdt1, &cfg, &[], &policy).unwrap_err();
        assert_eq!(err, AbortReason::Cancelled);
    }

    #[test]
    fn per_task_deadline_degrades_slow_candidates_without_losing_the_run() {
        // Candidates in the slow corner stall past the deadline; they
        // must become failed evaluations while the rest of the search
        // proceeds.
        struct SlowCorner;
        impl Problem for SlowCorner {
            fn num_vars(&self) -> usize {
                1
            }
            fn bounds(&self, _i: usize) -> (f64, f64) {
                (0.0, 1.0)
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn evaluate(&self, x: &[f64]) -> Evaluation {
                if x[0] > 0.9 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                Evaluation::feasible(vec![x[0], 1.0 - x[0]])
            }
        }
        let cfg = Nsga2Config {
            population: 12,
            generations: 2,
            seed: 5,
            ..Default::default()
        };
        let policy = ExecPolicy::default().task_deadline(std::time::Duration::from_millis(10));
        let result = run_nsga2_supervised(&SlowCorner, &cfg, &[], &policy)
            .expect("per-task overruns must not abort the run");
        assert!(result.pool.timeouts > 0, "the slow corner must get hit");
        for ind in result.pareto_front() {
            assert!(
                ind.x[0] <= 0.9,
                "a timed-out candidate must not win: {:?}",
                ind.x
            );
        }
    }

    #[test]
    fn cached_run_is_bit_identical_to_uncached() {
        let cfg = Nsga2Config {
            population: 24,
            generations: 12,
            seed: 7,
            ..Default::default()
        };
        let plain = run_nsga2(&Zdt1, &cfg);
        let cache = EvalCache::new(4096, evalcache::KeyQuantiser::exact(), 0xc0ffee);
        let cached = run_nsga2_cached(&Zdt1, &cfg, &[], &ExecPolicy::default(), Some(&cache))
            .expect("no abort configured");
        assert_eq!(plain.population, cached.population);
        assert_eq!(plain.history.len(), cached.history.len());
        for (a, b) in plain.history.iter().zip(&cached.history) {
            assert_eq!(a, b);
        }
        // The GA re-proposes elite genomes, so the cache must have been
        // exercised and evaluator work must not exceed the plain run's.
        let stats = cache.stats();
        assert!(stats.hits > 0, "elitist duplicates should hit the cache");
        assert!(cached.evaluations <= plain.evaluations);
        assert_eq!(cached.evaluations as u64, stats.misses);
    }

    #[test]
    fn cached_run_with_threads_matches_serial_cached_run() {
        let cfg = Nsga2Config {
            population: 20,
            generations: 8,
            seed: 13,
            ..Default::default()
        };
        let c1 = EvalCache::new(2048, evalcache::KeyQuantiser::exact(), 1);
        let serial = run_nsga2_cached(&Zdt1, &cfg, &[], &ExecPolicy::default(), Some(&c1)).unwrap();
        let c2 = EvalCache::new(2048, evalcache::KeyQuantiser::exact(), 1);
        let cfg_par = Nsga2Config {
            eval_threads: 4,
            ..cfg
        };
        let parallel =
            run_nsga2_cached(&Zdt1, &cfg_par, &[], &ExecPolicy::default(), Some(&c2)).unwrap();
        assert_eq!(serial.population, parallel.population);
    }

    #[test]
    fn warm_cache_eliminates_evaluator_work() {
        let cfg = Nsga2Config {
            population: 16,
            generations: 6,
            seed: 21,
            ..Default::default()
        };
        let cache = EvalCache::new(8192, evalcache::KeyQuantiser::exact(), 5);
        let cold =
            run_nsga2_cached(&Zdt1, &cfg, &[], &ExecPolicy::default(), Some(&cache)).unwrap();
        // Same seed, same cache: every candidate the rerun proposes was
        // already evaluated, so the warm pass does zero evaluator work.
        let warm =
            run_nsga2_cached(&Zdt1, &cfg, &[], &ExecPolicy::default(), Some(&cache)).unwrap();
        assert_eq!(cold.population, warm.population);
        assert_eq!(warm.evaluations, 0, "warm rerun must be all cache hits");
        assert!(cold.evaluations > 0);
    }

    #[test]
    #[should_panic(expected = "population must be even")]
    fn odd_population_panics() {
        let cfg = Nsga2Config {
            population: 25,
            ..Default::default()
        };
        let _ = run_nsga2(&Zdt1, &cfg);
    }
}
