//! The optimisation problem abstraction and evaluated individuals.

use serde::{Deserialize, Serialize};

/// Result of evaluating one candidate solution.
///
/// All objectives are **minimised**; negate maximised quantities at the
/// problem boundary. Constraints
/// use the `g(x) ≥ 0` convention: negative values measure violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Objective values, all minimised.
    pub objectives: Vec<f64>,
    /// Constraint values; `g ≥ 0` is feasible.
    pub constraints: Vec<f64>,
}

impl Evaluation {
    /// An evaluation with no constraints.
    pub fn feasible(objectives: Vec<f64>) -> Self {
        Evaluation {
            objectives,
            constraints: Vec::new(),
        }
    }

    /// An evaluation marking a completely failed candidate (e.g. a
    /// simulation that did not converge): every objective is `+∞` and a
    /// single fully-violated constraint is attached, so constrained
    /// domination ranks it below every working candidate.
    pub fn failed(num_objectives: usize) -> Self {
        Evaluation {
            objectives: vec![f64::INFINITY; num_objectives],
            constraints: vec![-1e30],
        }
    }

    /// Total constraint violation (0 when feasible).
    pub fn violation(&self) -> f64 {
        self.constraints
            .iter()
            .filter(|&&g| g < 0.0)
            .map(|g| -g)
            .sum()
    }

    /// Whether all constraints are satisfied.
    pub fn is_feasible(&self) -> bool {
        self.constraints.iter().all(|&g| g >= 0.0)
    }
}

/// A candidate solution with its evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Individual {
    /// Decision variables.
    pub x: Vec<f64>,
    /// Objective values (minimised).
    pub objectives: Vec<f64>,
    /// Constraint values (`g ≥ 0` feasible).
    pub constraints: Vec<f64>,
}

impl Individual {
    /// Builds an individual from variables and an evaluation.
    pub fn new(x: Vec<f64>, eval: Evaluation) -> Self {
        Individual {
            x,
            objectives: eval.objectives,
            constraints: eval.constraints,
        }
    }

    /// Total constraint violation (0 when feasible).
    pub fn violation(&self) -> f64 {
        self.constraints
            .iter()
            .filter(|&&g| g < 0.0)
            .map(|g| -g)
            .sum()
    }

    /// Whether all constraints are satisfied.
    pub fn is_feasible(&self) -> bool {
        self.constraints.iter().all(|&g| g >= 0.0)
    }

    /// Pareto-dominance under the constrained-domination rule of
    /// Deb et al.: a feasible solution dominates an infeasible one; of
    /// two infeasible solutions the smaller violation dominates; two
    /// feasible solutions use standard Pareto dominance on objectives.
    pub fn constrained_dominates(&self, other: &Individual) -> bool {
        let va = self.violation();
        let vb = other.violation();
        if va == 0.0 && vb > 0.0 {
            return true;
        }
        if va > 0.0 && vb == 0.0 {
            return false;
        }
        if va > 0.0 && vb > 0.0 {
            return va < vb;
        }
        pareto_dominates(&self.objectives, &other.objectives)
    }
}

/// Standard Pareto dominance on minimised objective vectors: `a`
/// dominates `b` when it is no worse everywhere and strictly better
/// somewhere.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn pareto_dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective count mismatch");
    let mut strictly_better = false;
    for (ai, bi) in a.iter().zip(b) {
        if ai > bi {
            return false;
        }
        if ai < bi {
            strictly_better = true;
        }
    }
    strictly_better
}

/// A box-bounded multi-objective optimisation problem.
///
/// Implementors must be [`Sync`] so populations can be evaluated in
/// parallel.
pub trait Problem: Sync {
    /// Number of decision variables.
    fn num_vars(&self) -> usize;

    /// Bounds `(lo, hi)` of variable `i`.
    fn bounds(&self, i: usize) -> (f64, f64);

    /// Number of objectives (all minimised).
    fn num_objectives(&self) -> usize;

    /// Number of constraints (default 0).
    fn num_constraints(&self) -> usize {
        0
    }

    /// Evaluates a candidate. `x.len() == num_vars()` is guaranteed by
    /// the optimisers; values lie within bounds.
    fn evaluate(&self, x: &[f64]) -> Evaluation;

    /// All bounds as a vector, convenience for samplers.
    fn all_bounds(&self) -> Vec<(f64, f64)> {
        (0..self.num_vars()).map(|i| self.bounds(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(pareto_dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(pareto_dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!pareto_dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!pareto_dominates(&[1.0, 1.0], &[1.0, 1.0]));
    }

    #[test]
    fn constrained_domination_prefers_feasible() {
        let feasible = Individual::new(
            vec![0.0],
            Evaluation {
                objectives: vec![10.0],
                constraints: vec![0.5],
            },
        );
        let infeasible = Individual::new(
            vec![0.0],
            Evaluation {
                objectives: vec![1.0],
                constraints: vec![-0.5],
            },
        );
        assert!(feasible.constrained_dominates(&infeasible));
        assert!(!infeasible.constrained_dominates(&feasible));
    }

    #[test]
    fn constrained_domination_orders_by_violation() {
        let bad = Individual::new(
            vec![0.0],
            Evaluation {
                objectives: vec![1.0],
                constraints: vec![-2.0],
            },
        );
        let worse = Individual::new(
            vec![0.0],
            Evaluation {
                objectives: vec![0.5],
                constraints: vec![-5.0],
            },
        );
        assert!(bad.constrained_dominates(&worse));
        assert!(!worse.constrained_dominates(&bad));
    }

    #[test]
    fn failed_evaluation_is_dominated_by_anything_feasible() {
        let failed = Individual::new(vec![0.0], Evaluation::failed(2));
        let ok = Individual::new(vec![0.0], Evaluation::feasible(vec![1e9, 1e9]));
        assert!(ok.constrained_dominates(&failed));
        assert!(!failed.is_feasible());
        assert!(failed.violation() > 0.0);
    }

    #[test]
    fn violation_sums_only_negative_constraints() {
        let e = Evaluation {
            objectives: vec![0.0],
            constraints: vec![1.0, -0.25, -0.75],
        };
        assert_eq!(e.violation(), 1.0);
        assert!(!e.is_feasible());
    }
}
