//! Multi-objective evolutionary optimisation.
//!
//! This crate implements the optimisation machinery the DATE 2009 flow
//! is built on:
//!
//! * [`problem::Problem`] — the trait circuit-sizing tasks implement
//!   (box-bounded variables, minimised objectives, `g(x) ≥ 0`
//!   constraints);
//! * [`nsga2`] — the Non-dominated Sorting Genetic Algorithm II with
//!   constrained-domination tournament selection, simulated binary
//!   crossover and polynomial mutation, exactly the algorithm named by
//!   the paper (§2.1/§3.2);
//! * [`sorting`] — fast non-dominated sorting and crowding distance;
//! * [`hypervolume`] — 2-D/3-D hypervolume indicators for ablation
//!   studies;
//! * [`baseline`] — single-objective weighted-sum GA and pure random
//!   search, the comparison points used in the benches.
//!
//! # Examples
//!
//! Minimising the bi-objective Schaffer problem:
//!
//! ```
//! use moea::nsga2::{Nsga2Config, run_nsga2};
//! use moea::problem::{Evaluation, Problem};
//!
//! struct Schaffer;
//!
//! impl Problem for Schaffer {
//!     fn num_vars(&self) -> usize { 1 }
//!     fn bounds(&self, _i: usize) -> (f64, f64) { (-3.0, 3.0) }
//!     fn num_objectives(&self) -> usize { 2 }
//!     fn evaluate(&self, x: &[f64]) -> Evaluation {
//!         Evaluation::feasible(vec![x[0] * x[0], (x[0] - 2.0) * (x[0] - 2.0)])
//!     }
//! }
//!
//! let cfg = Nsga2Config { population: 40, generations: 30, seed: 1, ..Default::default() };
//! let result = run_nsga2(&Schaffer, &cfg);
//! let front = result.pareto_front();
//! assert!(front.len() > 10);
//! // All Pareto solutions lie in [0, 2].
//! assert!(front.iter().all(|ind| (-0.1..=2.1).contains(&ind.x[0])));
//! ```

pub mod baseline;
pub mod hypervolume;
pub mod nsga2;
pub mod problem;
pub mod sorting;

pub use nsga2::{run_nsga2, run_nsga2_cached, run_nsga2_seeded, Nsga2Config, Nsga2Result};
pub use problem::{Evaluation, Individual, Problem};
