//! Fast non-dominated sorting and crowding distance (Deb et al. 2002).

use crate::problem::Individual;

/// Partitions `pop` (by index) into non-dominated fronts under
/// constrained domination. Front 0 is the Pareto front of the
/// population.
pub fn fast_non_dominated_sort(pop: &[Individual]) -> Vec<Vec<usize>> {
    let n = pop.len();
    let mut dominates: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut dominated_count = vec![0usize; n];
    let mut fronts: Vec<Vec<usize>> = Vec::new();

    for p in 0..n {
        for q in (p + 1)..n {
            if pop[p].constrained_dominates(&pop[q]) {
                dominates[p].push(q);
                dominated_count[q] += 1;
            } else if pop[q].constrained_dominates(&pop[p]) {
                dominates[q].push(p);
                dominated_count[p] += 1;
            }
        }
    }
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &p in &current {
            for &q in &dominates[p] {
                dominated_count[q] -= 1;
                if dominated_count[q] == 0 {
                    next.push(q);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// Crowding distance of each member of one front (indices into `pop`).
/// Boundary solutions get `+∞` so they are always preferred.
pub fn crowding_distance(pop: &[Individual], front: &[usize]) -> Vec<f64> {
    let m = front.len();
    let mut distance = vec![0.0; m];
    if m == 0 {
        return distance;
    }
    if m <= 2 {
        return vec![f64::INFINITY; m];
    }
    let n_obj = pop[front[0]].objectives.len();
    let mut order: Vec<usize> = (0..m).collect();
    for obj in 0..n_obj {
        order.sort_by(|&a, &b| {
            pop[front[a]].objectives[obj]
                .partial_cmp(&pop[front[b]].objectives[obj])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let lo = pop[front[order[0]]].objectives[obj];
        let hi = pop[front[order[m - 1]]].objectives[obj];
        distance[order[0]] = f64::INFINITY;
        distance[order[m - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 || !span.is_finite() {
            continue;
        }
        for k in 1..(m - 1) {
            let prev = pop[front[order[k - 1]]].objectives[obj];
            let next = pop[front[order[k + 1]]].objectives[obj];
            distance[order[k]] += (next - prev) / span;
        }
    }
    distance
}

/// Extracts the non-dominated subset of a set of individuals (their
/// indices), using constrained domination.
pub fn pareto_front_indices(pop: &[Individual]) -> Vec<usize> {
    let fronts = fast_non_dominated_sort(pop);
    fronts.into_iter().next().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    fn ind(objs: &[f64]) -> Individual {
        Individual::new(vec![0.0], Evaluation::feasible(objs.to_vec()))
    }

    #[test]
    fn sorting_separates_fronts() {
        // Front 0: (1,4), (2,2), (4,1). Front 1: (3,4), (5,2). Front 2: (6,6).
        let pop = vec![
            ind(&[1.0, 4.0]),
            ind(&[2.0, 2.0]),
            ind(&[4.0, 1.0]),
            ind(&[3.0, 4.0]),
            ind(&[5.0, 2.0]),
            ind(&[6.0, 6.0]),
        ];
        let fronts = fast_non_dominated_sort(&pop);
        assert_eq!(fronts.len(), 3);
        let mut f0 = fronts[0].clone();
        f0.sort_unstable();
        assert_eq!(f0, vec![0, 1, 2]);
        let mut f1 = fronts[1].clone();
        f1.sort_unstable();
        assert_eq!(f1, vec![3, 4]);
        assert_eq!(fronts[2], vec![5]);
    }

    #[test]
    fn every_individual_lands_in_exactly_one_front() {
        let pop: Vec<Individual> = (0..20)
            .map(|i| {
                let f = i as f64;
                ind(&[f.sin() + 2.0, f.cos() + 2.0])
            })
            .collect();
        let fronts = fast_non_dominated_sort(&pop);
        let mut seen = vec![false; pop.len()];
        for front in &fronts {
            for &i in front {
                assert!(!seen[i], "individual {i} in two fronts");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn front_zero_is_mutually_non_dominating() {
        let pop: Vec<Individual> = (0..50)
            .map(|i| {
                let f = i as f64 / 10.0;
                ind(&[f, 5.0 - f + (i % 3) as f64])
            })
            .collect();
        let fronts = fast_non_dominated_sort(&pop);
        let f0 = &fronts[0];
        for &a in f0 {
            for &b in f0 {
                if a != b {
                    assert!(!pop[a].constrained_dominates(&pop[b]));
                }
            }
        }
    }

    #[test]
    fn crowding_boundaries_are_infinite() {
        let pop = vec![
            ind(&[1.0, 4.0]),
            ind(&[2.0, 3.0]),
            ind(&[3.0, 2.0]),
            ind(&[4.0, 1.0]),
        ];
        let front: Vec<usize> = (0..4).collect();
        let d = crowding_distance(&pop, &front);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1].is_finite() && d[1] > 0.0);
    }

    #[test]
    fn crowding_prefers_isolated_points() {
        // Points at 0, 1, 2, 9, 10 on a line (second objective mirrors).
        let pop = vec![
            ind(&[0.0, 10.0]),
            ind(&[1.0, 9.0]),
            ind(&[2.0, 8.0]),
            ind(&[9.0, 1.0]),
            ind(&[10.0, 0.0]),
        ];
        let front: Vec<usize> = (0..5).collect();
        let d = crowding_distance(&pop, &front);
        // Index 3 sits in a sparse region; index 1 in a dense one.
        assert!(d[3] > d[1]);
    }

    #[test]
    fn tiny_fronts_get_infinite_distance() {
        let pop = vec![ind(&[1.0, 2.0]), ind(&[2.0, 1.0])];
        let d = crowding_distance(&pop, &[0, 1]);
        assert!(d.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn pareto_front_indices_shortcut() {
        let pop = vec![ind(&[1.0, 1.0]), ind(&[2.0, 2.0])];
        assert_eq!(pareto_front_indices(&pop), vec![0]);
    }

    #[test]
    fn constant_objective_yields_no_nan_distances() {
        // Regression: with f_max == f_min on an objective, the span is
        // zero and a naive (next - prev) / span produces NaN, which
        // poisons every tournament comparison downstream. The constant
        // objective must contribute nothing instead.
        let pop = vec![
            ind(&[1.0, 5.0]),
            ind(&[2.0, 5.0]),
            ind(&[3.0, 5.0]),
            ind(&[4.0, 5.0]),
        ];
        let front: Vec<usize> = (0..4).collect();
        let d = crowding_distance(&pop, &front);
        assert!(d.iter().all(|v| !v.is_nan()), "NaN distance: {d:?}");
        // Boundaries on the varying objective stay infinitely preferred;
        // interior points keep their finite spacing-based distance.
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn all_objectives_constant_still_yields_no_nan() {
        // Fully degenerate front: every member identical. Everything is
        // a boundary on every objective → all infinite, never NaN.
        let pop = vec![ind(&[5.0, 5.0]), ind(&[5.0, 5.0]), ind(&[5.0, 5.0])];
        let front: Vec<usize> = (0..3).collect();
        let d = crowding_distance(&pop, &front);
        assert!(d.iter().all(|v| !v.is_nan()), "NaN distance: {d:?}");
    }
}
