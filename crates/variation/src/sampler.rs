//! Applies drawn variation samples to circuits.

use netlist::{Circuit, Device, MosPolarity};
use rand::Rng;

use crate::mismatch::DeviceMismatch;
use crate::process::{GlobalSample, ProcessSpec};

/// Produces a perturbed copy of `circuit`: the global sample shifts every
/// MOSFET's model parameters by polarity, then per-device Pelgrom
/// mismatch is drawn from `rng` and applied on top.
///
/// Only MOSFETs are perturbed — in this workspace's circuits the
/// passives are either supplies/testbench elements or geometry-derived
/// parasitics whose variation is second-order for the paper's
/// experiments (documented in DESIGN.md).
pub fn perturbed_circuit<R: Rng + ?Sized>(
    circuit: &Circuit,
    spec: &ProcessSpec,
    global: &GlobalSample,
    rng: &mut R,
) -> Circuit {
    let mut out = circuit.clone();
    let ids: Vec<_> = out.devices().map(|(id, _)| id).collect();
    for id in ids {
        if let Device::Mos(m) = out.device_mut(id) {
            let (dvto_global, kp_mult) = match m.model.polarity {
                MosPolarity::Nmos => (global.dvto_n, global.kp_mult_n),
                MosPolarity::Pmos => (global.dvto_p, global.kp_mult_p),
            };
            let mm = DeviceMismatch::draw(spec, m.w, m.l, rng);
            m.model.vto += dvto_global + mm.dvto;
            m.model.kp *= kp_mult * mm.beta_mult;
            m.model.lambda_prime *= global.lambda_mult;
        }
    }
    out
}

/// Applies only the global sample (no mismatch) — used to separate the
/// two variation contributions in ablation experiments.
pub fn perturbed_circuit_global_only(circuit: &Circuit, global: &GlobalSample) -> Circuit {
    let mut out = circuit.clone();
    let ids: Vec<_> = out.devices().map(|(id, _)| id).collect();
    for id in ids {
        if let Device::Mos(m) = out.device_mut(id) {
            let (dvto, kp_mult) = match m.model.polarity {
                MosPolarity::Nmos => (global.dvto_n, global.kp_mult_n),
                MosPolarity::Pmos => (global.dvto_p, global.kp_mult_p),
            };
            m.model.vto += dvto;
            m.model.kp *= kp_mult;
            m.model.lambda_prime *= global.lambda_mult;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::topology::{build_ring_vco, VcoSizing};
    use numkit::dist::seeded_rng;

    fn vto_of(c: &Circuit, name: &str) -> f64 {
        match c.device(c.find_device(name).unwrap()) {
            Device::Mos(m) => m.model.vto,
            _ => panic!("not a mosfet"),
        }
    }

    #[test]
    fn global_shift_applies_to_all_same_polarity_devices() {
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.9);
        let global = GlobalSample {
            dvto_n: 0.05,
            dvto_p: -0.02,
            kp_mult_n: 1.1,
            kp_mult_p: 0.9,
            lambda_mult: 1.2,
        };
        let p = perturbed_circuit_global_only(&vco.circuit, &global);
        // NMOS vto rose by exactly 50 mV, PMOS fell by 20 mV.
        assert!((vto_of(&p, "Mn0") - (0.35 + 0.05)).abs() < 1e-12);
        assert!((vto_of(&p, "Mn4") - (0.35 + 0.05)).abs() < 1e-12);
        assert!((vto_of(&p, "Mp0") - (-0.38 - 0.02)).abs() < 1e-12);
        // Original untouched.
        assert!((vto_of(&vco.circuit, "Mn0") - 0.35).abs() < 1e-12);
    }

    #[test]
    fn mismatch_differs_per_device() {
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.9);
        let mut rng = seeded_rng(7);
        let spec = ProcessSpec::default();
        let p = perturbed_circuit(&vco.circuit, &spec, &GlobalSample::nominal(), &mut rng);
        let v0 = vto_of(&p, "Mn0");
        let v1 = vto_of(&p, "Mn1");
        assert_ne!(v0, v1, "mismatch must decorrelate devices");
        // Both within a plausible window (±5σ of Pelgrom for this size).
        let sizing = VcoSizing::nominal();
        let sigma = crate::mismatch::DeviceMismatch::sigma_vto(&spec, sizing.wn, sizing.l_inv);
        assert!((v0 - 0.35).abs() < 5.0 * sigma + 1e-9);
    }

    #[test]
    fn same_seed_reproduces_perturbation() {
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.9);
        let spec = ProcessSpec::default();
        let mut r1 = seeded_rng(9);
        let mut r2 = seeded_rng(9);
        let a = perturbed_circuit(&vco.circuit, &spec, &GlobalSample::nominal(), &mut r1);
        let b = perturbed_circuit(&vco.circuit, &spec, &GlobalSample::nominal(), &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn non_mos_devices_untouched() {
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.9);
        let mut rng = seeded_rng(11);
        let p = perturbed_circuit(
            &vco.circuit,
            &ProcessSpec::default(),
            &GlobalSample::nominal(),
            &mut rng,
        );
        let cap = |c: &Circuit| match c.device(c.find_device("Cl0").unwrap()) {
            Device::Capacitor { value, .. } => *value,
            _ => panic!(),
        };
        assert_eq!(cap(&p), cap(&vco.circuit));
    }
}
