//! The Monte-Carlo engine.
//!
//! Draws N variation samples, produces the perturbed circuit for each,
//! hands them to a user evaluator (typically a `spicesim` measurement)
//! and aggregates per-metric spreads. Evaluation is deterministic per
//! seed regardless of thread count: each sample's RNG is derived from
//! `seed + sample index`.
//!
//! Sampling runs on the supervised [`exec`] pool: workers claim samples
//! from a shared cursor (no static-chunk stragglers), a panicking
//! evaluator costs one sample instead of the whole run, and
//! [`MonteCarlo::run_supervised`] additionally accepts per-task
//! deadlines, cooperative cancellation and retry classification.

use evalcache::EvalCache;
use exec::{AbortReason, ExecPolicy, PoolStats, TaskFailure};
use netlist::Circuit;

use numkit::dist;
use numkit::stats::Summary;

use crate::process::{GlobalSample, ProcessSpec};
use crate::sampler::perturbed_circuit;

/// Monte-Carlo configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Number of samples (the paper uses 100 for characterisation and
    /// 500 for final verification).
    pub samples: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads (1 = serial; results identical either way).
    pub threads: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            samples: 100,
            seed: 0,
            threads: 1,
        }
    }
}

/// Result of a Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct McRun {
    /// Metric vectors of the accepted (successfully evaluated) samples.
    pub metrics: Vec<Vec<f64>>,
    /// Number of accepted samples.
    pub accepted: usize,
    /// Number of samples whose evaluation failed (e.g. a perturbed
    /// circuit that no longer oscillates — itself a yield loss signal).
    pub failed: usize,
    /// Indices of the failing samples, ascending. Sample indices are
    /// stable across thread counts (sample `i` always uses RNG seed
    /// `seed + i`), so failures are attributable and reproducible.
    pub failed_samples: Vec<usize>,
    /// `(sample index, failure)` for every failed sample, ascending —
    /// the full provenance behind [`McRun::failed_samples`], including
    /// panics, timeouts and cancellations.
    pub failures: Vec<(usize, TaskFailure)>,
    /// Scheduling statistics from the supervised pool.
    pub stats: PoolStats,
    /// Set when the run stopped early (cancellation or batch deadline);
    /// the unevaluated samples appear in [`McRun::failures`] as
    /// [`TaskFailure::Cancelled`].
    pub aborted: Option<AbortReason>,
}

impl McRun {
    /// Summary statistics of metric `k` across accepted samples, or
    /// `None` when no sample produced it.
    pub fn summary(&self, k: usize) -> Option<Summary> {
        let column: Vec<f64> = self
            .metrics
            .iter()
            .filter_map(|row| row.get(k).copied())
            .collect();
        Summary::from_samples(&column)
    }

    /// The paper's ∆ columns: relative spread `σ/µ` in percent for
    /// metric `k` (the paper's magnitudes — ∆Ivco ≈ 2.6–2.9 % for a
    /// process with ~2–3 % current sigma — indicate a one-sigma
    /// definition).
    pub fn delta_percent(&self, k: usize) -> Option<f64> {
        self.summary(k).and_then(|s| s.delta_percent(1.0))
    }

    /// Raw column of metric `k`.
    pub fn column(&self, k: usize) -> Vec<f64> {
        self.metrics
            .iter()
            .filter_map(|row| row.get(k).copied())
            .collect()
    }
}

/// Telemetry counter name for a sample failure, by class.
fn failure_class_metric(failure: &TaskFailure) -> &'static str {
    match failure {
        TaskFailure::Panicked { .. } => "mc.failures.panicked",
        TaskFailure::TimedOut { .. } => "mc.failures.timed_out",
        TaskFailure::Cancelled => "mc.failures.cancelled",
        TaskFailure::Failed { class, .. } => match class {
            exec::FaultClass::Transient => "mc.failures.transient",
            exec::FaultClass::Permanent => "mc.failures.permanent",
        },
    }
}

/// The Monte-Carlo engine, parameterised by a process spec.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    spec: ProcessSpec,
}

impl MonteCarlo {
    /// Creates an engine for the given process.
    pub fn new(spec: ProcessSpec) -> Self {
        spec.assert_valid();
        MonteCarlo { spec }
    }

    /// The process spec in use.
    pub fn spec(&self) -> &ProcessSpec {
        &self.spec
    }

    /// Runs `cfg.samples` evaluations of `evaluate(sample_index,
    /// perturbed_circuit)`; the evaluator returns the metric vector or
    /// `None` on failure.
    ///
    /// Sample `i` is always generated from RNG seed `cfg.seed + i`, so
    /// results are bit-identical across thread counts. A panicking
    /// evaluator costs one sample (it lands in
    /// [`McRun::failed_samples`]), never the run.
    pub fn run<F>(&self, circuit: &Circuit, cfg: &McConfig, evaluate: F) -> McRun
    where
        F: Fn(usize, &Circuit) -> Option<Vec<f64>> + Sync,
    {
        self.run_supervised(circuit, cfg, &ExecPolicy::default(), |i, perturbed| {
            evaluate(i, perturbed).ok_or_else(|| TaskFailure::permanent("evaluation failed"))
        })
    }

    /// [`MonteCarlo::run`] under an explicit execution policy: per-task
    /// deadlines (a slow sample becomes a
    /// [`TaskFailure::TimedOut`] entry), cooperative cancellation (the
    /// run stops claiming samples and reports
    /// [`McRun::aborted`]), and retries for failures the evaluator
    /// classifies as transient.
    ///
    /// Worker threads come from `exec.threads` when set (> 0), falling
    /// back to `cfg.threads`. Results stay bit-identical across thread
    /// counts: samples are keyed by index, and sample `i` always draws
    /// from RNG seed `cfg.seed + i`.
    pub fn run_supervised<F>(
        &self,
        circuit: &Circuit,
        cfg: &McConfig,
        exec: &ExecPolicy,
        evaluate: F,
    ) -> McRun
    where
        F: Fn(usize, &Circuit) -> Result<Vec<f64>, TaskFailure> + Sync,
    {
        self.run_cached(circuit, cfg, exec, &[], None, evaluate)
    }

    /// [`MonteCarlo::run_supervised`] with an optional evaluation memo
    /// cache.
    ///
    /// `design` is the design point the caller is analysing; each
    /// sample is memoised under the cache key of `design` salted with
    /// `cfg.seed + i`, so a repeated run of the same design, seed and
    /// sample count (against a cache whose config digest covers the
    /// circuit topology, process spec and testbench) replays metric
    /// vectors without invoking the evaluator. Only successful
    /// evaluations are cached: failures — including wall-clock
    /// artefacts such as timeouts — are re-attempted on every run.
    ///
    /// The cache is probed inside the sample tasks, so accepted-metric
    /// ordering, failure indices and the returned [`McRun`] stay
    /// bit-identical with and without a cache. With `cache = None`
    /// (or an empty cache) this is exactly [`MonteCarlo::run_supervised`].
    pub fn run_cached<F>(
        &self,
        circuit: &Circuit,
        cfg: &McConfig,
        exec: &ExecPolicy,
        design: &[f64],
        cache: Option<&EvalCache<Vec<f64>>>,
        evaluate: F,
    ) -> McRun
    where
        F: Fn(usize, &Circuit) -> Result<Vec<f64>, TaskFailure> + Sync,
    {
        assert!(cfg.samples > 0, "monte carlo needs at least one sample");
        let mut policy = exec.clone();
        if policy.threads == 0 {
            policy.threads = cfg.threads;
        }
        let batch = exec::run_batch(cfg.samples, &policy, |ctx| {
            let i = ctx.index;
            let _sample_span = telemetry::span("sample").attr("index", i);
            let salt = cfg.seed.wrapping_add(i as u64);
            let key = cache.map(|c| c.key_salted(design, salt));
            if let (Some(cache), Some(key)) = (cache, &key) {
                if let Some(metrics) = cache.get(key) {
                    return Ok(metrics);
                }
            }
            let mut rng = dist::seeded_rng(salt);
            let global = GlobalSample::draw(&self.spec, &mut rng);
            let perturbed = perturbed_circuit(circuit, &self.spec, &global, &mut rng);
            let metrics = evaluate(i, &perturbed)?;
            if let (Some(cache), Some(key)) = (cache, key) {
                cache.put(key, &metrics);
            }
            Ok(metrics)
        });

        let metrics: Vec<Vec<f64>> = batch.items.into_iter().flatten().collect();
        let failed_samples: Vec<usize> = batch.failures.iter().map(|&(i, _)| i).collect();
        if telemetry::enabled() {
            telemetry::counter_add("mc.samples", cfg.samples as u64);
            for (_, failure) in &batch.failures {
                telemetry::counter_add(failure_class_metric(failure), 1);
            }
        }
        McRun {
            accepted: metrics.len(),
            metrics,
            failed: failed_samples.len(),
            failed_samples,
            failures: batch.failures,
            stats: batch.stats,
            aborted: batch.aborted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{Device, SourceWaveform};

    fn tiny_circuit() -> Circuit {
        let mut c = Circuit::new("m");
        let n = c.node("n");
        c.add_vsource("V1", n, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_mosfet(
            "M1",
            netlist::Mosfet {
                drain: n,
                gate: n,
                source: Circuit::GROUND,
                w: 10e-6,
                l: 0.12e-6,
                model: netlist::MosModel::nmos_012(),
            },
        );
        c
    }

    /// Evaluator returning the perturbed VTO of M1.
    fn vto_metric(_i: usize, c: &Circuit) -> Option<Vec<f64>> {
        match c.device(c.find_device("M1")?) {
            Device::Mos(m) => Some(vec![m.model.vto]),
            _ => None,
        }
    }

    #[test]
    fn spread_matches_combined_sigma() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let cfg = McConfig {
            samples: 2_000,
            seed: 3,
            threads: 1,
        };
        let run = mc.run(&c, &cfg, vto_metric);
        let s = run.summary(0).unwrap();
        // Combined σ = sqrt(global² + pelgrom²).
        let spec = ProcessSpec::default();
        let pelgrom = spec.a_vt / (10e-6f64 * 0.12e-6).sqrt();
        let expected = (spec.sigma_vto_n.powi(2) + pelgrom.powi(2)).sqrt();
        assert!((s.mean - 0.35).abs() < 1e-3, "mean {}", s.mean);
        assert!(
            (s.std_dev - expected).abs() < 0.1 * expected,
            "std {} vs expected {}",
            s.std_dev,
            expected
        );
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let serial = mc.run(
            &c,
            &McConfig {
                samples: 64,
                seed: 5,
                threads: 1,
            },
            vto_metric,
        );
        let parallel = mc.run(
            &c,
            &McConfig {
                samples: 64,
                seed: 5,
                threads: 4,
            },
            vto_metric,
        );
        assert_eq!(serial.metrics, parallel.metrics);
    }

    #[test]
    fn failed_evaluations_are_counted() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let cfg = McConfig {
            samples: 10,
            seed: 1,
            threads: 1,
        };
        let run = mc.run(
            &c,
            &cfg,
            |i, _| if i % 2 == 0 { Some(vec![1.0]) } else { None },
        );
        assert_eq!(run.accepted, 5);
        assert_eq!(run.failed, 5);
        assert_eq!(run.failed_samples, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn failed_sample_indices_stable_across_threads() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let eval = |i: usize, _: &Circuit| {
            if i.is_multiple_of(3) {
                None
            } else {
                Some(vec![1.0])
            }
        };
        let serial = mc.run(
            &c,
            &McConfig {
                samples: 16,
                seed: 2,
                threads: 1,
            },
            eval,
        );
        let parallel = mc.run(
            &c,
            &McConfig {
                samples: 16,
                seed: 2,
                threads: 4,
            },
            eval,
        );
        assert_eq!(serial.failed_samples, parallel.failed_samples);
        assert_eq!(serial.failed_samples, vec![0, 3, 6, 9, 12, 15]);
    }

    #[test]
    fn delta_percent_is_one_sigma_relative() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let cfg = McConfig {
            samples: 500,
            seed: 7,
            threads: 1,
        };
        let run = mc.run(&c, &cfg, vto_metric);
        let s = run.summary(0).unwrap();
        let d = run.delta_percent(0).unwrap();
        assert!((d - 100.0 * s.std_dev / s.mean).abs() < 1e-9);
    }

    /// The satellite fix this PR exists for: a panicking evaluator must
    /// become a `failed_samples` entry (as the docs promise), not abort
    /// the scope — in the serial path and across worker threads alike.
    #[test]
    fn panicking_evaluator_becomes_failed_sample() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let eval = |i: usize, c: &Circuit| {
            assert!(!i.is_multiple_of(4), "injected evaluator panic");
            vto_metric(i, c)
        };
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let runs = std::panic::catch_unwind(|| {
            let serial = mc.run(
                &c,
                &McConfig {
                    samples: 16,
                    seed: 2,
                    threads: 1,
                },
                eval,
            );
            let parallel = mc.run(
                &c,
                &McConfig {
                    samples: 16,
                    seed: 2,
                    threads: 4,
                },
                eval,
            );
            (serial, parallel)
        });
        std::panic::set_hook(hook);
        let (serial, parallel) = runs.expect("the engine itself must not panic");
        for run in [&serial, &parallel] {
            assert_eq!(run.failed_samples, vec![0, 4, 8, 12]);
            assert_eq!(run.accepted, 12);
            assert_eq!(run.stats.panics, 4);
            assert!(run.aborted.is_none());
            for (_, failure) in &run.failures {
                assert!(
                    matches!(failure, TaskFailure::Panicked { message }
                        if message.contains("injected evaluator panic")),
                    "{failure}"
                );
            }
        }
        assert_eq!(serial.metrics, parallel.metrics);
    }

    #[test]
    fn supervised_deadline_marks_slow_samples_failed() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let cfg = McConfig {
            samples: 6,
            seed: 1,
            threads: 2,
        };
        let policy = ExecPolicy::default().task_deadline(std::time::Duration::from_millis(20));
        let run = mc.run_supervised(&c, &cfg, &policy, |i, c| {
            if i == 3 {
                std::thread::sleep(std::time::Duration::from_millis(60));
            }
            vto_metric(i, c).ok_or_else(|| TaskFailure::permanent("no metric"))
        });
        assert_eq!(run.failed_samples, vec![3]);
        assert_eq!(run.stats.timeouts, 1);
        assert!(matches!(run.failures[0].1, TaskFailure::TimedOut { .. }));
        assert_eq!(run.accepted, 5, "the batch survives the slow sample");
        assert!(run.aborted.is_none());
    }

    #[test]
    fn supervised_cancellation_reports_abort() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let cfg = McConfig {
            samples: 10,
            seed: 1,
            threads: 1,
        };
        // Serial + poll-counted token: exactly 4 samples land.
        let policy = ExecPolicy::default().with_cancel(exec::CancelToken::cancel_after(4));
        let run = mc.run_supervised(&c, &cfg, &policy, |i, c| {
            vto_metric(i, c).ok_or_else(|| TaskFailure::permanent("no metric"))
        });
        assert_eq!(run.aborted, Some(AbortReason::Cancelled));
        assert_eq!(run.accepted, 4);
        assert_eq!(run.failed, 6);
        assert!(run
            .failures
            .iter()
            .all(|(_, f)| matches!(f, TaskFailure::Cancelled)));
    }

    #[test]
    fn supervised_retry_recovers_transient_sample_faults() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let cfg = McConfig {
            samples: 4,
            seed: 1,
            threads: 1,
        };
        let policy =
            ExecPolicy::default().with_retry(exec::RetryPolicy::new(1, std::time::Duration::ZERO));
        // Sample 2 fails transiently exactly once, then succeeds.
        let sample2_attempts = AtomicUsize::new(0);
        let run = mc.run_supervised(&c, &cfg, &policy, |i, c| {
            if i == 2 && sample2_attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                return Err(TaskFailure::transient("solver wobble"));
            }
            vto_metric(i, c).ok_or_else(|| TaskFailure::permanent("no metric"))
        });
        assert_eq!(run.accepted, 4, "the retry recovers sample 2");
        assert!(run.failed_samples.is_empty());
        assert_eq!(run.stats.retries, 1);
        assert_eq!(sample2_attempts.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn cached_run_is_bit_identical_and_warm_run_skips_evaluator() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let cfg = McConfig {
            samples: 32,
            seed: 11,
            threads: 1,
        };
        let design = [10e-6, 0.12e-6];
        let policy = ExecPolicy::default();
        let eval = |i: usize, c: &Circuit| {
            vto_metric(i, c).ok_or_else(|| TaskFailure::permanent("no metric"))
        };

        let uncached = mc.run_supervised(&c, &cfg, &policy, eval);
        let cache = EvalCache::<Vec<f64>>::new(1024, evalcache::KeyQuantiser::exact(), 0xfeed_beef);
        let cold = mc.run_cached(&c, &cfg, &policy, &design, Some(&cache), eval);
        assert_eq!(
            uncached.metrics, cold.metrics,
            "cold cached run must be bit-identical"
        );
        assert_eq!(cache.stats().misses, cfg.samples as u64);

        let calls = AtomicUsize::new(0);
        let warm = mc.run_cached(&c, &cfg, &policy, &design, Some(&cache), |i, c| {
            calls.fetch_add(1, Ordering::SeqCst);
            eval(i, c)
        });
        assert_eq!(
            uncached.metrics, warm.metrics,
            "warm cached run must be bit-identical"
        );
        assert_eq!(
            calls.load(Ordering::SeqCst),
            0,
            "warm run must not evaluate"
        );
        assert_eq!(cache.stats().hits, cfg.samples as u64);
    }

    #[test]
    fn failed_samples_are_not_cached() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let cfg = McConfig {
            samples: 8,
            seed: 3,
            threads: 1,
        };
        let cache = EvalCache::<Vec<f64>>::new(64, evalcache::KeyQuantiser::exact(), 1);
        let policy = ExecPolicy::default();
        let attempts = AtomicUsize::new(0);
        let eval = |i: usize, c: &Circuit| {
            if i % 2 == 1 {
                attempts.fetch_add(1, Ordering::SeqCst);
                return Err(TaskFailure::permanent("odd samples fail"));
            }
            vto_metric(i, c).ok_or_else(|| TaskFailure::permanent("no metric"))
        };
        let first = mc.run_cached(&c, &cfg, &policy, &[1.0], Some(&cache), eval);
        let second = mc.run_cached(&c, &cfg, &policy, &[1.0], Some(&cache), eval);
        assert_eq!(first.failed_samples, vec![1, 3, 5, 7]);
        assert_eq!(second.failed_samples, first.failed_samples);
        // Failures were re-attempted on the second run, not replayed.
        assert_eq!(attempts.load(Ordering::SeqCst), 8);
        assert_eq!(cache.resident(), 4, "only the successes are resident");
    }

    #[test]
    fn missing_metric_summary_is_none() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let cfg = McConfig {
            samples: 4,
            seed: 1,
            threads: 1,
        };
        let run = mc.run(&c, &cfg, vto_metric);
        assert!(run.summary(3).is_none());
    }
}
