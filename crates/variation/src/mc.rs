//! The Monte-Carlo engine.
//!
//! Draws N variation samples, produces the perturbed circuit for each,
//! hands them to a user evaluator (typically a `spicesim` measurement)
//! and aggregates per-metric spreads. Evaluation is deterministic per
//! seed regardless of thread count: each sample's RNG is derived from
//! `seed + sample index`.

use netlist::Circuit;

use numkit::dist;
use numkit::stats::Summary;

use crate::process::{GlobalSample, ProcessSpec};
use crate::sampler::perturbed_circuit;

/// Monte-Carlo configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Number of samples (the paper uses 100 for characterisation and
    /// 500 for final verification).
    pub samples: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads (1 = serial; results identical either way).
    pub threads: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            samples: 100,
            seed: 0,
            threads: 1,
        }
    }
}

/// Result of a Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct McRun {
    /// Metric vectors of the accepted (successfully evaluated) samples.
    pub metrics: Vec<Vec<f64>>,
    /// Number of accepted samples.
    pub accepted: usize,
    /// Number of samples whose evaluation failed (e.g. a perturbed
    /// circuit that no longer oscillates — itself a yield loss signal).
    pub failed: usize,
    /// Indices of the failing samples, ascending. Sample indices are
    /// stable across thread counts (sample `i` always uses RNG seed
    /// `seed + i`), so failures are attributable and reproducible.
    pub failed_samples: Vec<usize>,
}

impl McRun {
    /// Summary statistics of metric `k` across accepted samples, or
    /// `None` when no sample produced it.
    pub fn summary(&self, k: usize) -> Option<Summary> {
        let column: Vec<f64> = self
            .metrics
            .iter()
            .filter_map(|row| row.get(k).copied())
            .collect();
        Summary::from_samples(&column)
    }

    /// The paper's ∆ columns: relative spread `σ/µ` in percent for
    /// metric `k` (the paper's magnitudes — ∆Ivco ≈ 2.6–2.9 % for a
    /// process with ~2–3 % current sigma — indicate a one-sigma
    /// definition).
    pub fn delta_percent(&self, k: usize) -> Option<f64> {
        self.summary(k).and_then(|s| s.delta_percent(1.0))
    }

    /// Raw column of metric `k`.
    pub fn column(&self, k: usize) -> Vec<f64> {
        self.metrics
            .iter()
            .filter_map(|row| row.get(k).copied())
            .collect()
    }
}

/// The Monte-Carlo engine, parameterised by a process spec.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    spec: ProcessSpec,
}

impl MonteCarlo {
    /// Creates an engine for the given process.
    pub fn new(spec: ProcessSpec) -> Self {
        spec.assert_valid();
        MonteCarlo { spec }
    }

    /// The process spec in use.
    pub fn spec(&self) -> &ProcessSpec {
        &self.spec
    }

    /// Runs `cfg.samples` evaluations of `evaluate(sample_index,
    /// perturbed_circuit)`; the evaluator returns the metric vector or
    /// `None` on failure.
    ///
    /// Sample `i` is always generated from RNG seed `cfg.seed + i`, so
    /// results are bit-identical across thread counts.
    pub fn run<F>(&self, circuit: &Circuit, cfg: &McConfig, evaluate: F) -> McRun
    where
        F: Fn(usize, &Circuit) -> Option<Vec<f64>> + Sync,
    {
        assert!(cfg.samples > 0, "monte carlo needs at least one sample");
        let run_one = |i: usize| -> Option<Vec<f64>> {
            let mut rng = dist::seeded_rng(cfg.seed.wrapping_add(i as u64));
            let global = GlobalSample::draw(&self.spec, &mut rng);
            let perturbed = perturbed_circuit(circuit, &self.spec, &global, &mut rng);
            evaluate(i, &perturbed)
        };

        let results: Vec<Option<Vec<f64>>> = if cfg.threads <= 1 {
            (0..cfg.samples).map(run_one).collect()
        } else {
            let mut slots: Vec<Option<Vec<f64>>> = vec![None; cfg.samples];
            let chunk = cfg.samples.div_ceil(cfg.threads);
            std::thread::scope(|scope| {
                for (c, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                    let run_one = &run_one;
                    scope.spawn(move || {
                        for (j, slot) in slot_chunk.iter_mut().enumerate() {
                            *slot = run_one(c * chunk + j);
                        }
                    });
                }
            });
            slots
        };

        let mut metrics = Vec::with_capacity(cfg.samples);
        let mut failed_samples = Vec::new();
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Some(m) => metrics.push(m),
                None => failed_samples.push(i),
            }
        }
        McRun {
            accepted: metrics.len(),
            metrics,
            failed: failed_samples.len(),
            failed_samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{Device, SourceWaveform};

    fn tiny_circuit() -> Circuit {
        let mut c = Circuit::new("m");
        let n = c.node("n");
        c.add_vsource("V1", n, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_mosfet(
            "M1",
            netlist::Mosfet {
                drain: n,
                gate: n,
                source: Circuit::GROUND,
                w: 10e-6,
                l: 0.12e-6,
                model: netlist::MosModel::nmos_012(),
            },
        );
        c
    }

    /// Evaluator returning the perturbed VTO of M1.
    fn vto_metric(_i: usize, c: &Circuit) -> Option<Vec<f64>> {
        match c.device(c.find_device("M1")?) {
            Device::Mos(m) => Some(vec![m.model.vto]),
            _ => None,
        }
    }

    #[test]
    fn spread_matches_combined_sigma() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let cfg = McConfig {
            samples: 2_000,
            seed: 3,
            threads: 1,
        };
        let run = mc.run(&c, &cfg, vto_metric);
        let s = run.summary(0).unwrap();
        // Combined σ = sqrt(global² + pelgrom²).
        let spec = ProcessSpec::default();
        let pelgrom = spec.a_vt / (10e-6f64 * 0.12e-6).sqrt();
        let expected = (spec.sigma_vto_n.powi(2) + pelgrom.powi(2)).sqrt();
        assert!((s.mean - 0.35).abs() < 1e-3, "mean {}", s.mean);
        assert!(
            (s.std_dev - expected).abs() < 0.1 * expected,
            "std {} vs expected {}",
            s.std_dev,
            expected
        );
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let serial = mc.run(
            &c,
            &McConfig {
                samples: 64,
                seed: 5,
                threads: 1,
            },
            vto_metric,
        );
        let parallel = mc.run(
            &c,
            &McConfig {
                samples: 64,
                seed: 5,
                threads: 4,
            },
            vto_metric,
        );
        assert_eq!(serial.metrics, parallel.metrics);
    }

    #[test]
    fn failed_evaluations_are_counted() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let cfg = McConfig {
            samples: 10,
            seed: 1,
            threads: 1,
        };
        let run = mc.run(
            &c,
            &cfg,
            |i, _| if i % 2 == 0 { Some(vec![1.0]) } else { None },
        );
        assert_eq!(run.accepted, 5);
        assert_eq!(run.failed, 5);
        assert_eq!(run.failed_samples, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn failed_sample_indices_stable_across_threads() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let eval = |i: usize, _: &Circuit| {
            if i.is_multiple_of(3) {
                None
            } else {
                Some(vec![1.0])
            }
        };
        let serial = mc.run(
            &c,
            &McConfig {
                samples: 16,
                seed: 2,
                threads: 1,
            },
            eval,
        );
        let parallel = mc.run(
            &c,
            &McConfig {
                samples: 16,
                seed: 2,
                threads: 4,
            },
            eval,
        );
        assert_eq!(serial.failed_samples, parallel.failed_samples);
        assert_eq!(serial.failed_samples, vec![0, 3, 6, 9, 12, 15]);
    }

    #[test]
    fn delta_percent_is_one_sigma_relative() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let cfg = McConfig {
            samples: 500,
            seed: 7,
            threads: 1,
        };
        let run = mc.run(&c, &cfg, vto_metric);
        let s = run.summary(0).unwrap();
        let d = run.delta_percent(0).unwrap();
        assert!((d - 100.0 * s.std_dev / s.mean).abs() < 1e-9);
    }

    #[test]
    fn missing_metric_summary_is_none() {
        let c = tiny_circuit();
        let mc = MonteCarlo::new(ProcessSpec::default());
        let cfg = McConfig {
            samples: 4,
            seed: 1,
            threads: 1,
        };
        let run = mc.run(&c, &cfg, vto_metric);
        assert!(run.summary(3).is_none());
    }
}
