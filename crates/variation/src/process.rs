//! Global (die-to-die) process variation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use numkit::dist;

/// Standard deviations of the global process parameters, per polarity.
///
/// Values follow published 0.13 µm-class statistical corners: ~10 mV of
/// global VTO spread, a few percent on mobility (KP) and channel-length
/// modulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessSpec {
    /// σ of the global NMOS threshold shift (V).
    pub sigma_vto_n: f64,
    /// σ of the global PMOS threshold shift (V).
    pub sigma_vto_p: f64,
    /// Relative σ of the KP multiplier (dimensionless).
    pub sigma_kp_rel: f64,
    /// Relative σ of the λ multiplier (dimensionless).
    pub sigma_lambda_rel: f64,
    /// Pelgrom mismatch coefficient A_VT (V·m): σ(∆VTO) = A_VT/√(WL).
    pub a_vt: f64,
    /// Pelgrom current-factor coefficient A_β (m): σ(∆β)/β = A_β/√(WL).
    pub a_beta: f64,
}

impl Default for ProcessSpec {
    fn default() -> Self {
        ProcessSpec {
            sigma_vto_n: 6e-3,
            sigma_vto_p: 7e-3,
            sigma_kp_rel: 0.02,
            sigma_lambda_rel: 0.05,
            // A_VT = 3.5 mV·µm expressed in V·m.
            a_vt: 3.5e-9,
            // A_β = 1 %·µm expressed in m.
            a_beta: 1.0e-8,
        }
    }
}

impl ProcessSpec {
    /// Validates physical plausibility.
    ///
    /// # Panics
    ///
    /// Panics if any σ is negative or the relative σ exceed 0.5 (such a
    /// process would be broken, and the truncated sampling below would
    /// distort badly).
    pub fn assert_valid(&self) {
        assert!(
            self.sigma_vto_n >= 0.0
                && self.sigma_vto_p >= 0.0
                && self.sigma_kp_rel >= 0.0
                && self.sigma_lambda_rel >= 0.0
                && self.a_vt >= 0.0
                && self.a_beta >= 0.0,
            "process sigmas must be non-negative"
        );
        assert!(
            self.sigma_kp_rel < 0.5 && self.sigma_lambda_rel < 0.5,
            "relative process sigmas above 50 % are non-physical"
        );
    }
}

/// One drawn global process sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlobalSample {
    /// Additive NMOS threshold shift (V).
    pub dvto_n: f64,
    /// Additive PMOS threshold shift (V) — note PMOS VTO is negative, so
    /// a positive shift moves it towards zero.
    pub dvto_p: f64,
    /// Multiplier on NMOS KP.
    pub kp_mult_n: f64,
    /// Multiplier on PMOS KP.
    pub kp_mult_p: f64,
    /// Multiplier on λ′ (both polarities).
    pub lambda_mult: f64,
}

impl GlobalSample {
    /// The nominal (no variation) sample.
    pub fn nominal() -> Self {
        GlobalSample {
            dvto_n: 0.0,
            dvto_p: 0.0,
            kp_mult_n: 1.0,
            kp_mult_p: 1.0,
            lambda_mult: 1.0,
        }
    }

    /// Draws a global sample. Multiplicative parameters are truncated at
    /// ±4σ so they stay positive.
    pub fn draw<R: Rng + ?Sized>(spec: &ProcessSpec, rng: &mut R) -> Self {
        spec.assert_valid();
        GlobalSample {
            dvto_n: dist::normal(rng, 0.0, spec.sigma_vto_n),
            dvto_p: dist::normal(rng, 0.0, spec.sigma_vto_p),
            kp_mult_n: dist::truncated_normal(rng, 1.0, spec.sigma_kp_rel, 4.0),
            kp_mult_p: dist::truncated_normal(rng, 1.0, spec.sigma_kp_rel, 4.0),
            lambda_mult: dist::truncated_normal(rng, 1.0, spec.sigma_lambda_rel, 4.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numkit::dist::seeded_rng;

    #[test]
    fn nominal_is_identity() {
        let s = GlobalSample::nominal();
        assert_eq!(s.dvto_n, 0.0);
        assert_eq!(s.kp_mult_n, 1.0);
        assert_eq!(s.lambda_mult, 1.0);
    }

    #[test]
    fn draw_statistics_match_spec() {
        let spec = ProcessSpec::default();
        let mut rng = seeded_rng(1);
        let n = 5_000;
        let samples: Vec<GlobalSample> = (0..n)
            .map(|_| GlobalSample::draw(&spec, &mut rng))
            .collect();
        let mean_dvto: f64 = samples.iter().map(|s| s.dvto_n).sum::<f64>() / n as f64;
        let var_dvto: f64 = samples
            .iter()
            .map(|s| (s.dvto_n - mean_dvto).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!(mean_dvto.abs() < 1e-3);
        assert!((var_dvto.sqrt() - spec.sigma_vto_n).abs() < 0.1 * spec.sigma_vto_n);
        // Multipliers stay positive.
        assert!(samples.iter().all(|s| s.kp_mult_n > 0.0));
    }

    #[test]
    fn zero_spec_draws_nominal() {
        let spec = ProcessSpec {
            sigma_vto_n: 0.0,
            sigma_vto_p: 0.0,
            sigma_kp_rel: 0.0,
            sigma_lambda_rel: 0.0,
            a_vt: 0.0,
            a_beta: 0.0,
        };
        let mut rng = seeded_rng(2);
        let s = GlobalSample::draw(&spec, &mut rng);
        assert_eq!(s.dvto_n, 0.0);
        assert_eq!(s.kp_mult_n, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        let spec = ProcessSpec {
            sigma_vto_n: -1.0,
            ..Default::default()
        };
        spec.assert_valid();
    }
}
