//! Statistical process variation, mismatch modelling and Monte Carlo.
//!
//! This crate is the workspace's substitute for foundry statistical
//! models (the paper used proprietary "foundry variation and mismatch
//! models" with SpectreRF):
//!
//! * [`process`] — **global** (die-to-die) parameter variation: VTO
//!   shift, KP multiplier and λ multiplier drawn per Monte-Carlo sample
//!   and applied to every device of a polarity;
//! * [`mismatch`] — **local** (device-to-device) variation following
//!   Pelgrom's law, `σ(∆VTO) = A_VT/√(W·L)`, applied independently per
//!   transistor;
//! * [`sampler`] — applies one drawn sample to a [`netlist::Circuit`],
//!   producing the perturbed circuit to simulate;
//! * [`mc`] — the Monte-Carlo engine: N samples, parallel evaluation,
//!   per-metric [`numkit::stats::Summary`] spreads;
//! * [`yields`] — specification windows and yield estimation with
//!   Wilson confidence intervals.
//!
//! # Examples
//!
//! Estimating the spread of a (synthetic) metric:
//!
//! ```
//! use variation::mc::{MonteCarlo, McConfig};
//! use variation::process::ProcessSpec;
//! use netlist::{Circuit, SourceWaveform};
//!
//! let mut c = Circuit::new("r");
//! let n = c.node("n");
//! c.add_vsource("V1", n, Circuit::GROUND, SourceWaveform::Dc(1.0));
//! c.add_resistor("R1", n, Circuit::GROUND, 1.0e3);
//!
//! let mc = MonteCarlo::new(ProcessSpec::default());
//! let cfg = McConfig { samples: 16, seed: 1, threads: 1 };
//! let run = mc.run(&c, &cfg, |_sample, _circuit| {
//!     // A real evaluator would simulate the perturbed circuit.
//!     Some(vec![1.0])
//! });
//! assert_eq!(run.accepted, 16);
//! ```

pub mod mc;
pub mod mismatch;
pub mod process;
pub mod sampler;
pub mod yields;

pub use mc::{McConfig, McRun, MonteCarlo};
pub use process::ProcessSpec;
pub use yields::{Spec, SpecSet, YieldEstimate};
