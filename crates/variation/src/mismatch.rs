//! Local (device-to-device) mismatch following Pelgrom's law.

use rand::Rng;

use numkit::dist;

use crate::process::ProcessSpec;

/// Mismatch deviations drawn for one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceMismatch {
    /// Additive threshold deviation (V).
    pub dvto: f64,
    /// Multiplicative current-factor deviation (applied to KP).
    pub beta_mult: f64,
}

impl DeviceMismatch {
    /// No mismatch.
    pub fn nominal() -> Self {
        DeviceMismatch {
            dvto: 0.0,
            beta_mult: 1.0,
        }
    }

    /// Draws mismatch for a device of the given geometry (metres).
    ///
    /// Pelgrom: `σ(∆VTO) = A_VT / √(W·L)` and
    /// `σ(∆β)/β = A_β / √(W·L)` — larger devices match better.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is non-positive.
    pub fn draw<R: Rng + ?Sized>(spec: &ProcessSpec, w: f64, l: f64, rng: &mut R) -> Self {
        assert!(w > 0.0 && l > 0.0, "device geometry must be positive");
        let area_sqrt = (w * l).sqrt();
        let sigma_vto = spec.a_vt / area_sqrt;
        let sigma_beta = spec.a_beta / area_sqrt;
        DeviceMismatch {
            dvto: dist::normal(rng, 0.0, sigma_vto),
            beta_mult: dist::truncated_normal(rng, 1.0, sigma_beta, 4.0).max(1e-3),
        }
    }

    /// The σ(∆VTO) Pelgrom predicts for a geometry, exposed for tests
    /// and documentation tables.
    pub fn sigma_vto(spec: &ProcessSpec, w: f64, l: f64) -> f64 {
        spec.a_vt / (w * l).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numkit::dist::seeded_rng;

    #[test]
    fn bigger_devices_match_better() {
        let spec = ProcessSpec::default();
        let small = DeviceMismatch::sigma_vto(&spec, 1e-6, 0.12e-6);
        let large = DeviceMismatch::sigma_vto(&spec, 100e-6, 1e-6);
        assert!(large < small / 10.0);
    }

    #[test]
    fn pelgrom_magnitude_at_unit_area() {
        // A 1 µm × 1 µm device with A_VT = 3.5 mV·µm → σ = 3.5 mV.
        let spec = ProcessSpec::default();
        let sigma = DeviceMismatch::sigma_vto(&spec, 1e-6, 1e-6);
        assert!((sigma - 3.5e-3).abs() < 1e-6);
    }

    #[test]
    fn drawn_mismatch_statistics() {
        let spec = ProcessSpec::default();
        let mut rng = seeded_rng(3);
        let (w, l) = (10e-6, 0.12e-6);
        let expected = DeviceMismatch::sigma_vto(&spec, w, l);
        let n = 5_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| DeviceMismatch::draw(&spec, w, l, &mut rng).dvto)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = (samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((std - expected).abs() < 0.05 * expected);
    }

    #[test]
    fn beta_multiplier_stays_positive() {
        let spec = ProcessSpec::default();
        let mut rng = seeded_rng(4);
        for _ in 0..2_000 {
            let m = DeviceMismatch::draw(&spec, 1e-6, 0.12e-6, &mut rng);
            assert!(m.beta_mult > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_geometry_panics() {
        let spec = ProcessSpec::default();
        let mut rng = seeded_rng(5);
        let _ = DeviceMismatch::draw(&spec, 0.0, 1e-6, &mut rng);
    }
}
