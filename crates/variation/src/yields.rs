//! Specification windows and yield estimation.

use serde::{Deserialize, Serialize};

use numkit::stats::wilson_interval;

/// One performance specification: an optional lower and upper bound on a
/// named metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spec {
    /// Metric name (documentation only).
    pub name: String,
    /// Index of the metric in the Monte-Carlo metric vector.
    pub metric: usize,
    /// Lower bound, if any.
    pub min: Option<f64>,
    /// Upper bound, if any.
    pub max: Option<f64>,
}

impl Spec {
    /// `metric ≥ min` specification.
    pub fn at_least(name: &str, metric: usize, min: f64) -> Self {
        Spec {
            name: name.to_string(),
            metric,
            min: Some(min),
            max: None,
        }
    }

    /// `metric ≤ max` specification.
    pub fn at_most(name: &str, metric: usize, max: f64) -> Self {
        Spec {
            name: name.to_string(),
            metric,
            min: None,
            max: Some(max),
        }
    }

    /// `min ≤ metric ≤ max` specification.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn window(name: &str, metric: usize, min: f64, max: f64) -> Self {
        assert!(min <= max, "spec window inverted");
        Spec {
            name: name.to_string(),
            metric,
            min: Some(min),
            max: Some(max),
        }
    }

    /// Whether a metric vector passes this spec; metrics the vector does
    /// not carry fail (missing data is never a pass).
    pub fn passes(&self, metrics: &[f64]) -> bool {
        let Some(&v) = metrics.get(self.metric) else {
            return false;
        };
        if !v.is_finite() {
            return false;
        }
        if let Some(min) = self.min {
            if v < min {
                return false;
            }
        }
        if let Some(max) = self.max {
            if v > max {
                return false;
            }
        }
        true
    }
}

/// A set of specifications, all of which must pass.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SpecSet {
    /// The specifications.
    pub specs: Vec<Spec>,
}

impl SpecSet {
    /// Creates an empty set (everything passes).
    pub fn new() -> Self {
        SpecSet::default()
    }

    /// Adds a spec, builder style.
    #[must_use]
    pub fn with(mut self, spec: Spec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Whether all specs pass for one sample's metrics.
    pub fn passes(&self, metrics: &[f64]) -> bool {
        self.specs.iter().all(|s| s.passes(metrics))
    }

    /// Estimates yield over a Monte-Carlo run's metric rows. Samples
    /// that failed evaluation entirely should be appended as empty rows
    /// by the caller if they are to count as failures.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn yield_estimate(&self, rows: &[Vec<f64>]) -> YieldEstimate {
        assert!(!rows.is_empty(), "yield needs at least one sample");
        let passed = rows.iter().filter(|r| self.passes(r)).count();
        let (lo, hi) = wilson_interval(passed, rows.len(), 1.96)
            .expect("rows is non-empty and passed <= rows.len() by construction");
        YieldEstimate {
            passed,
            total: rows.len(),
            value: passed as f64 / rows.len() as f64,
            ci_low: lo,
            ci_high: hi,
        }
    }
}

/// A yield estimate with its 95 % Wilson confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YieldEstimate {
    /// Samples passing all specs.
    pub passed: usize,
    /// Total samples.
    pub total: usize,
    /// Point estimate (fraction).
    pub value: f64,
    /// 95 % confidence lower bound.
    pub ci_low: f64,
    /// 95 % confidence upper bound.
    pub ci_high: f64,
}

impl std::fmt::Display for YieldEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1}% ({}/{}, 95% CI [{:.1}%, {:.1}%])",
            100.0 * self.value,
            self.passed,
            self.total,
            100.0 * self.ci_low,
            100.0 * self.ci_high
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_bounds() {
        let s = Spec::window("freq", 0, 1.0, 2.0);
        assert!(s.passes(&[1.5]));
        assert!(s.passes(&[1.0]));
        assert!(s.passes(&[2.0]));
        assert!(!s.passes(&[0.9]));
        assert!(!s.passes(&[2.1]));
        assert!(!s.passes(&[]));
        assert!(!s.passes(&[f64::NAN]));
    }

    #[test]
    fn one_sided_specs() {
        assert!(Spec::at_least("a", 0, 1.0).passes(&[5.0]));
        assert!(!Spec::at_least("a", 0, 1.0).passes(&[0.5]));
        assert!(Spec::at_most("b", 0, 1.0).passes(&[0.5]));
        assert!(!Spec::at_most("b", 0, 1.0).passes(&[1.5]));
    }

    #[test]
    fn spec_set_conjunction() {
        let set = SpecSet::new()
            .with(Spec::at_least("x", 0, 1.0))
            .with(Spec::at_most("y", 1, 10.0));
        assert!(set.passes(&[2.0, 5.0]));
        assert!(!set.passes(&[0.0, 5.0]));
        assert!(!set.passes(&[2.0, 50.0]));
    }

    #[test]
    fn yield_counts_and_ci() {
        let set = SpecSet::new().with(Spec::at_most("v", 0, 1.0));
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![if i < 90 { 0.5 } else { 2.0 }])
            .collect();
        let y = set.yield_estimate(&rows);
        assert_eq!(y.passed, 90);
        assert!((y.value - 0.9).abs() < 1e-12);
        assert!(y.ci_low < 0.9 && y.ci_high > 0.9);
        assert!(y.ci_low > 0.80);
    }

    #[test]
    fn hundred_percent_yield_has_tight_ci() {
        let set = SpecSet::new().with(Spec::at_most("v", 0, 1.0));
        let rows = vec![vec![0.5]; 500];
        let y = set.yield_estimate(&rows);
        assert_eq!(y.value, 1.0);
        assert!(y.ci_low > 0.99, "500 passing samples → CI above 99 %");
    }

    #[test]
    fn empty_spec_set_passes_everything() {
        let set = SpecSet::new();
        let y = set.yield_estimate(&[vec![1.0], vec![2.0]]);
        assert_eq!(y.value, 1.0);
    }

    #[test]
    fn display_formats_percentages() {
        let set = SpecSet::new().with(Spec::at_most("v", 0, 1.0));
        let y = set.yield_estimate(&[vec![0.5], vec![5.0]]);
        let s = y.to_string();
        assert!(s.contains("50.0%"), "{s}");
    }
}
