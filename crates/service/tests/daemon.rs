//! Daemon behaviour: submission, execution, backpressure, recovery,
//! and in-process interrupt-resume bit-identity.

use std::fs;
use std::path::PathBuf;

use service::{
    AdmissionConfig, ChaosPolicy, Daemon, DaemonConfig, JobPhase, JobSpec, RejectReason, Submission,
};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svc-daemon-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn accept(daemon: &Daemon, spec: &JobSpec) -> u64 {
    match daemon.submit(spec).unwrap() {
        Submission::Accepted(id) => id,
        other => panic!("unexpected submission outcome: {other:?}"),
    }
}

#[test]
fn nano_job_completes_and_persists_semantic_report() {
    let dir = scratch("complete");
    let daemon = Daemon::open(DaemonConfig::new(&dir)).unwrap();
    let id = accept(&daemon, &JobSpec::nano("acme"));
    assert_eq!(daemon.run_until_idle(), 1);

    let status = daemon.status();
    assert_eq!(status.completed, 1);
    assert_eq!(status.failed, 0);
    let row = &status.jobs[0];
    let JobPhase::Completed { report_digest } = row.phase else {
        panic!("expected completion, got {:?}", row.phase);
    };
    assert_ne!(report_digest, 0);

    let semantic = dir
        .join("jobs")
        .join(id.to_string())
        .join("report_semantic.json");
    let text = fs::read_to_string(&semantic).unwrap();
    assert!(text.contains("\"verification\""));
    assert!(
        !text.contains("\"events\""),
        "provenance must not leak into the semantic projection"
    );
    daemon.write_status().unwrap();
    assert!(dir.join("status.json").exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn backpressure_rejects_with_structured_retry_after() {
    let dir = scratch("backpressure");
    let mut cfg = DaemonConfig::new(&dir);
    cfg.admission = AdmissionConfig {
        max_open: 2,
        max_open_per_tenant: 2,
        retry_after_ms: 750,
        ..AdmissionConfig::default()
    };
    let daemon = Daemon::open(cfg).unwrap();
    accept(&daemon, &JobSpec::nano("a"));
    accept(&daemon, &JobSpec::nano("b"));
    let Submission::Rejected(rej) = daemon.submit(&JobSpec::nano("c")).unwrap() else {
        panic!("third job must be rejected");
    };
    assert_eq!(rej.reason, RejectReason::QueueFull);
    assert_eq!(rej.retry_after_ms, 750);
    assert_eq!(rej.open_jobs, 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn tenant_quota_rejects_only_the_noisy_tenant() {
    let dir = scratch("quota");
    let mut cfg = DaemonConfig::new(&dir);
    cfg.admission.max_open_per_tenant = 1;
    let daemon = Daemon::open(cfg).unwrap();
    accept(&daemon, &JobSpec::nano("noisy"));
    let Submission::Rejected(rej) = daemon.submit(&JobSpec::nano("noisy")).unwrap() else {
        panic!("second job from the same tenant must be rejected");
    };
    assert_eq!(rej.reason, RejectReason::TenantQuota);
    // A different tenant still gets in.
    accept(&daemon, &JobSpec::nano("quiet"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_requeues_unfinished_jobs() {
    let dir = scratch("recover");
    {
        let daemon = Daemon::open(DaemonConfig::new(&dir)).unwrap();
        accept(&daemon, &JobSpec::nano("a"));
        accept(&daemon, &JobSpec::nano("b").with_seed_offset(1));
        // Daemon "dies" with both jobs queued.
    }
    let daemon = Daemon::open(DaemonConfig::new(&dir)).unwrap();
    assert_eq!(daemon.recovery().resumed_jobs, 2);
    assert_eq!(daemon.recovery().replayed_records, 2);
    let status = daemon.status();
    assert_eq!(status.queued, 2);
    assert_eq!(status.completed, 0);
    // The replayed ledger carries the id watermark: a post-recovery
    // submission continues the sequence instead of reusing a live id.
    assert_eq!(accept(&daemon, &JobSpec::nano("c")), 3);
    // Executing recovered jobs to completion is covered by the kill -9
    // e2e (kill_restart.rs); re-running two flows here would only
    // re-prove that at tier-1 wall-clock cost.
    let _ = fs::remove_dir_all(&dir);
}

/// A soak-shaped policy whose first two attempts of job 1 are
/// guaranteed to crash *early* (within 100 task polls — well inside a
/// nano flow, whose system stage alone polls ~100 times). The rolls
/// are pure functions of the seed, so the search is instant and the
/// result deterministic. Panics and solver faults are disabled: this
/// policy isolates the crash-resume path, and with no job-keyed solver
/// injector the chaos-free daemon is directly comparable.
fn early_crash_policy() -> ChaosPolicy {
    for seed in 0..10_000 {
        let p = ChaosPolicy {
            crash_permille: 1000,
            panic_permille: 0,
            sim_fault_permille: 0,
            corrupt_checkpoint_permille: 500,
            max_faults_per_job: 2,
            ..ChaosPolicy::soak(seed)
        };
        let early = |a| matches!(p.crash_after_polls(1, a), Some(polls) if polls <= 100);
        if early(0) && early(1) {
            return p;
        }
    }
    unreachable!("no early-crash seed in range");
}

/// The in-process half of the headline guarantee: a job whose first
/// two attempts are crashed mid-stage (cancel token fired by chaos)
/// resumes and produces byte-identical semantic output to a
/// never-interrupted run of the same spec.
#[test]
fn interrupted_and_resumed_job_is_bit_identical_to_clean_run() {
    let spec = JobSpec::nano("ident");

    let clean_dir = scratch("ident-clean");
    let clean = Daemon::open(DaemonConfig::new(&clean_dir)).unwrap();
    let clean_id = accept(&clean, &spec);
    clean.run_until_idle();

    let chaos_dir = scratch("ident-chaos");
    let mut cfg = DaemonConfig::new(&chaos_dir);
    cfg.chaos = Some(early_crash_policy());
    let chaotic = Daemon::open(cfg).unwrap();
    let chaos_id = accept(&chaotic, &spec);
    chaotic.run_until_idle();

    let status = chaotic.status();
    assert_eq!(status.completed, 1, "chaos job must still complete");
    assert!(
        status.chaos_faults >= 2,
        "both early crashes were actually injected (faults={})",
        status.chaos_faults
    );
    assert!(
        status.jobs[0].attempts >= 3,
        "job retried through the interruptions (attempts={})",
        status.jobs[0].attempts
    );

    let read = |dir: &PathBuf, id: u64| {
        fs::read_to_string(
            dir.join("jobs")
                .join(id.to_string())
                .join("report_semantic.json"),
        )
        .unwrap()
    };
    assert_eq!(
        read(&clean_dir, clean_id),
        read(&chaos_dir, chaos_id),
        "killed-and-resumed report diverged from the clean run"
    );
    let _ = fs::remove_dir_all(&clean_dir);
    let _ = fs::remove_dir_all(&chaos_dir);
}
