//! Property tests for the wire codec: frames round-trip for arbitrary
//! payloads, every single-byte corruption is *detected* (never
//! mis-decoded), truncation at every split point is a torn frame, and
//! the declared length alone gates oversized frames. The pure
//! [`decode_frame`] half is driven here; socket-level behaviour
//! (deadlines, slow-loris) is covered in `net_server.rs`.

use proptest::prelude::*;

use service::net::proto::{from_wire, to_wire};
use service::net::{
    decode_frame, encode_frame, FrameError, Request, DEFAULT_MAX_FRAME, HEADER_LEN,
};
use service::JobSpec;

fn bytes_of(words: &[u32]) -> Vec<u8> {
    words.iter().map(|w| (*w & 0xff) as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary binary payloads (including NUL bytes, newlines, and
    /// bytes that look like header hex) survive encode → decode intact
    /// and consume exactly the encoded length.
    #[test]
    fn frame_round_trips_arbitrary_payloads(
        words in prop::collection::vec(0u32..256, 0..600),
    ) {
        let payload = bytes_of(&words);
        let frame = encode_frame(&payload);
        prop_assert_eq!(frame.len(), HEADER_LEN + payload.len() + 1);
        let (back, used) = decode_frame(&frame, DEFAULT_MAX_FRAME).unwrap();
        prop_assert_eq!(back, payload);
        prop_assert_eq!(used, frame.len());
    }

    /// Flipping any single bit anywhere in the frame is detected: the
    /// decoder errors rather than silently returning a different
    /// payload. (Which error depends on where the flip landed — header
    /// bytes give `BadHeader`/`TooLarge`/`Torn`, payload bytes give
    /// `CrcMismatch`, the terminator gives `MissingTerminator`.)
    #[test]
    fn any_single_bit_flip_is_detected(
        words in prop::collection::vec(0u32..256, 1..120),
        pos_seed in 0u32..10_000,
        bit in 0u32..8,
    ) {
        let payload = bytes_of(&words);
        let mut frame = encode_frame(&payload);
        let pos = (pos_seed as usize) % frame.len();
        frame[pos] ^= 1 << bit;
        if let Ok((back, _)) = decode_frame(&frame, DEFAULT_MAX_FRAME) {
            // The flip must have been a no-op decode-wise only if it
            // reconstructed the identical frame (impossible for a
            // genuine flip) — reaching Ok with the same payload
            // means the length/CRC hex was case-flipped in a way
            // that still parses to the same values.
            prop_assert_eq!(back, payload);
        }
    }

    /// Truncating at every possible split point yields `Torn` (or
    /// `Closed` for the empty prefix) — never a successful decode.
    #[test]
    fn every_truncation_is_torn_or_closed(
        words in prop::collection::vec(0u32..256, 0..80),
        cut_seed in 0u32..10_000,
    ) {
        let payload = bytes_of(&words);
        let frame = encode_frame(&payload);
        let cut = (cut_seed as usize) % frame.len(); // strictly short
        match decode_frame(&frame[..cut], DEFAULT_MAX_FRAME) {
            Err(FrameError::Closed) => prop_assert_eq!(cut, 0),
            Err(FrameError::Torn { .. }) => {}
            other => {
                return Err(TestCaseError::fail(format!(
                    "cut at {cut}/{} decoded as {other:?}", frame.len()
                )));
            }
        }
    }

    /// The max-frame gate triggers from the declared length alone: a
    /// payload one byte over the limit is `TooLarge`, at the limit it
    /// decodes.
    #[test]
    fn max_frame_is_a_sharp_edge(limit in 1usize..512) {
        let at = encode_frame(&vec![0xa5u8; limit]);
        prop_assert!(decode_frame(&at, limit).is_ok());
        let over = encode_frame(&vec![0xa5u8; limit + 1]);
        prop_assert_eq!(
            decode_frame(&over, limit),
            Err(FrameError::TooLarge { len: limit + 1, max: limit })
        );
    }

    /// Submit requests round-trip through JSON + framing for arbitrary
    /// keys and seed offsets — the full client→server encode path.
    #[test]
    fn submit_survives_the_full_wire_path(
        key_words in prop::collection::vec(0u32..26, 0..24),
        seed_offset in 0u64..1_000_000,
    ) {
        let key: String = key_words
            .iter()
            .map(|w| (b'a' + (*w & 0xff) as u8) as char)
            .collect();
        let msg = Request::Submit {
            key,
            spec: JobSpec::nano("prop").with_seed_offset(seed_offset),
        };
        let frame = encode_frame(&to_wire(&msg));
        let (payload, _) = decode_frame(&frame, DEFAULT_MAX_FRAME).unwrap();
        let back: Request = from_wire(&payload).unwrap();
        prop_assert_eq!(back, msg);
    }
}

/// Back-to-back frames on one buffer decode in sequence using the
/// consumed-byte count — the stream framing invariant the server's
/// read loop relies on.
#[test]
fn consecutive_frames_decode_in_sequence() {
    let payloads: Vec<&[u8]> = vec![b"first", b"", b"third frame with spaces"];
    let mut stream = Vec::new();
    for p in &payloads {
        stream.extend_from_slice(&encode_frame(p));
    }
    let mut at = 0;
    for expect in &payloads {
        let (payload, used) = decode_frame(&stream[at..], DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(&payload, expect);
        at += used;
    }
    assert_eq!(at, stream.len());
    assert_eq!(
        decode_frame(&stream[at..], DEFAULT_MAX_FRAME),
        Err(FrameError::Closed)
    );
}
