//! The wire-level chaos soak: keyed submissions routed through the
//! [`ChaosProxy`], which tears frames, drops connections, corrupts
//! bytes, stalls, and goes half-open — on the server→client leg only,
//! so an ACK can be eaten but a submission can never be forged (the
//! proxy cannot mint a valid CRC).
//!
//! Invariants, mirroring the job-level soak in `chaos_soak.rs`:
//!
//! 1. **No duplicate jobs** — every submission is keyed; however many
//!    retries the chaos forces, the ledger holds exactly one job per
//!    key.
//! 2. **No lost acknowledged job** — every id a client received lives
//!    in the ledger and (when run) reaches a terminal state.
//! 3. **Termination** — the proxy's consecutive-fault cap plus the
//!    client retry budget guarantee every submission eventually lands;
//!    the test finishing is the proof.
//! 4. **WAL accountability** — the ledger replayed from disk agrees
//!    with what the clients were told.
//!
//! The tier-1 tests keep the fleet small (one flow pair); the full
//! fleet with digest assertions is `#[ignore]`d for the CI chaos job.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use service::net::client::{self, ClientConfig};
use service::net::{ChaosProxy, NetConfig, NetServer, MAX_CONSECUTIVE_FAULTS};
use service::{ChaosPolicy, Daemon, DaemonConfig, JobPhase, JobSpec, Wal};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svc-netchaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Wire-only chaos: the proxy draws from the soak schedule's wire
/// channels; the daemon itself runs fault-free so the two chaos
/// surfaces stay independently attributable.
fn wire_policy(seed: u64) -> ChaosPolicy {
    ChaosPolicy::soak(seed)
}

fn soak_client() -> ClientConfig {
    ClientConfig {
        // Short deadlines keep half-open faults cheap; the server
        // answers in milliseconds when a connection gets through.
        io_timeout_ms: 750,
        // The proxy forces a clean connection after
        // MAX_CONSECUTIVE_FAULTS faulted ones, so this budget always
        // reaches a clean attempt with room to spare.
        retries: (MAX_CONSECUTIVE_FAULTS as usize) * 2 + 2,
        max_retry_after_ms: 100,
        ..ClientConfig::default()
    }
}

/// Tier-1, no flows run: a volley of keyed submissions through the
/// chaotic wire. Whatever the proxy did to the ACKs, the ledger must
/// hold exactly one job per key and every acknowledged id.
#[test]
fn chaotic_wire_never_duplicates_or_loses_submissions() {
    let dir = scratch("submit");
    let daemon = Arc::new(Daemon::open(DaemonConfig::new(&dir)).unwrap());
    let server = NetServer::start(Arc::clone(&daemon), NetConfig::default()).unwrap();
    let proxy = ChaosProxy::start(server.local_addr(), wire_policy(0x7e57_0001)).unwrap();
    let addr = proxy.local_addr().to_string();
    let cfg = soak_client();

    let keys: Vec<String> = (0..8).map(|i| format!("wire-{i}")).collect();
    let mut acked = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        let spec =
            JobSpec::nano(if i % 2 == 0 { "alpha" } else { "beta" }).with_seed_offset(i as u64);
        let outcome = client::submit_with_retry(&addr, &spec, key, &cfg).unwrap();
        // A fresh key may still come back deduped — that is the lost-ACK
        // retry landing on its own reservation, i.e. the exact save the
        // key exists for. Only a *first-attempt* dedupe would be wrong.
        assert!(
            !(outcome.deduped && outcome.attempts == 1),
            "key {key} deduped on its very first attempt"
        );
        acked.push((key.clone(), outcome.job));
    }
    // Resubmit every key through the same chaotic wire: all dedupe to
    // the id the first round acknowledged.
    for (i, (key, job)) in acked.iter().enumerate() {
        let spec =
            JobSpec::nano(if i % 2 == 0 { "alpha" } else { "beta" }).with_seed_offset(i as u64);
        let again = client::submit_with_retry(&addr, &spec, key, &cfg).unwrap();
        assert_eq!(again.job, *job, "key {key} resolved to a different job");
        assert!(again.deduped);
    }

    // Invariant 1 + 2, in-memory: distinct ids, all present.
    let ids: BTreeSet<u64> = acked.iter().map(|(_, id)| *id).collect();
    assert_eq!(ids.len(), keys.len(), "duplicate job ids: {acked:?}");
    let status = daemon.status();
    assert_eq!(status.queued, keys.len(), "ledger job per key, no more");

    // Invariant 4, on disk: a fresh replay agrees with the ACKs.
    let replay = Wal::replay(&dir.join("jobs.wal")).unwrap();
    let ledger = replay.ledger();
    assert_eq!(ledger.jobs().count(), keys.len());
    for (i, (key, job)) in acked.iter().enumerate() {
        let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
        assert_eq!(
            ledger.lookup_key(tenant, key),
            Some(*job),
            "acknowledged job {job} lost from the WAL"
        );
    }

    // The soak only means something if the wire actually misbehaved.
    let stats = proxy.stats();
    assert!(
        stats.faulted() > 0,
        "chaos policy injected nothing: {stats:?}"
    );
    proxy.shutdown();
    drop(daemon);
    server.shutdown(Duration::from_millis(500));
    let _ = fs::remove_dir_all(&dir);
}

/// Tier-1, one flow pair: the same spec submitted once through the
/// chaotic proxy and once in-process. Both run to completion and the
/// semantic reports are byte-identical — the chaotic wire delivered
/// the submission bit-exactly (the CRC makes corruption detectable,
/// and detectable means retried, never accepted).
#[test]
fn wire_submitted_job_matches_in_process_submission_bit_for_bit() {
    let dir = scratch("pair");
    let daemon = Arc::new(Daemon::open(DaemonConfig::new(&dir)).unwrap());
    let server = NetServer::start(Arc::clone(&daemon), NetConfig::default()).unwrap();
    let proxy = ChaosProxy::start(server.local_addr(), wire_policy(0x7e57_0002)).unwrap();
    let addr = proxy.local_addr().to_string();

    let wire_spec = JobSpec::nano("alpha").with_seed_offset(3);
    let direct_spec = JobSpec::nano("beta").with_seed_offset(3);
    let wire_job = client::submit_with_retry(&addr, &wire_spec, "pair-wire", &soak_client())
        .unwrap()
        .job;
    let direct_job = match daemon.submit(&direct_spec).unwrap() {
        service::Submission::Accepted(id) => id,
        other => panic!("direct submission refused: {other:?}"),
    };

    assert_eq!(daemon.run_until_idle(), 2);
    let status = daemon.status();
    assert_eq!(status.completed, 2, "{:?}", status.jobs);
    let digest_of = |job: u64| {
        status
            .jobs
            .iter()
            .find(|r| r.id == job)
            .map(|r| match r.phase {
                JobPhase::Completed { report_digest } => report_digest,
                ref other => panic!("job {job} not completed: {other:?}"),
            })
            .unwrap()
    };
    assert_eq!(
        digest_of(wire_job),
        digest_of(direct_job),
        "wire ingestion changed the computation"
    );
    let semantic = |job: u64| {
        fs::read_to_string(
            dir.join("jobs")
                .join(job.to_string())
                .join("report_semantic.json"),
        )
        .unwrap()
    };
    assert_eq!(
        semantic(wire_job),
        semantic(direct_job),
        "semantic reports must be byte-identical across ingestion paths"
    );
    proxy.shutdown();
    drop(daemon);
    server.shutdown(Duration::from_millis(500));
    let _ = fs::remove_dir_all(&dir);
}

/// The full CI soak: three spec-pairs (wire vs in-process), all run
/// under a denser client volley, with fault-kind coverage asserted.
/// Ignored by default; the CI `net-chaos` job runs it with `--ignored`.
#[test]
#[ignore = "full wire soak; run in the CI net-chaos job"]
fn wire_soak_full_fleet_pairs_identical() {
    let dir = scratch("fleet");
    let mut cfg = DaemonConfig::new(&dir);
    cfg.workers = std::env::var("HIERSIZER_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(1);
    let daemon = Arc::new(Daemon::open(cfg).unwrap());
    let server = NetServer::start(Arc::clone(&daemon), NetConfig::default()).unwrap();
    let proxy = ChaosProxy::start(server.local_addr(), wire_policy(0x7e57_0003)).unwrap();
    let addr = proxy.local_addr().to_string();
    let ccfg = soak_client();

    let pairs = 3usize;
    let mut fleet = Vec::new(); // (wire_job, direct_job, pair)
    for p in 0..pairs {
        let wire_spec = JobSpec::nano("alpha").with_seed_offset(p as u64);
        let key = format!("fleet-{p}");
        let wire_job = client::submit_with_retry(&addr, &wire_spec, &key, &ccfg)
            .unwrap()
            .job;
        let direct_spec = JobSpec::nano("beta").with_seed_offset(p as u64);
        let direct_job = match daemon.submit(&direct_spec).unwrap() {
            service::Submission::Accepted(id) => id,
            other => panic!("direct submission refused: {other:?}"),
        };
        fleet.push((wire_job, direct_job, p));
    }

    // Densify the wire volley before the coverage assertion below:
    // three submissions alone may draw too few faults from the
    // permille gate. Every key resubmitted (must dedupe to its
    // acknowledged id) plus a burst of pings — cheap connections, no
    // extra flows, but enough draws to exercise several fault kinds.
    for (wire_job, _, p) in &fleet {
        let spec = JobSpec::nano("alpha").with_seed_offset(*p as u64);
        let again = client::submit_with_retry(&addr, &spec, &format!("fleet-{p}"), &ccfg).unwrap();
        assert_eq!(again.job, *wire_job, "fleet-{p} resolved to a new job");
        assert!(again.deduped, "fleet-{p} must dedupe on resubmit");
    }
    for _ in 0..12 {
        // Pings may individually fail under chaos; each attempt still
        // burns a proxied connection, which is all coverage needs.
        let _ = client::ping(&addr, &ccfg);
    }

    assert_eq!(daemon.run_until_idle(), pairs * 2);
    let status = daemon.status();
    assert_eq!(status.completed, pairs * 2, "{:?}", status.jobs);
    let digests: std::collections::BTreeMap<u64, u64> = status
        .jobs
        .iter()
        .filter_map(|r| match r.phase {
            JobPhase::Completed { report_digest } => Some((r.id, report_digest)),
            _ => None,
        })
        .collect();
    let ids: BTreeSet<u64> = fleet.iter().flat_map(|(w, d, _)| [*w, *d]).collect();
    assert_eq!(ids.len(), pairs * 2, "duplicate ids in {fleet:?}");
    for (wire_job, direct_job, p) in &fleet {
        assert_eq!(
            digests[wire_job], digests[direct_job],
            "pair {p}: wire and in-process digests diverged"
        );
    }

    // WAL accountability: replay agrees with the fleet.
    let replay = Wal::replay(&dir.join("jobs.wal")).unwrap();
    assert_eq!(replay.ledger().jobs().count(), pairs * 2);
    assert!(replay.ledger().open_jobs().is_empty(), "all jobs terminal");

    // Coverage: a dense volley must exercise more than one fault kind.
    let stats = proxy.stats();
    let kinds_hit = [
        stats.torn,
        stats.disconnects,
        stats.corrupted,
        stats.stalled,
        stats.half_open,
    ]
    .iter()
    .filter(|&&n| n > 0)
    .count();
    assert!(
        stats.faulted() >= 2 && kinds_hit >= 2,
        "weak chaos coverage: {stats:?}"
    );
    proxy.shutdown();
    drop(daemon);
    server.shutdown(Duration::from_millis(500));
    let _ = fs::remove_dir_all(&dir);
}
