//! The cross-process half of the headline guarantee: `kill -9` the
//! daemon binary mid-job, restart it, and the finished report is
//! byte-identical to a never-interrupted in-process run.
//!
//! This is the real-process counterpart of the in-process
//! interrupt-resume test in `daemon.rs`: a hard SIGKILL exercises the
//! WAL's truncated-tail tolerance and the checkpoint resume path with
//! genuine process teardown — no destructors, no flushes.

use std::fs;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use service::{Daemon, DaemonConfig, JobSpec, Submission};

/// Kills the child on drop so a failing assertion never leaks a daemon.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_daemon(data_dir: &Path) -> Reaper {
    let child = Command::new(env!("CARGO_BIN_EXE_hiersizerd"))
        .args(["--data-dir"])
        .arg(data_dir)
        .args(["--once", "--workers", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hiersizerd");
    Reaper(child)
}

fn wait_for<F: FnMut() -> bool>(what: &str, timeout: Duration, mut ready: F) {
    let start = Instant::now();
    while !ready() {
        assert!(
            start.elapsed() < timeout,
            "timed out after {timeout:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn killed_daemon_resumes_to_bit_identical_report() {
    let data = std::env::temp_dir().join(format!("svc-kill9-{}", std::process::id()));
    let _ = fs::remove_dir_all(&data);
    let incoming = data.join("incoming");
    fs::create_dir_all(&incoming).unwrap();

    let spec = JobSpec::nano("kill9").with_seed_offset(42);
    fs::write(
        incoming.join("job.json"),
        serde_json::to_string_pretty(&spec).unwrap(),
    )
    .unwrap();

    // Phase 1: start the daemon, let it pick up the job and finish
    // characterisation (the nano preset *seeds* stage 1, so the stage-2
    // checkpoint is the first one that represents real computed work),
    // then SIGKILL it mid-flight.
    let job_run = data.join("jobs").join("1").join("run");
    let stage2 = job_run.join("stage2_characterized.json");
    {
        let mut daemon = spawn_daemon(&data);
        wait_for("stage-2 checkpoint", Duration::from_secs(600), || {
            // Bail out early if the daemon exited on its own.
            if let Ok(Some(status)) = daemon.0.try_wait() {
                panic!("daemon exited before the kill: {status}");
            }
            stage2.exists()
        });
        daemon.0.kill().expect("SIGKILL the daemon");
        let _ = daemon.0.wait();
    }
    let report_path = data.join("jobs").join("1").join("report_semantic.json");
    assert!(
        !report_path.exists(),
        "kill must land before the job completed for the test to mean anything"
    );

    // Phase 2: a fresh daemon process recovers the WAL, resumes the job
    // from its checkpoints, and drains to idle.
    {
        let mut daemon = spawn_daemon(&data);
        let status = daemon.0.wait().expect("daemon --once runs to completion");
        assert!(status.success(), "restarted daemon exited with {status}");
    }
    let resumed = fs::read_to_string(&report_path).expect("resumed job wrote its report");

    // Reference: the same spec run start-to-finish in-process with no
    // interruption at all.
    let ref_dir = std::env::temp_dir().join(format!("svc-kill9-ref-{}", std::process::id()));
    let _ = fs::remove_dir_all(&ref_dir);
    let reference = Daemon::open(DaemonConfig::new(&ref_dir)).unwrap();
    let Submission::Accepted(ref_id) = reference.submit(&spec).unwrap() else {
        panic!("reference submission rejected");
    };
    reference.run_until_idle();
    let clean = fs::read_to_string(
        ref_dir
            .join("jobs")
            .join(ref_id.to_string())
            .join("report_semantic.json"),
    )
    .unwrap();

    assert_eq!(
        resumed, clean,
        "killed-and-restarted daemon produced a different report"
    );

    // The WAL must replay cleanly after the SIGKILL (a truncated tail
    // is legal; lost jobs are not).
    let replay = service::Wal::replay(&data.join("jobs.wal")).unwrap();
    let ledger = replay.ledger();
    assert_eq!(ledger.jobs().count(), 1);
    assert!(ledger.open_jobs().is_empty(), "job reached terminal state");

    let _ = fs::remove_dir_all(&data);
    let _ = fs::remove_dir_all(&ref_dir);
}
