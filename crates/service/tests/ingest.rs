//! File-drop intake robustness, exercised through the real binary with
//! `--once` and no runnable jobs — cheap, no flow ever starts.
//!
//! The bug this pins down: an unparseable spec in `incoming/` used to
//! be left in place, so every poll cycle re-read it, failed again, and
//! the intake loop ground on it forever. Now it is *quarantined* —
//! moved to `incoming/rejected/` with a machine-readable reason file —
//! and counted in `status.json`.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use service::JobSpec;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svc-ingest-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn run_once(data: &PathBuf, extra: &[&str]) {
    let output = Command::new(env!("CARGO_BIN_EXE_hiersizerd"))
        .args(["--data-dir"])
        .arg(data)
        .args(["--once", "--workers", "1"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("run hiersizerd --once");
    assert!(
        output.status.success(),
        "hiersizerd failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn unparseable_specs_are_quarantined_not_retried_forever() {
    let data = scratch("quarantine");
    let incoming = data.join("incoming");
    fs::create_dir_all(&incoming).unwrap();
    // Two poison files: invalid JSON (a torn half-write) and valid JSON
    // that is not a JobSpec. Plus a non-.json bystander that intake
    // must simply ignore.
    fs::write(incoming.join("torn.json"), "{\"tenant\": \"half-writ").unwrap();
    fs::write(incoming.join("wrong.json"), "{\"not\": \"a spec\"}").unwrap();
    fs::write(incoming.join("notes.txt"), "not a spec, not json").unwrap();

    // The run must terminate (--once drains and exits) — with the old
    // behaviour it would exit claiming idle but leave the poison in
    // place for the next cycle to choke on again.
    run_once(&data, &[]);

    // Both poison files moved out of the intake glob, each with a
    // structured reason beside it.
    assert!(!incoming.join("torn.json").exists());
    assert!(!incoming.join("wrong.json").exists());
    let rejected = incoming.join("rejected");
    assert!(rejected.join("torn.json").exists());
    assert!(rejected.join("wrong.json").exists());
    let reason = fs::read_to_string(rejected.join("torn.json.reason.json")).unwrap();
    assert!(reason.contains("invalid spec"), "{reason}");
    assert!(fs::read_to_string(rejected.join("wrong.json.reason.json"))
        .unwrap()
        .contains("invalid spec"));
    // The bystander is untouched.
    assert!(incoming.join("notes.txt").exists());

    // The quarantine is visible in status.json.
    let status = fs::read_to_string(data.join("status.json")).unwrap();
    let parsed: serde::Value = serde_json::from_str(&status).unwrap();
    assert_eq!(parsed["quarantined"].as_f64(), Some(2.0), "{status}");

    // A second run with the same data dir finds a clean intake — the
    // poison does not come back.
    run_once(&data, &[]);
    let status = fs::read_to_string(data.join("status.json")).unwrap();
    let parsed: serde::Value = serde_json::from_str(&status).unwrap();
    assert_eq!(
        parsed["quarantined"].as_f64(),
        Some(0.0),
        "a fresh process starts with a clean quarantine count: {status}"
    );
    let _ = fs::remove_dir_all(&data);
}

#[test]
fn rejected_submissions_leave_a_structured_receipt_and_exit() {
    let data = scratch("reject");
    let incoming = data.join("incoming");
    fs::create_dir_all(&incoming).unwrap();
    let spec = JobSpec::nano("overflow");
    fs::write(
        incoming.join("job.json"),
        serde_json::to_string_pretty(&spec).unwrap(),
    )
    .unwrap();

    // --max-open 0: everything is backpressured. The spec is removed,
    // a .rejected.json receipt holds the structured rejection, and the
    // daemon still exits idle instead of spinning on the file.
    run_once(&data, &["--max-open", "0"]);

    assert!(!incoming.join("job.json").exists());
    let receipt = fs::read_to_string(incoming.join("job.rejected.json")).unwrap();
    assert!(receipt.contains("QueueFull"), "{receipt}");
    assert!(receipt.contains("retry_after_ms"), "{receipt}");

    // The receipt itself must not be re-ingested as a spec (it is
    // valid JSON but carries the .rejected.json suffix the intake glob
    // skips) — a second run stays clean and quarantines nothing.
    run_once(&data, &["--max-open", "0"]);
    assert!(incoming.join("job.rejected.json").exists());
    assert!(!incoming.join("rejected").join("job.rejected.json").exists());
    let _ = fs::remove_dir_all(&data);
}
