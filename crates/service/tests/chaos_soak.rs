//! The service-level chaos soak.
//!
//! Fleets of nano jobs run under [`ChaosPolicy::soak`]: simulated
//! crashes mid-stage, worker panics, smashed checkpoints, torn WAL
//! appends. The invariants:
//!
//! 1. **No job lost** — every submitted job reaches a terminal state.
//! 2. **No report diverges** — the fleet is submitted as *pairs* of
//!    identical specs under different tenants. The two members of a
//!    pair draw different fault schedules (decisions are keyed by job
//!    id), so equal digests within every pair proves chaos never leaks
//!    into results. Solver-fault injection is disabled for paired
//!    fleets — it is keyed by job id and legitimately changes the
//!    computation; its digest-stability is covered by the fault-matched
//!    reference test in `daemon.rs`.
//! 3. **No deadlock** — `run_until_idle` returns; the fault budget
//!    guarantees every job's final attempt runs clean.
//! 4. **The WAL stays replayable** — torn appends surface as counted
//!    corrupt lines (or one truncated tail), never as replay failure,
//!    and every job survives replay.
//!
//! Worker count comes from `HIERSIZER_THREADS` so the CI chaos job can
//! run the same soak single- and multi-threaded.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use service::{ChaosPolicy, Daemon, DaemonConfig, JobPhase, JobSpec, Submission, Wal};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svc-soak-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn workers_from_env() -> usize {
    std::env::var("HIERSIZER_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Submits `pairs` pairs of identical specs (distinct tenants, same
/// seed offset) and returns `(id, pair_index)` for each job.
fn submit_pairs(daemon: &Daemon, pairs: usize) -> Vec<(u64, usize)> {
    let mut out = Vec::new();
    for p in 0..pairs {
        for tenant in ["alpha", "beta"] {
            let spec = JobSpec::nano(tenant).with_seed_offset(p as u64);
            match daemon.submit(&spec).unwrap() {
                Submission::Accepted(id) => out.push((id, p)),
                other => panic!("soak fleet not accepted: {other:?}"),
            }
        }
    }
    out
}

/// The paired soak policy: the full recovery-path fault surface, no
/// job-keyed solver faults (those would make pair members compute
/// different — equally valid — results).
fn paired_policy(seed: u64) -> ChaosPolicy {
    ChaosPolicy {
        sim_fault_permille: 0,
        ..ChaosPolicy::soak(seed)
    }
}

/// Runs `pairs` spec-pairs under soak chaos and checks all four
/// invariants. Returns (chaos faults injected, WAL short writes).
fn soak(tag: &str, pairs: usize, seed: u64) -> (u64, u64) {
    let jobs = pairs * 2;
    let dir = scratch(tag);
    let mut cfg = DaemonConfig::new(&dir);
    cfg.workers = workers_from_env();
    cfg.chaos = Some(paired_policy(seed));
    let daemon = Daemon::open(cfg).unwrap();
    let fleet = submit_pairs(&daemon, pairs);

    // Invariant 3: this returning at all is the no-deadlock check.
    let executed = daemon.run_until_idle();
    assert_eq!(executed, jobs, "every job executed to a terminal state");

    // Invariant 1: no job lost, all terminal, none failed.
    let status = daemon.status();
    assert_eq!(status.jobs.len(), jobs);
    for row in &status.jobs {
        assert!(
            row.phase.terminal(),
            "job {} stuck in {:?}",
            row.id,
            row.phase
        );
    }
    assert_eq!(
        status.completed,
        jobs,
        "soak jobs must complete, not fail: {:?}",
        status
            .jobs
            .iter()
            .filter(|r| !matches!(r.phase, JobPhase::Completed { .. }))
            .collect::<Vec<_>>()
    );

    // Invariant 2: both members of every pair — different tenants,
    // different fault schedules, same spec — landed on the same digest.
    let mut by_pair: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    let digests: BTreeMap<u64, u64> = status
        .jobs
        .iter()
        .filter_map(|r| match r.phase {
            JobPhase::Completed { report_digest } => Some((r.id, report_digest)),
            _ => None,
        })
        .collect();
    for (id, pair) in &fleet {
        by_pair.entry(*pair).or_default().push(digests[id]);
    }
    for (pair, ds) in &by_pair {
        assert_eq!(ds.len(), 2);
        assert_eq!(
            ds[0], ds[1],
            "pair {pair}: chaos leaked into the result (digests {ds:?})"
        );
    }

    // Invariant 4: the WAL replays; every torn append is accounted for
    // as a corrupt line or the truncated tail, and no job vanished.
    let replay = Wal::replay(&dir.join("jobs.wal")).unwrap();
    let accounted = replay.corrupt_lines + usize::from(replay.truncated_tail);
    assert_eq!(
        accounted, status.wal_short_writes as usize,
        "every torn append surfaces on replay"
    );
    let ledger = replay.ledger();
    assert_eq!(ledger.jobs().count(), jobs, "Submitted records never torn");

    write_soak_report(&dir, &status, &replay);
    let _ = fs::remove_dir_all(&dir);
    (status.chaos_faults, status.wal_short_writes)
}

/// Drops a machine-readable soak summary where CI can pick it up
/// (`CONFORMANCE_REPORT_DIR`), mirroring the conformance suite's
/// artifact convention.
fn write_soak_report(
    data_dir: &Path,
    status: &service::DaemonStatus,
    replay: &service::wal::WalReplay,
) {
    let Ok(report_dir) = std::env::var("CONFORMANCE_REPORT_DIR") else {
        return;
    };
    let _ = fs::create_dir_all(&report_dir);
    let text = format!(
        "{{\n  \"jobs\": {},\n  \"completed\": {},\n  \"failed\": {},\n  \"chaos_faults\": {},\n  \"wal_short_writes\": {},\n  \"wal_corrupt_lines\": {},\n  \"wal_truncated_tail\": {},\n  \"data_dir\": \"{}\"\n}}\n",
        status.jobs.len(),
        status.completed,
        status.failed,
        status.chaos_faults,
        status.wal_short_writes,
        replay.corrupt_lines,
        replay.truncated_tail,
        data_dir.display()
    );
    let name = format!("chaos_soak_{}.json", std::process::id());
    let _ = fs::write(Path::new(&report_dir).join(name), text);
}

/// The default-run soak: two pairs, small enough for the tier-1 suite.
#[test]
fn soak_small_fleet_under_chaos() {
    let (faults, _) = soak("small", 2, 0x000c_4a05);
    assert!(faults > 0, "the soak seed must actually inject chaos");
}

/// The full CI soak (ISSUE acceptance: >= 20 jobs). Ignored by
/// default; the CI chaos job runs it with `--ignored`.
#[test]
#[ignore = "full soak; run in the CI chaos job"]
fn soak_full_fleet_under_chaos() {
    let (faults, short_writes) = soak("full", 10, 0xc4a0_5107);
    assert!(
        faults >= 10,
        "expected a dense fault schedule, got {faults}"
    );
    assert!(
        short_writes > 0,
        "WAL tear channel must fire in a full soak"
    );
}

/// Solver-fault chaos (the clock-stall channel included) on top of the
/// recovery faults: jobs must still reach a terminal completed state.
/// Digest stability under sim faults is covered by the fault-matched
/// reference test in `daemon.rs`; this exercises the channel at soak
/// intensity. Ignored by default; the CI chaos job runs it.
#[test]
#[ignore = "full soak; run in the CI chaos job"]
fn soak_with_solver_faults_terminates_clean() {
    let dir = scratch("simfault");
    let mut cfg = DaemonConfig::new(&dir);
    cfg.workers = workers_from_env();
    cfg.chaos = Some(ChaosPolicy {
        sim_fault_permille: 1000,
        ..ChaosPolicy::soak(0x51f)
    });
    let daemon = Daemon::open(cfg).unwrap();
    for i in 0..2u64 {
        let spec = JobSpec::nano("delta").with_seed_offset(100 + i);
        assert!(matches!(
            daemon.submit(&spec).unwrap(),
            Submission::Accepted(_)
        ));
    }
    daemon.run_until_idle();
    let status = daemon.status();
    assert_eq!(status.completed, 2, "{:?}", status.jobs);
    let _ = fs::remove_dir_all(&dir);
}
