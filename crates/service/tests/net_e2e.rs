//! The network acceptance end-to-end: SIGKILL a real `hiersizerd
//! --listen` process mid-job after a TCP submit, restart it, resubmit
//! the *same idempotency key* with the real `hiersizer-cli` binary —
//! the key resolves to the original job id, the job resumes to
//! completion, and its `report_semantic.json` is byte-identical to an
//! uninterrupted file-drop run of the same spec. One scenario, the
//! whole robustness story: wire ingestion, WAL-backed idempotency
//! across process death, checkpoint resume, graceful drain over RPC,
//! and the file-drop/TCP differential pair.

use std::fs;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use service::net::client::{self, ClientConfig};
use service::{JobPhase, JobSpec};

/// Kills the child on drop so a failing assertion never leaks a daemon.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_listening(data: &Path) -> Reaper {
    let child = Command::new(env!("CARGO_BIN_EXE_hiersizerd"))
        .args(["--data-dir"])
        .arg(data)
        .args([
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--poll-ms",
            "50",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hiersizerd --listen");
    Reaper(child)
}

fn wait_for<F: FnMut() -> bool>(what: &str, timeout: Duration, mut ready: F) {
    let start = Instant::now();
    while !ready() {
        assert!(
            start.elapsed() < timeout,
            "timed out after {timeout:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Reads the daemon's advertised address once it appears.
fn read_addr(data: &Path, daemon: &mut Reaper) -> String {
    let path = data.join("net_addr");
    wait_for("net_addr", Duration::from_secs(60), || {
        if let Ok(Some(status)) = daemon.0.try_wait() {
            panic!("daemon exited before binding: {status}");
        }
        path.exists()
    });
    fs::read_to_string(&path).expect("net_addr readable")
}

#[test]
fn sigkill_during_tcp_submit_resumes_under_the_same_key() {
    let data = std::env::temp_dir().join(format!("svc-netkill-{}", std::process::id()));
    let _ = fs::remove_dir_all(&data);
    fs::create_dir_all(&data).unwrap();
    let spec = JobSpec::nano("e2e").with_seed_offset(7);
    let key = "e2e-key";
    let cfg = ClientConfig::default();

    // Phase 1: TCP-submit to a live daemon, let it work past the
    // stage-2 checkpoint (the first checkpoint representing computed
    // work under the seeded Nano preset), then SIGKILL — no teardown,
    // no flushes, the ACK for our submit long since delivered.
    let job_run = data.join("jobs").join("1").join("run");
    let stage2 = job_run.join("stage2_characterized.json");
    {
        let mut daemon = spawn_listening(&data);
        let addr = read_addr(&data, &mut daemon);
        let outcome = client::submit_with_retry(&addr, &spec, key, &cfg).unwrap();
        assert_eq!(outcome.job, 1, "first job on a fresh daemon");
        wait_for("stage-2 checkpoint", Duration::from_secs(600), || {
            if let Ok(Some(status)) = daemon.0.try_wait() {
                panic!("daemon exited before the kill: {status}");
            }
            stage2.exists()
        });
        daemon.0.kill().expect("SIGKILL the daemon");
        let _ = daemon.0.wait();
    }
    let report_path = data.join("jobs").join("1").join("report_semantic.json");
    assert!(
        !report_path.exists(),
        "kill must land before completion for the test to mean anything"
    );

    // Phase 2: restart. Recovery resumes job 1 from its checkpoints;
    // meanwhile the *CLI binary* retries the same key and must be told
    // "that's job 1, already submitted" — the WAL reservation crossed
    // the process boundary.
    let _ = fs::remove_file(data.join("net_addr")); // force a fresh advert
    {
        let mut daemon = spawn_listening(&data);
        let addr = read_addr(&data, &mut daemon);
        let output = Command::new(env!("CARGO_BIN_EXE_hiersizer-cli"))
            .args(["submit", "--addr", &addr, "--tenant", "e2e"])
            .args(["--seed-offset", "7", "--key", key])
            .output()
            .expect("run hiersizer-cli");
        assert!(
            output.status.success(),
            "cli submit failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains("\"job\": 1") && stdout.contains("\"deduped\": true"),
            "resubmitted key must dedupe to job 1, got: {stdout}"
        );

        // The resumed job completes; confirm over the wire, then drain
        // over the wire and watch the process exit cleanly. The report
        // file lands just *before* the Completed WAL fold, so poll the
        // status RPC for the terminal phase rather than racing it.
        wait_for("resumed completion", Duration::from_secs(600), || {
            if let Ok(Some(status)) = daemon.0.try_wait() {
                panic!("daemon exited before finishing: {status}");
            }
            match client::status(&addr, 1, &cfg) {
                Ok(row) => match row.phase {
                    JobPhase::Completed { .. } => true,
                    JobPhase::Failed { .. } => {
                        panic!("resumed job failed instead of completing: {:?}", row.phase)
                    }
                    _ => false,
                },
                Err(_) => false,
            }
        });
        assert!(report_path.exists(), "completed job must have its report");
        client::drain(&addr, &cfg).unwrap();
        let status = daemon.0.wait().expect("daemon exits after drain");
        assert!(status.success(), "drained daemon exited with {status}");
    }
    let resumed = fs::read_to_string(&report_path).unwrap();

    // Reference: the same spec dropped as a file into a fresh daemon's
    // incoming/ and run without interruption — the other ingestion
    // path, never touched by TCP or SIGKILL.
    let ref_dir = std::env::temp_dir().join(format!("svc-netkill-ref-{}", std::process::id()));
    let _ = fs::remove_dir_all(&ref_dir);
    let incoming = ref_dir.join("incoming");
    fs::create_dir_all(&incoming).unwrap();
    fs::write(
        incoming.join("job.json"),
        serde_json::to_string_pretty(&spec).unwrap(),
    )
    .unwrap();
    {
        let mut reference = Reaper(
            Command::new(env!("CARGO_BIN_EXE_hiersizerd"))
                .args(["--data-dir"])
                .arg(&ref_dir)
                .args(["--once", "--workers", "1"])
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn reference hiersizerd"),
        );
        let status = reference.0.wait().expect("reference runs to completion");
        assert!(status.success(), "reference daemon exited with {status}");
    }
    let clean =
        fs::read_to_string(ref_dir.join("jobs").join("1").join("report_semantic.json")).unwrap();

    // The headline assertion: byte identity across ingestion paths and
    // across a SIGKILL.
    assert_eq!(
        resumed, clean,
        "TCP-submitted, killed-and-resumed report diverged from the file-drop run"
    );
    // And the structured view agrees: zero divergences, not merely
    // equal strings (this is what CI prints when the bytes ever drift).
    let left: serde::Value = serde_json::from_str(&resumed).unwrap();
    let right: serde::Value = serde_json::from_str(&clean).unwrap();
    let diff =
        conformance::compare_semantic_values("tcp-vs-filedrop", "tcp", "filedrop", &left, &right);
    assert!(diff.identical(), "{}", diff.summary());

    // WAL accountability: one job, keyed, terminal.
    let replay = service::Wal::replay(&data.join("jobs.wal")).unwrap();
    let ledger = replay.ledger();
    assert_eq!(ledger.jobs().count(), 1, "the retry never double-enqueued");
    assert_eq!(ledger.key_for_job(1), Some(("e2e", key)));
    assert!(
        ledger.open_jobs().is_empty(),
        "job 1 reached terminal state"
    );

    let _ = fs::remove_dir_all(&data);
    let _ = fs::remove_dir_all(&ref_dir);
}
