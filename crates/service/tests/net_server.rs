//! Server-side wire behaviour, kept cheap: most tests never run a
//! flow — they exercise framing, quotas, idempotency, and drain
//! against a daemon whose queue is simply never drained. The one test
//! that does run a job (`completed_job_serves_status_watch_and_budget`)
//! runs a single Nano flow and amortises it across status, subscribe,
//! dedupe-after-terminal, and budget assertions.

use std::io::Read;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use service::net::client::{self, ClientConfig};
use service::net::frame::{read_frame, write_frame};
use service::net::proto::{from_wire, to_wire};
use service::net::{
    encode_frame, NetConfig, NetServer, Request, Response, WireErrorKind, PROTOCOL_VERSION,
};
use service::{Daemon, DaemonConfig, JobPhase, JobSpec, RejectReason};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svc-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(
    tag: &str,
    cfg: DaemonConfig,
    net: NetConfig,
) -> (Arc<Daemon>, NetServer, String, PathBuf) {
    let dir = cfg.data_dir.clone();
    let _ = tag;
    let daemon = Arc::new(Daemon::open(cfg).unwrap());
    let server = NetServer::start(Arc::clone(&daemon), net).unwrap();
    let addr = server.local_addr().to_string();
    (daemon, server, addr, dir)
}

fn quick_client() -> ClientConfig {
    ClientConfig {
        io_timeout_ms: 2_000,
        retries: 2,
        max_retry_after_ms: 50,
        ..ClientConfig::default()
    }
}

/// Sends one raw frame and reads one response on a dedicated stream.
fn raw_roundtrip(addr: &str, frame: &[u8]) -> Result<Response, service::net::FrameError> {
    let mut stream = TcpStream::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(2);
    std::io::Write::write_all(&mut stream, frame).unwrap();
    let payload = read_frame(&mut stream, 1 << 20, deadline)?;
    Ok(from_wire::<Response>(&payload).unwrap())
}

#[test]
fn ping_reports_version_and_drain_flag() {
    let (daemon, server, addr, dir) = start(
        "ping",
        DaemonConfig::new(scratch("ping")),
        NetConfig::default(),
    );
    let (version, draining) = client::ping(&addr, &quick_client()).unwrap();
    assert_eq!(version, PROTOCOL_VERSION);
    assert!(!draining);
    assert_eq!(server.requests_served(), 1);
    drop(daemon);
    server.shutdown(Duration::from_millis(500));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn keyed_submit_dedupes_live_and_across_restart() {
    let dir = scratch("dedupe");
    let (daemon, server, addr, _) = start("dedupe", DaemonConfig::new(&dir), NetConfig::default());
    let spec = JobSpec::nano("acme");
    let cfg = quick_client();
    let first = client::submit_with_retry(&addr, &spec, "job-key-7", &cfg).unwrap();
    assert!(!first.deduped);
    // Same key, same live daemon → the original id, no new enqueue.
    let again = client::submit_with_retry(&addr, &spec, "job-key-7", &cfg).unwrap();
    assert_eq!(again.job, first.job);
    assert!(again.deduped);
    // A different key is a different job.
    let other = client::submit_with_retry(&addr, &spec, "job-key-8", &cfg).unwrap();
    assert_ne!(other.job, first.job);
    assert_eq!(daemon.status().queued, 2);

    // Restart the daemon on the same data dir: the key reservation is
    // in the WAL, so the dedupe survives the process boundary.
    server.shutdown(Duration::from_millis(500));
    drop(daemon);
    let (daemon2, server2, addr2, _) =
        start("dedupe2", DaemonConfig::new(&dir), NetConfig::default());
    let after = client::submit_with_retry(&addr2, &spec, "job-key-7", &cfg).unwrap();
    assert_eq!(after.job, first.job, "key must survive restart");
    assert!(after.deduped);
    assert_eq!(daemon2.status().queued, 2, "no duplicate enqueue");
    server2.shutdown(Duration::from_millis(500));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_job_status_is_a_structured_error() {
    let (daemon, server, addr, dir) = start(
        "unknown",
        DaemonConfig::new(scratch("unknown")),
        NetConfig::default(),
    );
    let err = client::status(&addr, 999, &quick_client()).unwrap_err();
    match err {
        client::ClientError::Protocol(msg) => {
            assert!(msg.contains("UnknownJob"), "{msg}");
        }
        other => panic!("expected Protocol error, got {other:?}"),
    }
    drop(daemon);
    server.shutdown(Duration::from_millis(500));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_frame_is_refused_from_its_header() {
    let (daemon, server, addr, dir) = start(
        "oversize",
        DaemonConfig::new(scratch("oversize")),
        NetConfig {
            max_frame: 64,
            ..NetConfig::default()
        },
    );
    // Declare a 1 MiB payload; send only the header. The server must
    // answer from the length field alone, without waiting for payload.
    let header = format!("{:08x} {:016x} ", 1 << 20, 0u64);
    let resp = raw_roundtrip(&addr, header.as_bytes()).unwrap();
    let Response::Error { kind, message } = resp else {
        panic!("expected Error, got {resp:?}");
    };
    assert_eq!(kind, WireErrorKind::BadFrame);
    assert!(message.contains("exceeds limit"), "{message}");
    drop(daemon);
    server.shutdown(Duration::from_millis(500));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_crc_is_rejected_with_provenance_then_closed() {
    let (daemon, server, addr, dir) = start(
        "crc",
        DaemonConfig::new(scratch("crc")),
        NetConfig::default(),
    );
    let mut frame = encode_frame(&to_wire(&Request::Ping));
    let last = frame.len() - 2; // a payload byte, not the terminator
    frame[last] ^= 0x01;
    let mut stream = TcpStream::connect(&addr).unwrap();
    std::io::Write::write_all(&mut stream, &frame).unwrap();
    let deadline = Instant::now() + Duration::from_secs(2);
    let payload = read_frame(&mut stream, 1 << 20, deadline).unwrap();
    let Response::Error { kind, message } = from_wire::<Response>(&payload).unwrap() else {
        panic!("expected Error response");
    };
    assert_eq!(kind, WireErrorKind::BadFrame);
    assert!(message.contains("CRC mismatch"), "{message}");
    // The stream is unsynchronised after a frame fault: server closes.
    let mut rest = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0, "must close");
    drop(daemon);
    server.shutdown(Duration::from_millis(500));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn junk_json_keeps_the_connection_usable() {
    let (daemon, server, addr, dir) = start(
        "junk",
        DaemonConfig::new(scratch("junk")),
        NetConfig::default(),
    );
    let mut stream = TcpStream::connect(&addr).unwrap();
    let deadline = || Instant::now() + Duration::from_secs(2);
    // A well-framed payload that is not a Request: answered BadRequest,
    // connection stays open (the stream is still synchronised).
    write_frame(&mut stream, b"{\"Nope\": true}", deadline()).unwrap();
    let payload = read_frame(&mut stream, 1 << 20, deadline()).unwrap();
    let Response::Error { kind, .. } = from_wire::<Response>(&payload).unwrap() else {
        panic!("expected Error response");
    };
    assert_eq!(kind, WireErrorKind::BadRequest);
    // Same connection, valid request → normal service.
    write_frame(&mut stream, &to_wire(&Request::Ping), deadline()).unwrap();
    let payload = read_frame(&mut stream, 1 << 20, deadline()).unwrap();
    assert!(matches!(
        from_wire::<Response>(&payload).unwrap(),
        Response::Pong { .. }
    ));
    drop(daemon);
    server.shutdown(Duration::from_millis(500));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_connection_is_closed_on_schedule() {
    let (daemon, server, addr, dir) = start(
        "idle",
        DaemonConfig::new(scratch("idle")),
        NetConfig {
            idle_timeout_ms: 150,
            ..NetConfig::default()
        },
    );
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let started = Instant::now();
    let mut buf = Vec::new();
    // Say nothing: the server must hang up, not hold the thread.
    let n = stream.read_to_end(&mut buf).unwrap();
    assert_eq!(n, 0, "idle close sends nothing");
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "connection closed by the idle deadline, not our read timeout"
    );
    drop(daemon);
    server.shutdown(Duration::from_millis(500));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn global_conn_limit_refuses_with_structured_rejection() {
    let (daemon, server, addr, dir) = start(
        "connlimit",
        DaemonConfig::new(scratch("connlimit")),
        NetConfig {
            max_conns: 1,
            idle_timeout_ms: 5_000,
            ..NetConfig::default()
        },
    );
    // Occupy the only slot with a silent connection.
    let _holder = TcpStream::connect(&addr).unwrap();
    // Give the accept loop a tick to hand it to a handler thread.
    let deadline = Instant::now() + Duration::from_secs(2);
    while server.active_connections() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.active_connections(), 1);
    // The next connection is refused with the admission vocabulary.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let payload = read_frame(
        &mut stream,
        1 << 20,
        Instant::now() + Duration::from_secs(2),
    )
    .unwrap();
    let Response::Rejected { rejection } = from_wire::<Response>(&payload).unwrap() else {
        panic!("expected Rejected");
    };
    assert_eq!(rejection.reason, RejectReason::ConnLimit);
    assert!(rejection.retry_after_ms > 0);
    drop(daemon);
    server.shutdown(Duration::from_millis(500));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenant_conn_quota_binds_at_first_submit() {
    let (daemon, server, addr, dir) = start(
        "tenantconn",
        DaemonConfig::new(scratch("tenantconn")),
        NetConfig {
            max_conns_per_tenant: 1,
            ..NetConfig::default()
        },
    );
    let deadline = || Instant::now() + Duration::from_secs(2);
    let submit = |stream: &mut TcpStream, tenant: &str, key: &str| {
        let req = Request::Submit {
            key: key.into(),
            spec: JobSpec::nano(tenant),
        };
        write_frame(stream, &to_wire(&req), deadline()).unwrap();
        let payload = read_frame(stream, 1 << 20, deadline()).unwrap();
        from_wire::<Response>(&payload).unwrap()
    };
    // Conn A binds tenant "noisy" and keeps its slot by staying open.
    let mut a = TcpStream::connect(&addr).unwrap();
    assert!(matches!(
        submit(&mut a, "noisy", "a-1"),
        Response::Submitted { .. }
    ));
    // Conn B, same tenant → refused at bind time with ConnLimit.
    let mut b = TcpStream::connect(&addr).unwrap();
    let Response::Rejected { rejection } = submit(&mut b, "noisy", "b-1") else {
        panic!("second noisy connection must be refused");
    };
    assert_eq!(rejection.reason, RejectReason::ConnLimit);
    // Conn C, different tenant → unaffected.
    let mut c = TcpStream::connect(&addr).unwrap();
    assert!(matches!(
        submit(&mut c, "quiet", "c-1"),
        Response::Submitted { .. }
    ));
    // Conn A hanging up releases the slot for the tenant.
    drop(a);
    let released = Instant::now() + Duration::from_secs(2);
    let mut d = TcpStream::connect(&addr).unwrap();
    loop {
        match submit(&mut d, "noisy", "d-1") {
            Response::Submitted { .. } => break,
            Response::Rejected { .. } if Instant::now() < released => {
                drop(d);
                std::thread::sleep(Duration::from_millis(20));
                d = TcpStream::connect(&addr).unwrap();
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
    drop(daemon);
    server.shutdown(Duration::from_millis(500));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_stops_new_work_but_answers_connected_clients() {
    let (daemon, server, addr, dir) = start(
        "drain",
        DaemonConfig::new(scratch("drain")),
        NetConfig::default(),
    );
    let cfg = quick_client();
    // One queued job so drain has something to report.
    client::submit_with_retry(&addr, &JobSpec::nano("acme"), "drain-1", &cfg).unwrap();
    // A connection opened before the drain keeps being served.
    let mut held = TcpStream::connect(&addr).unwrap();
    let deadline = || Instant::now() + Duration::from_secs(2);
    write_frame(&mut held, &to_wire(&Request::Ping), deadline()).unwrap();
    let payload = read_frame(&mut held, 1 << 20, deadline()).unwrap();
    assert!(matches!(
        from_wire::<Response>(&payload).unwrap(),
        Response::Pong {
            draining: false,
            ..
        }
    ));

    let open = client::drain(&addr, &cfg).unwrap();
    assert_eq!(open, 1);
    assert!(daemon.is_draining());
    // The held connection sees the drain and refuses new submissions
    // with the structured Draining rejection.
    let req = Request::Submit {
        key: "late".into(),
        spec: JobSpec::nano("acme"),
    };
    write_frame(&mut held, &to_wire(&req), deadline()).unwrap();
    let payload = read_frame(&mut held, 1 << 20, deadline()).unwrap();
    let Response::Rejected { rejection } = from_wire::<Response>(&payload).unwrap() else {
        panic!("submit during drain must be rejected");
    };
    assert_eq!(rejection.reason, RejectReason::Draining);
    // Queued work is not lost — it stays durable for the next start.
    assert_eq!(daemon.status().queued, 1);
    drop(daemon);
    server.shutdown(Duration::from_millis(500));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The one flow-running test: a single Nano job completes, then its
/// lifecycle is inspected entirely over the wire — status row, event
/// subscription with terminal phase, dedupe of the original key after
/// the job went terminal, and the per-tenant wall-clock budget
/// rejecting the tenant's next submission.
#[test]
fn completed_job_serves_status_watch_and_budget() {
    let dir = scratch("lifecycle");
    let mut cfg = DaemonConfig::new(&dir);
    cfg.admission.tenant_budget_ms = 1; // one completed job exhausts it
    cfg.admission.budget_retry_after_ms = 30_000;
    let (daemon, server, addr, _) = start("lifecycle", cfg, NetConfig::default());
    let ccfg = quick_client();

    let outcome =
        client::submit_with_retry(&addr, &JobSpec::nano("metered"), "m-1", &ccfg).unwrap();
    assert_eq!(daemon.run_until_idle(), 1);

    // Status over the wire shows the terminal row.
    let row = client::status(&addr, outcome.job, &ccfg).unwrap();
    assert!(matches!(row.phase, JobPhase::Completed { .. }));
    assert_eq!(row.tenant, "metered");

    // Subscribe replays the event log and ends with the terminal phase.
    let mut events = Vec::new();
    let phase = client::watch(&addr, outcome.job, 0, &ccfg, |index, event| {
        events.push((index, event.to_string()));
    })
    .unwrap();
    assert!(matches!(phase, JobPhase::Completed { .. }));
    assert!(!events.is_empty(), "a completed flow has events");
    assert_eq!(events[0].0, 0, "stream starts at the requested index");
    // Resuming from a later index skips the prefix.
    let mut tail = Vec::new();
    let from = events.len() as u64 - 1;
    client::watch(&addr, outcome.job, from, &ccfg, |index, event| {
        tail.push((index, event.to_string()));
    })
    .unwrap();
    assert_eq!(tail.len(), 1);
    assert_eq!(tail[0], events[events.len() - 1]);

    // The original key still dedupes after the job went terminal.
    let again = client::submit_with_retry(&addr, &JobSpec::nano("metered"), "m-1", &ccfg).unwrap();
    assert_eq!(again.job, outcome.job);
    assert!(again.deduped);

    // The completed job charged its wall-clock to the tenant; the next
    // fresh submission is over budget, with the long retry hint capped
    // client-side — so the client exhausts retries on rejections.
    let err =
        client::submit_with_retry(&addr, &JobSpec::nano("metered"), "m-2", &ccfg).unwrap_err();
    let client::ClientError::RetriesExhausted(Some(rejection)) = err else {
        panic!("expected budget rejection, got {err:?}");
    };
    assert_eq!(rejection.reason, RejectReason::BudgetExhausted);
    assert_eq!(rejection.retry_after_ms, 30_000);
    // Another tenant is not affected by "metered"'s budget.
    let other = client::submit_with_retry(&addr, &JobSpec::nano("thrifty"), "t-1", &ccfg).unwrap();
    assert!(!other.deduped);

    drop(daemon);
    server.shutdown(Duration::from_millis(500));
    let _ = std::fs::remove_dir_all(&dir);
}
