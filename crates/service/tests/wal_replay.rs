//! WAL replay robustness: truncated tails, corrupt lines, duplicates.

use std::fs;
use std::path::PathBuf;

use service::{JobPhase, JobSpec, Wal, WalRecord};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wal-replay-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn submitted(job: u64) -> WalRecord {
    WalRecord::Submitted {
        job,
        spec: JobSpec::nano("tenant"),
    }
}

#[test]
fn append_then_replay_round_trips() {
    let dir = scratch("round-trip");
    let path = dir.join("jobs.wal");
    let wal = Wal::open(&path).unwrap();
    let records = vec![
        submitted(1),
        WalRecord::Started { job: 1, attempt: 0 },
        WalRecord::Completed {
            job: 1,
            attempt: 0,
            report_digest: 0xdead_beef,
        },
    ];
    for rec in &records {
        wal.append(rec).unwrap();
    }
    let replay = Wal::replay(&path).unwrap();
    assert_eq!(replay.records, records);
    assert_eq!(replay.corrupt_lines, 0);
    assert!(!replay.truncated_tail);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_file_replays_empty() {
    let dir = scratch("missing");
    let replay = Wal::replay(&dir.join("nope.wal")).unwrap();
    assert!(replay.records.is_empty());
    assert!(!replay.truncated_tail);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_tail_is_dropped_and_flagged() {
    let dir = scratch("tail");
    let path = dir.join("jobs.wal");
    let wal = Wal::open(&path).unwrap();
    wal.append(&submitted(1)).unwrap();
    wal.append(&WalRecord::Started { job: 1, attempt: 0 })
        .unwrap();
    // Simulate a crash mid-append: chop the file mid-line, no newline.
    let text = fs::read_to_string(&path).unwrap();
    fs::write(&path, &text[..text.len() - 12]).unwrap();
    let replay = Wal::replay(&path).unwrap();
    assert_eq!(replay.records, vec![submitted(1)]);
    assert!(replay.truncated_tail, "partial final line flagged");
    assert_eq!(replay.corrupt_lines, 0, "a tail is not corruption");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_mid_file_line_is_skipped_and_counted() {
    let dir = scratch("corrupt");
    let path = dir.join("jobs.wal");
    let wal = Wal::open(&path).unwrap();
    wal.append(&submitted(1)).unwrap();
    wal.append_short(&WalRecord::Started { job: 1, attempt: 0 })
        .unwrap();
    wal.append(&WalRecord::Interrupted {
        job: 1,
        attempt: 0,
        reason: "chaos".into(),
    })
    .unwrap();
    let replay = Wal::replay(&path).unwrap();
    assert_eq!(replay.corrupt_lines, 1, "torn line counted");
    assert!(!replay.truncated_tail);
    assert_eq!(replay.records.len(), 2, "records around the tear survive");
    // Losing the Started record degrades the phase, never the job: the
    // ledger still knows the job and still schedules it.
    let ledger = replay.ledger();
    let entry = ledger.get(1).unwrap();
    assert_eq!(entry.phase, JobPhase::Interrupted { attempt: 0 });
    assert_eq!(ledger.open_jobs(), vec![1]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_fails_crc_and_is_skipped() {
    let dir = scratch("bitflip");
    let path = dir.join("jobs.wal");
    let wal = Wal::open(&path).unwrap();
    wal.append(&submitted(1)).unwrap();
    wal.append(&submitted(2)).unwrap();
    let text = fs::read_to_string(&path).unwrap();
    // Flip a digit inside the first line's payload (job id 1 -> 7).
    let flipped = text.replacen("\"job\":1", "\"job\":7", 1);
    assert_ne!(flipped, text);
    fs::write(&path, flipped).unwrap();
    let replay = Wal::replay(&path).unwrap();
    assert_eq!(replay.corrupt_lines, 1);
    assert_eq!(replay.records, vec![submitted(2)]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn duplicated_records_replay_idempotently() {
    let dir = scratch("dup");
    let path = dir.join("jobs.wal");
    let wal = Wal::open(&path).unwrap();
    let complete = WalRecord::Completed {
        job: 1,
        attempt: 0,
        report_digest: 7,
    };
    wal.append(&submitted(1)).unwrap();
    for _ in 0..3 {
        wal.append(&WalRecord::Started { job: 1, attempt: 0 })
            .unwrap();
    }
    wal.append(&complete).unwrap();
    wal.append(&complete).unwrap();
    let ledger = Wal::replay(&path).unwrap().ledger();
    let entry = ledger.get(1).unwrap();
    assert_eq!(entry.phase, JobPhase::Completed { report_digest: 7 });
    assert_eq!(entry.attempts, 1, "duplicates do not inflate attempts");
    let _ = fs::remove_dir_all(&dir);
}
