//! WAL replay robustness: truncated tails, corrupt lines, duplicates.

use std::fs;
use std::path::PathBuf;

use service::{JobPhase, JobSpec, Wal, WalRecord};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wal-replay-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn submitted(job: u64) -> WalRecord {
    WalRecord::Submitted {
        job,
        spec: JobSpec::nano("tenant"),
    }
}

#[test]
fn append_then_replay_round_trips() {
    let dir = scratch("round-trip");
    let path = dir.join("jobs.wal");
    let wal = Wal::open(&path).unwrap();
    let records = vec![
        submitted(1),
        WalRecord::Started { job: 1, attempt: 0 },
        WalRecord::Completed {
            job: 1,
            attempt: 0,
            report_digest: 0xdead_beef,
            wall_ms: 12,
        },
    ];
    for rec in &records {
        wal.append(rec).unwrap();
    }
    let replay = Wal::replay(&path).unwrap();
    assert_eq!(replay.records, records);
    assert_eq!(replay.corrupt_lines, 0);
    assert!(!replay.truncated_tail);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_file_replays_empty() {
    let dir = scratch("missing");
    let replay = Wal::replay(&dir.join("nope.wal")).unwrap();
    assert!(replay.records.is_empty());
    assert!(!replay.truncated_tail);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_tail_is_dropped_and_flagged() {
    let dir = scratch("tail");
    let path = dir.join("jobs.wal");
    let wal = Wal::open(&path).unwrap();
    wal.append(&submitted(1)).unwrap();
    wal.append(&WalRecord::Started { job: 1, attempt: 0 })
        .unwrap();
    // Simulate a crash mid-append: chop the file mid-line, no newline.
    let text = fs::read_to_string(&path).unwrap();
    fs::write(&path, &text[..text.len() - 12]).unwrap();
    let replay = Wal::replay(&path).unwrap();
    assert_eq!(replay.records, vec![submitted(1)]);
    assert!(replay.truncated_tail, "partial final line flagged");
    assert_eq!(replay.corrupt_lines, 0, "a tail is not corruption");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_mid_file_line_is_skipped_and_counted() {
    let dir = scratch("corrupt");
    let path = dir.join("jobs.wal");
    let wal = Wal::open(&path).unwrap();
    wal.append(&submitted(1)).unwrap();
    wal.append_short(&WalRecord::Started { job: 1, attempt: 0 })
        .unwrap();
    wal.append(&WalRecord::Interrupted {
        job: 1,
        attempt: 0,
        reason: "chaos".into(),
    })
    .unwrap();
    let replay = Wal::replay(&path).unwrap();
    assert_eq!(replay.corrupt_lines, 1, "torn line counted");
    assert!(!replay.truncated_tail);
    assert_eq!(replay.records.len(), 2, "records around the tear survive");
    // Losing the Started record degrades the phase, never the job: the
    // ledger still knows the job and still schedules it.
    let ledger = replay.ledger();
    let entry = ledger.get(1).unwrap();
    assert_eq!(entry.phase, JobPhase::Interrupted { attempt: 0 });
    assert_eq!(ledger.open_jobs(), vec![1]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_fails_crc_and_is_skipped() {
    let dir = scratch("bitflip");
    let path = dir.join("jobs.wal");
    let wal = Wal::open(&path).unwrap();
    wal.append(&submitted(1)).unwrap();
    wal.append(&submitted(2)).unwrap();
    let text = fs::read_to_string(&path).unwrap();
    // Flip a digit inside the first line's payload (job id 1 -> 7).
    let flipped = text.replacen("\"job\":1", "\"job\":7", 1);
    assert_ne!(flipped, text);
    fs::write(&path, flipped).unwrap();
    let replay = Wal::replay(&path).unwrap();
    assert_eq!(replay.corrupt_lines, 1);
    assert_eq!(replay.records, vec![submitted(2)]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn duplicated_records_replay_idempotently() {
    let dir = scratch("dup");
    let path = dir.join("jobs.wal");
    let wal = Wal::open(&path).unwrap();
    let complete = WalRecord::Completed {
        job: 1,
        attempt: 0,
        report_digest: 7,
        wall_ms: 5,
    };
    wal.append(&submitted(1)).unwrap();
    for _ in 0..3 {
        wal.append(&WalRecord::Started { job: 1, attempt: 0 })
            .unwrap();
    }
    wal.append(&complete).unwrap();
    wal.append(&complete).unwrap();
    let ledger = Wal::replay(&path).unwrap().ledger();
    let entry = ledger.get(1).unwrap();
    assert_eq!(entry.phase, JobPhase::Completed { report_digest: 7 });
    assert_eq!(entry.attempts, 1, "duplicates do not inflate attempts");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn rotation_mid_job_replays_across_segments() {
    let dir = scratch("rotate");
    let path = dir.join("jobs.wal");
    // Rotate every 2 records so a single job's history spans segments.
    let wal = Wal::open_with_rotation(&path, 2).unwrap();
    wal.append(&submitted(1)).unwrap();
    wal.append(&WalRecord::Started { job: 1, attempt: 0 })
        .unwrap();
    // Next append rotates: the Interrupted/Started/Completed tail lands
    // in fresh segments while Submitted lives in a sealed one.
    wal.append(&WalRecord::Interrupted {
        job: 1,
        attempt: 0,
        reason: "chaos".into(),
    })
    .unwrap();
    wal.append(&WalRecord::Started { job: 1, attempt: 1 })
        .unwrap();
    wal.append(&WalRecord::Completed {
        job: 1,
        attempt: 1,
        report_digest: 3,
        wall_ms: 8,
    })
    .unwrap();
    assert!(
        !Wal::segment_paths(&path).is_empty(),
        "rotation must have sealed at least one segment"
    );
    let replay = Wal::replay(&path).unwrap();
    assert_eq!(replay.records.len(), 5, "records stitched across segments");
    assert!(replay.segment_files >= 1);
    let ledger = replay.ledger();
    let entry = ledger.get(1).unwrap();
    assert_eq!(entry.phase, JobPhase::Completed { report_digest: 3 });
    assert_eq!(entry.attempts, 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_newest_segment_only_flags_the_tail() {
    let dir = scratch("rotate-tail");
    let path = dir.join("jobs.wal");
    let wal = Wal::open_with_rotation(&path, 1).unwrap();
    wal.append(&submitted(1)).unwrap();
    wal.append(&submitted(2)).unwrap();
    wal.append(&WalRecord::Started { job: 2, attempt: 0 })
        .unwrap();
    drop(wal);
    // Chop the *active* (newest) file mid-line: crash during append.
    let text = fs::read_to_string(&path).unwrap();
    assert!(!text.is_empty(), "active file holds the newest record");
    fs::write(&path, &text[..text.len() - 9]).unwrap();
    let replay = Wal::replay(&path).unwrap();
    assert!(
        replay.truncated_tail,
        "newest-file tear is a truncated tail"
    );
    assert_eq!(replay.corrupt_lines, 0);
    assert_eq!(replay.records, vec![submitted(1), submitted(2)]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compaction_collapses_segments_and_preserves_the_ledger() {
    let dir = scratch("compact");
    let path = dir.join("jobs.wal");
    let wal = Wal::open_with_rotation(&path, 2).unwrap();
    for job in 1..=3u64 {
        wal.append(&submitted(job)).unwrap();
        wal.append(&WalRecord::Started { job, attempt: 0 }).unwrap();
        wal.append(&WalRecord::Completed {
            job,
            attempt: 0,
            report_digest: job * 11,
            wall_ms: job * 10,
        })
        .unwrap();
    }
    // Job 4 is left open mid-flight across the compaction.
    wal.append(&submitted(4)).unwrap();
    wal.append(&WalRecord::Started { job: 4, attempt: 0 })
        .unwrap();
    drop(wal);

    let before = Wal::replay(&path).unwrap();
    assert!(before.segment_files >= 1, "fixture must actually rotate");
    let ledger = before.ledger();
    let removed = service::wal::compact(&path, &ledger).unwrap();
    assert!(removed >= 1, "compaction deletes sealed segments");
    assert!(Wal::segment_paths(&path).is_empty());

    let after = Wal::replay(&path).unwrap();
    assert_eq!(after.segment_files, 0);
    assert_eq!(after.corrupt_lines, 0);
    assert!(!after.truncated_tail);
    let compacted = after.ledger();
    for job in 1..=3u64 {
        assert_eq!(
            compacted.get(job).unwrap().phase,
            JobPhase::Completed {
                report_digest: job * 11
            }
        );
        assert_eq!(compacted.get(job).unwrap().wall_ms, job * 10);
    }
    assert_eq!(compacted.open_jobs(), vec![4], "open job survives");
    assert_eq!(compacted.next_id(), 5);
    // The compacted image is strictly smaller than the full history.
    assert!(after.records.len() < before.records.len());
    // And appends keep working on the compacted active file.
    let wal = Wal::open_with_rotation(&path, 2).unwrap();
    wal.append(&WalRecord::Completed {
        job: 4,
        attempt: 0,
        report_digest: 44,
        wall_ms: 1,
    })
    .unwrap();
    let ledger = Wal::replay(&path).unwrap().ledger();
    assert_eq!(
        ledger.get(4).unwrap().phase,
        JobPhase::Completed { report_digest: 44 }
    );
    let _ = fs::remove_dir_all(&dir);
}
