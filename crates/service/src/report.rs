//! The semantic report projection: the bit-identity oracle.
//!
//! A [`FlowReport`] mixes *results* (fronts, the selected design, the
//! verification verdict) with *run provenance* (event log, wall-clock
//! timings, telemetry profile, evaluations-this-run). Provenance
//! legitimately differs between a clean run and a killed-and-resumed
//! one; results must not. This module projects a report onto its
//! semantic fields only — the same exclusion set the conformance
//! harness's `flatten_report` uses — so the projection's serialised
//! bytes can be compared across *processes* (the kill-restart e2e
//! writes them to disk on both sides) and its FNV digest can ride in a
//! `Completed` WAL record.

use hierflow::flow::FlowReport;
use serde::Value;

/// The result-bearing fields of a [`FlowReport`], in serialisation
/// order. Everything else is run provenance.
pub const SEMANTIC_FIELDS: [&str; 8] = [
    "front",
    "system_front",
    "selected",
    "selected_x",
    "final_sizing",
    "verification",
    "circuit_evaluations",
    "system_evaluations",
];

/// Projects a report onto its semantic fields.
pub fn semantic_value(report: &FlowReport) -> Value {
    let full = serde_json::to_value(report);
    let mut fields = Vec::with_capacity(SEMANTIC_FIELDS.len());
    for key in SEMANTIC_FIELDS {
        if let Some(v) = full.get(key) {
            fields.push((key.to_string(), v.clone()));
        }
    }
    Value::Object(fields)
}

/// The projection as canonical pretty JSON — what the daemon persists
/// as `report_semantic.json` and what the kill-restart e2e compares
/// byte for byte.
pub fn semantic_json(report: &FlowReport) -> String {
    serde_json::to_string_pretty(&semantic_value(report)).unwrap_or_default()
}

/// FNV-1a digest of the compact semantic projection; recorded in
/// `Completed` WAL records and compared by the chaos soak.
pub fn report_digest(report: &FlowReport) -> u64 {
    let compact = serde_json::to_string(&semantic_value(report)).unwrap_or_default();
    evalcache::fnv1a(compact.as_bytes())
}
