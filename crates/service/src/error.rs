//! Service-level error type.
//!
//! Deliberately small: admission rejections are *not* errors (they are
//! structured [`crate::Rejection`] responses with a retry hint), and
//! per-job flow failures are terminal job states recorded in the WAL,
//! not daemon failures. What remains is the daemon's own plumbing —
//! unusable data directory, unwritable WAL, malformed job specs.

use std::fmt;

/// A daemon-level failure (never a per-job optimisation failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Filesystem trouble on a daemon-owned path.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error text.
        message: String,
    },
    /// The write-ahead log could not be appended or opened.
    Wal {
        /// What went wrong.
        message: String,
    },
    /// A job spec could not be parsed or validated.
    Spec {
        /// What was wrong with it.
        message: String,
    },
}

impl ServiceError {
    /// Builds an [`ServiceError::Io`].
    pub fn io(path: impl Into<String>, message: impl Into<String>) -> Self {
        ServiceError::Io {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Builds a [`ServiceError::Wal`].
    pub fn wal(message: impl Into<String>) -> Self {
        ServiceError::Wal {
            message: message.into(),
        }
    }

    /// Builds a [`ServiceError::Spec`].
    pub fn spec(message: impl Into<String>) -> Self {
        ServiceError::Spec {
            message: message.into(),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io { path, message } => write!(f, "i/o error on {path}: {message}"),
            ServiceError::Wal { message } => write!(f, "write-ahead log error: {message}"),
            ServiceError::Spec { message } => write!(f, "invalid job spec: {message}"),
        }
    }
}

impl std::error::Error for ServiceError {}
