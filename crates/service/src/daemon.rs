//! The daemon: recovery, scheduling, execution, status.
//!
//! A [`Daemon`] owns a data directory:
//!
//! ```text
//! <data>/
//!   jobs.wal                  append-only, fsync'd job log
//!   evalcache/                optional cross-job memo store
//!   jobs/<id>/run/            the job's hierflow checkpoint directory
//!   jobs/<id>/report_semantic.json   bit-identity projection
//!   jobs/<id>/report.json            full report (incl. provenance)
//!   status.json               periodic scheduler snapshot
//! ```
//!
//! **Recovery.** `open` replays the WAL (tolerating truncated tails
//! and corrupt lines), folds it into a [`Ledger`], and re-queues every
//! non-terminal job. A job that was `Running` when the process died
//! resumes from whatever stage checkpoints its run directory holds —
//! the flow's resume contract makes the finished report bit-identical
//! to an uninterrupted run, which is the service's headline guarantee.
//!
//! **Scheduling.** Workers claim jobs round-robin across *tenants*
//! (not submission order), so one tenant's burst cannot starve
//! another's single job. Admission is bounded (see
//! [`crate::admission`]); `submit` refuses with a structured
//! retry-after rather than queueing unboundedly.
//!
//! **Chaos.** With a [`ChaosPolicy`] installed, execution weaves the
//! policy's deterministic faults into every seam: panics before the
//! flow, simulated crashes mid-stage, checkpoint corruption after
//! interruptions, torn WAL appends. The same job under the same policy
//! replays the same fault schedule.

use std::collections::BTreeSet;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use exec::{CancelToken, RetryPolicy};
use hierflow::HierarchicalFlow;
use serde::{Deserialize, Serialize};

use crate::admission::{AdmissionConfig, RejectReason, Rejection};
use crate::chaos::ChaosPolicy;
use crate::error::ServiceError;
use crate::jobspec::JobSpec;
use crate::report::{report_digest, semantic_json};
use crate::wal::{self, JobPhase, Ledger, Wal, WalRecord, WAL_FILE};

/// Daemon settings.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Root of the daemon's durable state.
    pub data_dir: PathBuf,
    /// Admission limits.
    pub admission: AdmissionConfig,
    /// Optional chaos policy (tests and soak runs).
    pub chaos: Option<ChaosPolicy>,
    /// Concurrent job workers in [`Daemon::run_until_idle`].
    pub workers: usize,
    /// Hard per-job attempt budget — the safety valve above the chaos
    /// policy's own fault bound.
    pub max_attempts: u32,
    /// Share one evaluation memo store across jobs (under
    /// `<data>/evalcache`) for specs that opt into caching.
    pub shared_cache: bool,
    /// Rotate the WAL to a sealed segment every this many records;
    /// `0` disables rotation (single-file WAL, the PR 6 behaviour).
    /// Sealed segments are compacted away at the next `open`.
    pub wal_rotate_records: usize,
}

impl DaemonConfig {
    /// Defaults rooted at `data_dir`: single worker, default admission,
    /// no chaos.
    pub fn new<P: AsRef<Path>>(data_dir: P) -> Self {
        DaemonConfig {
            data_dir: data_dir.as_ref().to_path_buf(),
            admission: AdmissionConfig::default(),
            chaos: None,
            workers: 1,
            max_attempts: 8,
            shared_cache: true,
            wal_rotate_records: 0,
        }
    }
}

/// What `open` found while recovering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Valid records replayed from the WAL.
    pub replayed_records: usize,
    /// Corrupt mid-file lines skipped.
    pub corrupt_lines: usize,
    /// Whether the WAL ended in a torn partial line.
    pub truncated_tail: bool,
    /// Jobs re-queued for execution (non-terminal after the fold).
    pub resumed_jobs: usize,
    /// Sealed WAL segments compacted away at startup.
    pub compacted_segments: usize,
}

/// The outcome of a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum Submission {
    /// Admitted; the id is durable (the `Submitted` record is fsync'd
    /// before this returns).
    Accepted(u64),
    /// A keyed submit matched an existing `client_job_key`: the
    /// original job id, no new work queued. Retrying a submit whose
    /// ACK was lost lands here with the id the client never saw.
    Deduped(u64),
    /// Refused by admission control; retry after the hint.
    Rejected(Rejection),
}

/// One row of [`DaemonStatus`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRow {
    /// Job id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Current phase.
    pub phase: JobPhase,
    /// Attempts started.
    pub attempts: u32,
}

/// Point-in-time scheduler snapshot (persisted as `status.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonStatus {
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs being executed right now.
    pub running: usize,
    /// Terminal successes.
    pub completed: usize,
    /// Terminal failures.
    pub failed: usize,
    /// Chaos faults injected so far (all channels).
    pub chaos_faults: u64,
    /// WAL appends deliberately torn by chaos.
    pub wal_short_writes: u64,
    /// Unparseable `incoming/` drops quarantined this process.
    pub quarantined: u64,
    /// Whether the daemon is draining (refusing new work).
    pub draining: bool,
    /// What recovery found at startup.
    pub recovery: RecoveryReport,
    /// Every known job.
    pub jobs: Vec<JobRow>,
}

struct SchedState {
    ledger: Ledger,
    queue: Vec<u64>,
    active: BTreeSet<u64>,
    rr_cursor: usize,
    chaos_faults: u64,
    wal_short_writes: u64,
    quarantined: u64,
}

/// The long-running optimisation service.
pub struct Daemon {
    cfg: DaemonConfig,
    wal: Wal,
    state: Mutex<SchedState>,
    recovery: RecoveryReport,
    draining: AtomicBool,
}

impl Daemon {
    /// Opens (creating or recovering) the daemon over its data
    /// directory: replays the WAL and re-queues unfinished jobs.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] when the directory or WAL is unusable.
    pub fn open(cfg: DaemonConfig) -> Result<Self, ServiceError> {
        fs::create_dir_all(cfg.data_dir.join("jobs"))
            .map_err(|e| ServiceError::io(cfg.data_dir.display().to_string(), e.to_string()))?;
        let wal_path = cfg.data_dir.join(WAL_FILE);
        let replay = Wal::replay(&wal_path)?;
        let ledger = replay.ledger();
        // Startup compaction: sealed segments hold only history the
        // ledger fold has already absorbed, so replace the whole chain
        // with the ledger's compact image. Safe to crash anywhere in —
        // the fold is idempotent and terminal-sticky.
        let compacted_segments = if replay.segment_files > 0 {
            wal::compact(&wal_path, &ledger)?
        } else {
            0
        };
        let queue = ledger.open_jobs();
        let recovery = RecoveryReport {
            replayed_records: replay.records.len(),
            corrupt_lines: replay.corrupt_lines,
            truncated_tail: replay.truncated_tail,
            resumed_jobs: queue.len(),
            compacted_segments,
        };
        telemetry::counter_add("daemon.recovered_jobs", recovery.resumed_jobs as u64);
        let wal = Wal::open_with_rotation(&wal_path, cfg.wal_rotate_records)?;
        Ok(Daemon {
            cfg,
            wal,
            state: Mutex::new(SchedState {
                ledger,
                queue,
                active: BTreeSet::new(),
                rr_cursor: 0,
                chaos_faults: 0,
                wal_short_writes: 0,
                quarantined: 0,
            }),
            recovery,
            draining: AtomicBool::new(false),
        })
    }

    /// The recovery summary from `open`.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.cfg
    }

    fn chaos(&self) -> ChaosPolicy {
        self.cfg.chaos.unwrap_or_else(ChaosPolicy::quiet)
    }

    fn job_dir(&self, id: u64) -> PathBuf {
        self.cfg.data_dir.join("jobs").join(id.to_string())
    }

    fn shared_cache_dir(&self) -> Option<PathBuf> {
        self.cfg
            .shared_cache
            .then(|| self.cfg.data_dir.join("evalcache"))
    }

    /// Submits a job. On acceptance the `Submitted` WAL record is
    /// durable (written + fsync'd) before the id is returned — a crash
    /// one instruction later loses nothing.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] for invalid specs or a WAL that cannot
    /// be appended; admission refusals are the `Ok(Rejected)` arm, not
    /// errors.
    pub fn submit(&self, spec: &JobSpec) -> Result<Submission, ServiceError> {
        self.submit_keyed(spec, None)
    }

    /// Submits a job with an optional idempotency key.
    ///
    /// With a key, resubmission — in this process or after a restart —
    /// returns [`Submission::Deduped`] with the original id instead of
    /// queueing a second job. The reservation is durable *before* the
    /// `Submitted` record (`SubmitKey` first), so a crash between the
    /// two appends is recoverable: the retry finds the orphaned
    /// reservation and completes the submission under the reserved id.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_keyed(
        &self,
        spec: &JobSpec,
        key: Option<&str>,
    ) -> Result<Submission, ServiceError> {
        spec.validate()?;
        let mut st = self.lock();
        if let Some(key) = key {
            if let Some(id) = st.ledger.lookup_key(&spec.tenant, key) {
                if st.ledger.get(id).is_some() {
                    telemetry::counter_add("daemon.deduped", 1);
                    return Ok(Submission::Deduped(id));
                }
                // Crash window: the reservation landed but `Submitted`
                // did not. Complete the original submission under the
                // reserved id — no admission re-check; it was admitted
                // when the reservation was made.
                let rec = WalRecord::Submitted {
                    job: id,
                    spec: spec.clone(),
                };
                self.wal.append(&rec)?;
                st.ledger.apply(&rec);
                st.queue.push(id);
                telemetry::counter_add("daemon.submitted", 1);
                return Ok(Submission::Accepted(id));
            }
        }
        if self.is_draining() {
            telemetry::counter_add("daemon.rejected", 1);
            return Ok(Submission::Rejected(Rejection {
                reason: RejectReason::Draining,
                retry_after_ms: self.cfg.admission.retry_after_ms,
                open_jobs: st.ledger.open_total(),
            }));
        }
        if let Err(rej) = self.cfg.admission.admit(
            st.ledger.open_total(),
            st.ledger.open_for_tenant(&spec.tenant),
            st.ledger.spent_ms_for_tenant(&spec.tenant),
        ) {
            telemetry::counter_add("daemon.rejected", 1);
            return Ok(Submission::Rejected(rej));
        }
        let id = st.ledger.next_id();
        if let Some(key) = key {
            let reserve = WalRecord::SubmitKey {
                job: id,
                tenant: spec.tenant.clone(),
                key: key.to_string(),
            };
            self.wal.append(&reserve)?;
            st.ledger.apply(&reserve);
        }
        let rec = WalRecord::Submitted {
            job: id,
            spec: spec.clone(),
        };
        // The durability point: never chaos-torn, and an append failure
        // fails the submit rather than admitting a job that would
        // vanish on restart.
        self.wal.append(&rec)?;
        st.ledger.apply(&rec);
        st.queue.push(id);
        telemetry::counter_add("daemon.submitted", 1);
        Ok(Submission::Accepted(id))
    }

    /// Flips the daemon into draining mode: new submissions are
    /// refused with [`RejectReason::Draining`] and workers stop
    /// claiming queued jobs (in-flight jobs finish; queued jobs stay
    /// durable in the WAL for the next start).
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        telemetry::counter_add("daemon.drains", 1);
    }

    /// Whether [`drain`](Self::drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Counts a quarantined `incoming/` drop in the status snapshot.
    pub fn note_quarantined(&self) {
        self.lock().quarantined += 1;
        telemetry::counter_add("daemon.quarantined", 1);
    }

    /// Claims and executes one job if any is queued; returns its id.
    pub fn run_next(&self) -> Option<u64> {
        let id = self.claim_next()?;
        self.execute_job(id);
        self.lock().active.remove(&id);
        Some(id)
    }

    /// Drains the queue with `cfg.workers` concurrent workers; returns
    /// the number of jobs executed.
    pub fn run_until_idle(&self) -> usize {
        let workers = self.cfg.workers.max(1);
        if workers == 1 {
            let mut n = 0;
            while self.run_next().is_some() {
                n += 1;
            }
            return n;
        }
        let counter = Mutex::new(0usize);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while self.run_next().is_some() {
                        *counter.lock().unwrap_or_else(|p| p.into_inner()) += 1;
                    }
                });
            }
        });
        counter.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    /// Round-robin across tenants: each claim advances a cursor over
    /// the distinct tenants that currently have queued work, then takes
    /// that tenant's oldest job.
    fn claim_next(&self) -> Option<u64> {
        if self.is_draining() {
            return None;
        }
        let mut st = self.lock();
        if st.queue.is_empty() {
            return None;
        }
        let mut tenants: Vec<String> = st
            .queue
            .iter()
            .filter_map(|id| st.ledger.get(*id).map(|e| e.spec.tenant.clone()))
            .collect();
        tenants.sort();
        tenants.dedup();
        let tenant = tenants[st.rr_cursor % tenants.len()].clone();
        st.rr_cursor = st.rr_cursor.wrapping_add(1);
        let pos = st
            .queue
            .iter()
            .position(|id| st.ledger.get(*id).is_some_and(|e| e.spec.tenant == tenant))
            .expect("tenant derived from queue");
        let id = st.queue.remove(pos);
        st.active.insert(id);
        Some(id)
    }

    /// Runs one job to a terminal state, weaving in chaos faults and
    /// resuming from checkpoints across interruptions.
    fn execute_job(&self, id: u64) {
        let Some((spec, mut attempt)) = self
            .lock()
            .ledger
            .get(id)
            .map(|e| (e.spec.clone(), e.attempts))
        else {
            return;
        };
        let chaos = self.chaos();
        let run_dir = self.job_dir(id).join("run");
        let shared_cache = self.shared_cache_dir();
        let retry = RetryPolicy::transient_backoff();
        // Wall-clock for the tenant's compute-budget charge. Restart
        // loses the earlier process's share — the budget under-charges
        // crashed jobs rather than double-charging resumed ones.
        let started = Instant::now();
        loop {
            if attempt >= self.cfg.max_attempts {
                self.record(
                    id,
                    attempt,
                    WalRecord::Failed {
                        job: id,
                        attempt,
                        error: "attempt budget exhausted".into(),
                    },
                    4,
                );
                return;
            }
            if attempt > 0 {
                // Deterministic slot-keyed backoff between attempts —
                // the same policy the exec pool applies to transient
                // task faults, keyed here by job id.
                std::thread::sleep(retry.delay_for(attempt as usize, id as usize));
            }
            self.record(id, attempt, WalRecord::Started { job: id, attempt }, 1);
            if chaos.inject_panic(id, attempt) {
                self.bump_chaos();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    panic!("chaos: injected worker panic (job {id} attempt {attempt})")
                }));
                debug_assert!(result.is_err());
                self.record(
                    id,
                    attempt,
                    WalRecord::Interrupted {
                        job: id,
                        attempt,
                        reason: "worker panic (injected)".into(),
                    },
                    2,
                );
                attempt += 1;
                continue;
            }
            let cancel = match chaos.crash_after_polls(id, attempt) {
                Some(polls) => {
                    self.bump_chaos();
                    CancelToken::cancel_after(polls)
                }
                None => CancelToken::new(),
            };
            let config = spec.flow_config(shared_cache.as_deref());
            if spec.preset.seeded_stage1() {
                seed_stage1(&run_dir, &config);
            }
            let mut flow = HierarchicalFlow::new(config).with_cancel_token(cancel);
            if let Some(injector) = chaos.sim_faults(id) {
                flow = flow.with_fault_injector(injector);
            }
            match flow.resume(&run_dir) {
                Ok(report) => {
                    let digest = report_digest(&report);
                    self.persist_report(id, &report);
                    let wall_ms = started.elapsed().as_millis() as u64;
                    self.record(
                        id,
                        attempt,
                        WalRecord::Completed {
                            job: id,
                            attempt,
                            report_digest: digest,
                            wall_ms,
                        },
                        3,
                    );
                    telemetry::counter_add("daemon.completed", 1);
                    telemetry::observe_secs("daemon.job_wall", started.elapsed());
                    return;
                }
                Err(e) if e.is_resumable_interruption() => {
                    self.record(
                        id,
                        attempt,
                        WalRecord::Interrupted {
                            job: id,
                            attempt,
                            reason: e.to_string(),
                        },
                        2,
                    );
                    if chaos.corrupt_checkpoint(id, attempt) {
                        self.bump_chaos();
                        smash_newest_artifact(&run_dir);
                    }
                    attempt += 1;
                }
                Err(e) => {
                    self.record(
                        id,
                        attempt,
                        WalRecord::Failed {
                            job: id,
                            attempt,
                            error: e.to_string(),
                        },
                        4,
                    );
                    telemetry::counter_add("daemon.failed", 1);
                    return;
                }
            }
        }
    }

    /// Writes the full and semantic reports atomically into the job
    /// directory. Best-effort: the WAL record (with the semantic
    /// digest) is the durable truth; a full disk here degrades the
    /// artifact, not the ledger.
    fn persist_report(&self, id: u64, report: &hierflow::flow::FlowReport) {
        let dir = self.job_dir(id);
        let _ = fs::create_dir_all(&dir);
        let full = serde_json::to_string_pretty(report).unwrap_or_default();
        let _ = atomic_write(&dir.join("report.json"), &full);
        let _ = atomic_write(&dir.join("report_semantic.json"), &semantic_json(report));
    }

    /// Appends a record (chaos may tear non-`Submitted` channels) and
    /// folds it into the in-memory ledger. The fold always uses the
    /// *intact* record: a torn WAL line models losing the record on
    /// disk, not the daemon forgetting what it just did.
    fn record(&self, job: u64, attempt: u32, rec: WalRecord, channel: u64) {
        let torn = self.chaos().short_write(job, attempt, channel);
        let outcome = if torn {
            self.wal.append_short(&rec)
        } else {
            self.wal.append(&rec)
        };
        if let Err(e) = outcome {
            // A WAL that stops accepting appends degrades durability,
            // never in-memory correctness; surface it loudly.
            eprintln!("hiersizerd: WAL append failed: {e}");
        }
        let mut st = self.lock();
        if torn {
            st.wal_short_writes += 1;
            st.chaos_faults += 1;
        }
        st.ledger.apply(&rec);
    }

    fn bump_chaos(&self) {
        self.lock().chaos_faults += 1;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// One job's status row, if the job exists.
    pub fn job_row(&self, id: u64) -> Option<JobRow> {
        let st = self.lock();
        st.ledger.get(id).map(|entry| JobRow {
            id: entry.id,
            tenant: entry.spec.tenant.clone(),
            phase: entry.phase.clone(),
            attempts: entry.attempts,
        })
    }

    /// The hierflow run directory for a job (where `events.json` and
    /// stage checkpoints land). Exists only once an attempt has run.
    pub fn job_run_dir(&self, id: u64) -> PathBuf {
        self.job_dir(id).join("run")
    }

    /// Current scheduler snapshot.
    pub fn status(&self) -> DaemonStatus {
        let st = self.lock();
        let mut status = DaemonStatus {
            queued: st.queue.len(),
            running: st.active.len(),
            completed: 0,
            failed: 0,
            chaos_faults: st.chaos_faults,
            wal_short_writes: st.wal_short_writes,
            quarantined: st.quarantined,
            draining: self.is_draining(),
            recovery: self.recovery.clone(),
            jobs: Vec::new(),
        };
        for entry in st.ledger.jobs() {
            match entry.phase {
                JobPhase::Completed { .. } => status.completed += 1,
                JobPhase::Failed { .. } => status.failed += 1,
                _ => {}
            }
            status.jobs.push(JobRow {
                id: entry.id,
                tenant: entry.spec.tenant.clone(),
                phase: entry.phase.clone(),
                attempts: entry.attempts,
            });
        }
        status
    }

    /// Persists `status.json` atomically into the data directory.
    pub fn write_status(&self) -> Result<(), ServiceError> {
        let status = self.status();
        let text =
            serde_json::to_string_pretty(&status).map_err(|e| ServiceError::wal(e.to_string()))?;
        let path = self.cfg.data_dir.join("status.json");
        atomic_write(&path, &text)
            .map_err(|e| ServiceError::io(path.display().to_string(), e.to_string()))
    }
}

/// Seeds a Nano job's stage-1 front: three real testbench evaluations
/// of a nominal-family sweep, a pure function of the testbench — so
/// every attempt, and every daemon process that resumes the job,
/// re-derives the identical artifact when it is missing.
fn seed_stage1(run_dir: &Path, config: &hierflow::flow::FlowConfig) {
    use hierflow::checkpoint::{RunDir, STAGE1_FRONT};
    if run_dir.join(STAGE1_FRONT).exists() {
        return;
    }
    let artifact = conformance::seeded_stage1_front(&config.testbench, 3);
    if let Ok(run) = RunDir::create(run_dir) {
        let _ = run.save(STAGE1_FRONT, &artifact);
    }
}

/// Smashes the newest stage artifact in a run directory — truncates it
/// mid-token, modelling a torn write that bypassed the atomic rename.
/// The resume path must quarantine the casualty and recompute that
/// stage. Stage 1 is spared (for seeded presets it is input, not a
/// recovery artifact, and a GA recompute would dominate the soak);
/// when no later stage has landed yet the event log takes the hit,
/// exercising the events-quarantine path instead.
fn smash_newest_artifact(run_dir: &Path) {
    use hierflow::checkpoint::{EVENTS_FILE, STAGE2_CHARACTERIZED, STAGE4_SYSTEM, STAGE5_SELECTED};
    for name in [
        STAGE5_SELECTED,
        STAGE4_SYSTEM,
        STAGE2_CHARACTERIZED,
        EVENTS_FILE,
    ] {
        let path = run_dir.join(name);
        if let Ok(text) = fs::read_to_string(&path) {
            let keep = text.len() / 2;
            let _ = fs::write(&path, &text[..keep]);
            return;
        }
    }
}

/// Atomic tmp + rename write, the same discipline as checkpoints.
fn atomic_write(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_round_robin_interleaves_claims() {
        let dir = std::env::temp_dir().join(format!("svc-rr-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let daemon = Daemon::open(DaemonConfig::new(&dir)).unwrap();
        for tenant in ["a", "a", "a", "b", "b", "b"] {
            let sub = daemon.submit(&JobSpec::nano(tenant)).unwrap();
            assert!(matches!(sub, Submission::Accepted(_)));
        }
        let mut order = Vec::new();
        while let Some(id) = daemon.claim_next() {
            let tenant = daemon.lock().ledger.get(id).unwrap().spec.tenant.clone();
            order.push(tenant);
        }
        assert_eq!(order, ["a", "b", "a", "b", "a", "b"]);
        let _ = fs::remove_dir_all(&dir);
    }
}
