//! Job descriptions: what a tenant submits.
//!
//! A [`JobSpec`] is deliberately *not* a [`FlowConfig`]: the config
//! type carries wall-clock budgets and cache paths that do not
//! serialise, and letting clients submit raw configs would make the
//! service's bit-identity contract depend on every client encoding
//! floats the same way. Instead a spec names a [`JobPreset`] plus a
//! handful of plain-typed overrides, and
//! [`JobSpec::flow_config`] maps it onto a `FlowConfig`
//! deterministically — the same spec always produces the same config,
//! so a job resumed by a fresh daemon process re-derives exactly the
//! configuration the original attempt ran under (which the checkpoint
//! manifest digest then verifies independently).

use std::path::Path;

use hierflow::flow::{CacheConfig, FlowConfig};
use serde::{Deserialize, Serialize};

use crate::error::ServiceError;

/// Named flow-budget presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPreset {
    /// Smallest flow: a trimmed-oscillator micro budget started from a
    /// deterministic seeded stage-1 front (the conformance runner's
    /// seeding — three real testbench evaluations of a nominal-family
    /// sweep — so no GA campaign). Soak tests and smoke jobs; the
    /// cheapest job that still runs characterisation, modelling,
    /// system optimisation and verification for real.
    Nano,
    /// The development-scale micro budget (the same shape the e2e suite
    /// runs): small GA campaigns, loosened spec window. Tens of
    /// seconds.
    Micro,
    /// [`FlowConfig::quick`] unchanged. Minutes.
    Quick,
}

impl JobPreset {
    /// Whether jobs of this preset start from a seeded stage-1 front
    /// (a deterministic function of the testbench) instead of paying
    /// for a circuit-GA campaign. Only [`JobPreset::Nano`].
    pub fn seeded_stage1(self) -> bool {
        matches!(self, JobPreset::Nano)
    }
}

/// A serialisable, deterministic job description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Submitting tenant (admission quotas are per tenant).
    pub tenant: String,
    /// Base flow budget.
    pub preset: JobPreset,
    /// Deterministic seed perturbation: added to the Monte-Carlo and
    /// system-GA seeds so tenants can run independent replicas of the
    /// same preset. The circuit-GA seed is left alone — feasibility of
    /// the tiny preset campaigns is tuned for it.
    pub seed_offset: u64,
    /// Override for [`FlowConfig::max_char_points`]; `0` keeps the
    /// preset's value.
    pub max_char_points: usize,
    /// Opt into the evaluation memo cache for this job.
    pub cache: bool,
}

impl JobSpec {
    /// A nano-preset spec for `tenant`.
    pub fn nano(tenant: &str) -> Self {
        JobSpec {
            tenant: tenant.to_string(),
            preset: JobPreset::Nano,
            seed_offset: 0,
            max_char_points: 0,
            cache: false,
        }
    }

    /// Returns this spec with a seed perturbation.
    #[must_use]
    pub fn with_seed_offset(mut self, offset: u64) -> Self {
        self.seed_offset = offset;
        self
    }

    /// Validates the spec's plain-typed fields.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Spec`] for an empty tenant name (the
    /// admission ledger keys on it).
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.tenant.trim().is_empty() {
            return Err(ServiceError::spec("tenant name must not be empty"));
        }
        Ok(())
    }

    /// Deterministically maps the spec onto a flow configuration.
    /// `shared_cache` is the daemon's cross-job evaluation store root;
    /// it is attached only when the spec opts into caching (results are
    /// bit-identical either way — the cache is purely a speed knob).
    pub fn flow_config(&self, shared_cache: Option<&Path>) -> FlowConfig {
        let mut cfg = match self.preset {
            JobPreset::Nano => nano_config(),
            JobPreset::Micro => micro_config(),
            JobPreset::Quick => FlowConfig::quick(),
        };
        cfg.char_mc.seed = cfg.char_mc.seed.wrapping_add(self.seed_offset);
        cfg.verify_mc.seed = cfg.verify_mc.seed.wrapping_add(self.seed_offset);
        cfg.system_ga.seed = cfg.system_ga.seed.wrapping_add(self.seed_offset);
        if self.max_char_points > 0 {
            cfg.max_char_points = self.max_char_points;
        }
        if self.cache {
            cfg.cache = CacheConfig::enabled();
            cfg.cache.shared_disk = shared_cache.map(Path::to_path_buf);
        }
        cfg
    }
}

/// The development-scale micro budget: the same knobs the end-to-end
/// suite's full-flow tests run, so every stage (including the circuit
/// GA) reliably completes.
fn micro_config() -> FlowConfig {
    let mut cfg = FlowConfig::quick();
    cfg.circuit_ga.population = 16;
    cfg.circuit_ga.generations = 3;
    cfg.char_mc.samples = 5;
    cfg.max_char_points = 4;
    cfg.system_ga.population = 32;
    cfg.system_ga.generations = 10;
    cfg.verify_mc.samples = 10;
    cfg.spec.lock_time_max = 5e-6;
    cfg.spec.current_max = 50e-3;
    cfg
}

/// The soak budget: the micro shape with the system stage and
/// Monte-Carlo budgets trimmed further. The circuit GA keeps the micro
/// campaign size — that is what the loosened spec window is tuned
/// against, and an infeasible stage-1 front would turn soak jobs into
/// permanent failures.
fn nano_config() -> FlowConfig {
    let mut cfg = micro_config();
    cfg.char_mc.samples = 3;
    cfg.max_char_points = 2;
    cfg.system_ga.population = 16;
    cfg.system_ga.generations = 6;
    cfg.verify_mc.samples = 3;
    // The conformance suite's oscillator trims: soak fleets pay for
    // dozens of complete flows, and the soak's subject is crash
    // recovery, not measurement fidelity.
    cfg.testbench.osc.warmup_periods = 2;
    cfg.testbench.osc.measure_periods = 5;
    cfg.testbench.osc.points_per_period = 16;
    cfg.testbench.osc.f_min_expected = 100e6;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec::nano("acme").with_seed_offset(7);
        let text = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn mapping_is_deterministic() {
        let spec = JobSpec {
            tenant: "a".into(),
            preset: JobPreset::Micro,
            seed_offset: 3,
            max_char_points: 2,
            cache: true,
        };
        let a = spec.flow_config(Some(Path::new("/tmp/store")));
        let b = spec.flow_config(Some(Path::new("/tmp/store")));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.max_char_points, 2);
        assert!(a.cache.enabled);
        assert_eq!(
            a.cache.shared_disk.as_deref(),
            Some(Path::new("/tmp/store"))
        );
    }

    #[test]
    fn seed_offset_moves_only_the_documented_seeds() {
        let base = JobSpec::nano("t").flow_config(None);
        let moved = JobSpec::nano("t").with_seed_offset(11).flow_config(None);
        assert_eq!(base.circuit_ga.seed, moved.circuit_ga.seed);
        assert_eq!(base.char_mc.seed + 11, moved.char_mc.seed);
        assert_eq!(base.verify_mc.seed + 11, moved.verify_mc.seed);
        assert_eq!(base.system_ga.seed + 11, moved.system_ga.seed);
    }

    #[test]
    fn presets_scale_monotonically() {
        let nano = JobSpec::nano("t").flow_config(None);
        let micro = JobSpec {
            preset: JobPreset::Micro,
            ..JobSpec::nano("t")
        }
        .flow_config(None);
        let quick = JobSpec {
            preset: JobPreset::Quick,
            ..JobSpec::nano("t")
        }
        .flow_config(None);
        assert!(nano.verify_mc.samples <= micro.verify_mc.samples);
        assert!(micro.verify_mc.samples <= quick.verify_mc.samples);
        assert!(nano.system_ga.population <= micro.system_ga.population);
    }

    #[test]
    fn empty_tenant_is_rejected() {
        let mut spec = JobSpec::nano("ok");
        spec.validate().unwrap();
        spec.tenant = "  ".into();
        assert!(spec.validate().is_err());
    }
}
