//! The TCP ingestion server wrapped around a [`Daemon`].
//!
//! One accept loop (non-blocking, so drain/shutdown flags are honoured
//! within a poll tick), one handler thread per connection. Robustness
//! posture, in order of the damage each averts:
//!
//! * **Deadlines everywhere.** Every frame read carries an absolute
//!   deadline ([`NetConfig::idle_timeout_ms`] waiting for a request,
//!   [`NetConfig::read_timeout_ms`] once its first byte arrives), so a
//!   slow-loris or half-open peer is dropped on schedule instead of
//!   pinning a thread.
//! * **Bounded frames.** The length prefix is checked against
//!   [`NetConfig::max_frame`] before the payload is read; an oversized
//!   frame costs 26 bytes of buffering, not a gigabyte.
//! * **Connection quotas.** A global accept-time cap, plus a per-tenant
//!   cap applied when a connection first submits (the tenant is not
//!   known earlier); both refuse with the admission layer's structured
//!   [`Rejection`] so clients see one backoff vocabulary.
//! * **Draining.** `Drain` (or SIGTERM in the binary) stops the accept
//!   loop and makes the daemon refuse new work; connected handlers
//!   finish their current response and close.

use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::admission::{RejectReason, Rejection};
use crate::daemon::{Daemon, Submission};
use crate::net::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::net::proto::{from_wire, to_wire, Request, Response, WireErrorKind, PROTOCOL_VERSION};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address; port 0 picks a free port (tests, and the binary
    /// writes the actual address to `<data>/net_addr`).
    pub addr: String,
    /// Maximum accepted frame payload, bytes.
    pub max_frame: usize,
    /// Whole-frame read deadline once a request has started arriving.
    pub read_timeout_ms: u64,
    /// Per-response write deadline.
    pub write_timeout_ms: u64,
    /// How long a quiet connection may sit between requests.
    pub idle_timeout_ms: u64,
    /// Global concurrent-connection cap (enforced at accept).
    pub max_conns: usize,
    /// Per-tenant concurrent-connection cap (enforced at first submit,
    /// when the connection's tenant becomes known).
    pub max_conns_per_tenant: usize,
    /// Subscribe poll interval while waiting for new events.
    pub poll_ms: u64,
    /// Hard ceiling on one subscription's lifetime.
    pub subscribe_timeout_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".into(),
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout_ms: 2_000,
            write_timeout_ms: 2_000,
            idle_timeout_ms: 10_000,
            max_conns: 64,
            max_conns_per_tenant: 8,
            poll_ms: 25,
            subscribe_timeout_ms: 120_000,
        }
    }
}

struct Shared {
    daemon: Arc<Daemon>,
    cfg: NetConfig,
    stop_accepting: AtomicBool,
    active_conns: AtomicUsize,
    tenant_conns: Mutex<BTreeMap<String, usize>>,
    requests: AtomicU64,
}

/// A running TCP server. Dropping it does *not* stop it; call
/// [`NetServer::shutdown`].
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// The bind error, when the address is unusable.
    pub fn start(daemon: Arc<Daemon>, cfg: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            daemon,
            cfg,
            stop_accepting: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            tenant_conns: Mutex::new(BTreeMap::new()),
            requests: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("net-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(NetServer {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (real port when configured with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests served so far (all kinds).
    pub fn requests_served(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> usize {
        self.shared.active_conns.load(Ordering::Relaxed)
    }

    /// Stops accepting new connections (existing handlers continue).
    pub fn stop_accepting(&self) {
        self.shared.stop_accepting.store(true, Ordering::SeqCst);
    }

    /// Graceful stop: stop accepting, wait up to `grace` for open
    /// connections to finish, then return. Handler threads past the
    /// grace period are abandoned (their sockets keep deadlines, so
    /// they terminate on their own schedule).
    pub fn shutdown(mut self, grace: Duration) {
        self.stop_accepting();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let deadline = Instant::now() + grace;
        while self.shared.active_conns.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.stop_accepting.load(Ordering::SeqCst) || shared.daemon.is_draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                telemetry::counter_add("net.conns.accepted", 1);
                if shared.active_conns.load(Ordering::Relaxed) >= shared.cfg.max_conns {
                    telemetry::counter_add("net.conns.refused", 1);
                    refuse_conn(stream, shared);
                    continue;
                }
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                let spawned =
                    std::thread::Builder::new()
                        .name("net-conn".into())
                        .spawn(move || {
                            handle_conn(stream, &conn_shared);
                        });
                if spawned.is_err() {
                    shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Tells an over-quota client to back off, with the same structured
/// rejection a full queue produces, then closes.
fn refuse_conn(mut stream: TcpStream, shared: &Shared) {
    let rejection = Rejection {
        reason: RejectReason::ConnLimit,
        retry_after_ms: shared.daemon.config().admission.retry_after_ms,
        open_jobs: 0,
    };
    let deadline = Instant::now() + Duration::from_millis(shared.cfg.write_timeout_ms);
    let _ = write_frame(
        &mut stream,
        &to_wire(&Response::Rejected { rejection }),
        deadline,
    );
}

/// Releases the per-tenant connection slot a handler bound.
fn release_tenant(shared: &Shared, tenant: &Option<String>) {
    if let Some(t) = tenant {
        let mut map = shared
            .tenant_conns
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if let Some(n) = map.get_mut(t) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                map.remove(t);
            }
        }
    }
}

fn handle_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    let mut bound_tenant: Option<String> = None;
    loop {
        let idle_deadline = Instant::now() + Duration::from_millis(shared.cfg.idle_timeout_ms);
        let payload = match read_frame(&mut stream, shared.cfg.max_frame, idle_deadline) {
            Ok(p) => p,
            Err(FrameError::Closed) => break,
            Err(FrameError::TimedOut) => {
                telemetry::counter_add("net.conns.idle_closed", 1);
                break;
            }
            Err(e) => {
                // A frame-level fault (torn, CRC, oversized, junk
                // header) leaves the stream unsynchronised: answer
                // with provenance, then close.
                telemetry::counter_add("net.frames.rejected", 1);
                let deadline = Instant::now() + Duration::from_millis(shared.cfg.write_timeout_ms);
                let _ = write_frame(
                    &mut stream,
                    &to_wire(&Response::Error {
                        kind: WireErrorKind::BadFrame,
                        message: e.to_string(),
                    }),
                    deadline,
                );
                break;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let request: Request = match from_wire(&payload) {
            Ok(r) => r,
            Err(e) => {
                telemetry::counter_add("net.requests.bad", 1);
                let deadline = Instant::now() + Duration::from_millis(shared.cfg.write_timeout_ms);
                let _ = write_frame(
                    &mut stream,
                    &to_wire(&Response::Error {
                        kind: WireErrorKind::BadRequest,
                        message: e,
                    }),
                    deadline,
                );
                continue;
            }
        };
        let keep_going = dispatch(&mut stream, shared, &mut bound_tenant, request);
        telemetry::observe_secs("net.request_latency", started.elapsed());
        if !keep_going {
            break;
        }
    }
    release_tenant(shared, &bound_tenant);
    shared.active_conns.fetch_sub(1, Ordering::SeqCst);
}

/// Serves one request; returns whether the connection should continue.
fn dispatch(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    bound_tenant: &mut Option<String>,
    request: Request,
) -> bool {
    let write_deadline = || Instant::now() + Duration::from_millis(shared.cfg.write_timeout_ms);
    let send = |stream: &mut TcpStream, resp: &Response| {
        write_frame(stream, &to_wire(resp), write_deadline()).is_ok()
    };
    match request {
        Request::Ping => {
            telemetry::counter_add("net.requests.ping", 1);
            send(
                stream,
                &Response::Pong {
                    version: PROTOCOL_VERSION,
                    draining: shared.daemon.is_draining(),
                },
            )
        }
        Request::Submit { key, spec } => {
            telemetry::counter_add("net.requests.submit", 1);
            // Bind the connection to its tenant on first submit and
            // enforce the per-tenant connection quota there.
            if bound_tenant.is_none() {
                let mut map = shared
                    .tenant_conns
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                let slot = map.entry(spec.tenant.clone()).or_insert(0);
                if *slot >= shared.cfg.max_conns_per_tenant {
                    drop(map);
                    telemetry::counter_add("net.conns.tenant_refused", 1);
                    return send(
                        stream,
                        &Response::Rejected {
                            rejection: Rejection {
                                reason: RejectReason::ConnLimit,
                                retry_after_ms: shared.daemon.config().admission.retry_after_ms,
                                open_jobs: 0,
                            },
                        },
                    );
                }
                *slot += 1;
                drop(map);
                *bound_tenant = Some(spec.tenant.clone());
            }
            let key_opt = if key.is_empty() {
                None
            } else {
                Some(key.as_str())
            };
            match shared.daemon.submit_keyed(&spec, key_opt) {
                Ok(Submission::Accepted(job)) => send(
                    stream,
                    &Response::Submitted {
                        job,
                        deduped: false,
                    },
                ),
                Ok(Submission::Deduped(job)) => {
                    telemetry::counter_add("net.requests.deduped", 1);
                    send(stream, &Response::Submitted { job, deduped: true })
                }
                Ok(Submission::Rejected(rejection)) => {
                    telemetry::counter_add("net.requests.rejected", 1);
                    send(stream, &Response::Rejected { rejection })
                }
                Err(e) => send(
                    stream,
                    &Response::Error {
                        kind: WireErrorKind::Internal,
                        message: e.to_string(),
                    },
                ),
            }
        }
        Request::Status { job } => {
            telemetry::counter_add("net.requests.status", 1);
            match shared.daemon.job_row(job) {
                Some(row) => send(stream, &Response::Status { row }),
                None => send(
                    stream,
                    &Response::Error {
                        kind: WireErrorKind::UnknownJob,
                        message: format!("no job {job}"),
                    },
                ),
            }
        }
        Request::Subscribe { job, from } => {
            telemetry::counter_add("net.requests.subscribe", 1);
            serve_subscription(stream, shared, job, from)
        }
        Request::Drain => {
            telemetry::counter_add("net.requests.drain", 1);
            shared.daemon.drain();
            shared.stop_accepting.store(true, Ordering::SeqCst);
            let status = shared.daemon.status();
            send(
                stream,
                &Response::Draining {
                    open_jobs: (status.queued + status.running) as u64,
                },
            )
        }
    }
}

/// Streams a job's events from `from`, polling `events.json` until the
/// job goes terminal (then sends [`Response::End`]) or the
/// subscription deadline expires.
fn serve_subscription(stream: &mut TcpStream, shared: &Arc<Shared>, job: u64, from: u64) -> bool {
    let write_deadline = || Instant::now() + Duration::from_millis(shared.cfg.write_timeout_ms);
    let Some(mut row) = shared.daemon.job_row(job) else {
        return write_frame(
            stream,
            &to_wire(&Response::Error {
                kind: WireErrorKind::UnknownJob,
                message: format!("no job {job}"),
            }),
            write_deadline(),
        )
        .is_ok();
    };
    let events_path = shared.daemon.job_run_dir(job).join("events.json");
    let hard_stop = Instant::now() + Duration::from_millis(shared.cfg.subscribe_timeout_ms);
    let mut next = from;
    loop {
        for (index, text) in read_events_from(&events_path, next) {
            let sent = write_frame(
                stream,
                &to_wire(&Response::Event {
                    job,
                    index,
                    event: text,
                }),
                write_deadline(),
            );
            if sent.is_err() {
                return false;
            }
            next = index + 1;
        }
        if row.phase.terminal() {
            return write_frame(
                stream,
                &to_wire(&Response::End {
                    job,
                    phase: row.phase,
                }),
                write_deadline(),
            )
            .is_ok();
        }
        if Instant::now() >= hard_stop || shared.stop_accepting.load(Ordering::SeqCst) {
            let _ = write_frame(
                stream,
                &to_wire(&Response::Error {
                    kind: WireErrorKind::Internal,
                    message: "subscription deadline".into(),
                }),
                write_deadline(),
            );
            return false;
        }
        std::thread::sleep(Duration::from_millis(shared.cfg.poll_ms));
        match shared.daemon.job_row(job) {
            Some(r) => row = r,
            None => return false,
        }
    }
}

/// Reads events with index >= `from` from a hierflow `events.json`
/// (shape `{"events":[...]}`), returning each as its own JSON text.
/// Missing or partially-written files read as empty — the next poll
/// sees the completed write.
fn read_events_from(path: &std::path::Path, from: u64) -> Vec<(u64, String)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(value) = serde_json::from_str::<serde::Value>(&text) else {
        return Vec::new();
    };
    let Some(events) = value
        .get("events")
        .and_then(|e| e.as_array().map(|a| a.to_vec()))
    else {
        return Vec::new();
    };
    events
        .iter()
        .enumerate()
        .skip(from as usize)
        .map(|(i, ev)| (i as u64, serde_json::to_string(ev).unwrap_or_default()))
        .collect()
}
