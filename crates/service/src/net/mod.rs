//! The TCP ingestion layer: frames, protocol, server, client, and the
//! wire-level chaos proxy.
//!
//! `hiersizerd`'s PR 6 ingestion was a shared-filesystem drop box; this
//! module gives the daemon a real service boundary without giving up
//! any of its guarantees. Everything here is `std`-only — no async
//! runtime, no protocol crates — because the robustness properties the
//! service needs (absolute deadlines, bounded frames, structured
//! backpressure, idempotent submits) live in the protocol design, not
//! in a dependency.
//!
//! * [`frame`] — the CRC-framed, length-prefixed wire unit and the
//!   deadline-driven socket reads that make slow-loris peers a timeout
//!   instead of a thread leak.
//! * [`proto`] — the request/response vocabulary (`Submit`/`Status`/
//!   `Subscribe`/`Drain`/`Ping`), one externally-tagged JSON message
//!   per frame.
//! * [`server`] — [`NetServer`]: accept loop + per-connection handlers
//!   over an `Arc<Daemon>`, connection quotas, graceful drain.
//! * [`client`] — one-shot requests plus classed-retry submission that
//!   honours server `retry_after_ms` hints and relies on idempotency
//!   keys (never luck) for at-most-once submission.
//! * [`chaosproxy`] — a seed-keyed man-in-the-middle injecting torn
//!   frames, disconnects, corrupt bytes, stalls and half-open sockets,
//!   with a consecutive-fault cap that makes soak termination a
//!   theorem rather than a likelihood.

pub mod chaosproxy;
pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use chaosproxy::{ChaosProxy, ProxyStats, WireFault, MAX_CONSECUTIVE_FAULTS};
pub use client::{ClientConfig, ClientError, SubmitOutcome};
pub use frame::{decode_frame, encode_frame, FrameError, DEFAULT_MAX_FRAME, HEADER_LEN};
pub use proto::{Request, Response, WireErrorKind, PROTOCOL_VERSION};
pub use server::{NetConfig, NetServer};
