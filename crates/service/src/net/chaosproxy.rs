//! The in-process wire chaos proxy.
//!
//! Sits between a client and a real [`NetServer`](crate::net::server),
//! forwarding bytes while injecting transport faults the seed-keyed
//! [`ChaosPolicy`] chooses per *connection*: torn frames, mid-response
//! disconnects, single-byte corruption (caught by the frame CRC),
//! stalled reads, and half-open sockets that never answer at all.
//!
//! **Termination is guaranteed, not probabilistic.** On top of the
//! policy's permille gate, the proxy caps *consecutive* faulted
//! connections at [`MAX_CONSECUTIVE_FAULTS`]; the next connection is
//! forced clean. A client whose retry budget exceeds the cap therefore
//! always lands a clean attempt, whatever the seed — the wire soak's
//! no-lost-jobs invariant rests on this bound, the same way the job
//! soak rests on `max_faults_per_job`.
//!
//! Faults are chosen so every one of them is *transient* from the
//! client's classification: torn frames, closed connections, CRC
//! mismatches and timeouts all retry; the proxy never forges a valid
//! frame (it cannot — it would need the payload to forge the CRC),
//! so it can garble submissions but never inject one.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::chaos::ChaosPolicy;
use crate::net::frame::HEADER_LEN;

/// Forced-clean threshold: after this many consecutive faulted
/// connections the next one passes through untouched.
pub const MAX_CONSECUTIVE_FAULTS: u32 = 3;

/// The transport faults the proxy can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Forward only a prefix of the response, then close: the client
    /// sees a stream torn mid-frame.
    TearFrame,
    /// Drop both directions as soon as the server starts answering.
    Disconnect,
    /// Flip one payload byte of the response; the frame CRC catches it.
    CorruptByte,
    /// Hold every forwarded chunk for `wire_stall_ms` (slow server).
    Stall,
    /// Accept the client, connect nothing, say nothing, hang up late:
    /// the half-open socket the idle deadline exists for.
    HalfOpen,
}

impl WireFault {
    fn from_pick(pick: u64) -> WireFault {
        match pick % 5 {
            0 => WireFault::TearFrame,
            1 => WireFault::Disconnect,
            2 => WireFault::CorruptByte,
            3 => WireFault::Stall,
            _ => WireFault::HalfOpen,
        }
    }
}

/// Per-kind injection counters (plus clean passthroughs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Connections forwarded untouched.
    pub clean: u64,
    /// Torn-frame injections.
    pub torn: u64,
    /// Mid-response disconnects.
    pub disconnects: u64,
    /// Corrupted-byte injections.
    pub corrupted: u64,
    /// Stalled connections.
    pub stalled: u64,
    /// Half-open connections.
    pub half_open: u64,
}

impl ProxyStats {
    /// Total faulted connections.
    pub fn faulted(&self) -> u64 {
        self.torn + self.disconnects + self.corrupted + self.stalled + self.half_open
    }
}

struct ProxyShared {
    target: SocketAddr,
    policy: ChaosPolicy,
    stop: AtomicBool,
    conn_counter: AtomicU64,
    consecutive_faults: AtomicU32,
    stats: Mutex<ProxyStats>,
}

/// A running chaos proxy. Call [`ChaosProxy::shutdown`] to stop it.
pub struct ChaosProxy {
    shared: Arc<ProxyShared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy in front of `target` with `policy`'s wire
    /// channel deciding per-connection faults.
    ///
    /// # Errors
    ///
    /// The bind error, when no loopback port is available.
    pub fn start(target: SocketAddr, policy: ChaosPolicy) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            target,
            policy,
            stop: AtomicBool::new(false),
            conn_counter: AtomicU64::new(0),
            consecutive_faults: AtomicU32::new(0),
            stats: Mutex::new(ProxyStats::default()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("chaos-proxy".into())
            .spawn(move || proxy_accept_loop(&listener, &accept_shared))
            .expect("spawn proxy thread");
        Ok(ChaosProxy {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the injection counters.
    pub fn stats(&self) -> ProxyStats {
        self.shared
            .stats
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Stops accepting and joins the accept loop.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn proxy_accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((client, _)) => {
                let conn = shared.conn_counter.fetch_add(1, Ordering::SeqCst);
                // The policy proposes; the consecutive-fault cap
                // disposes. The cap is what turns "probably terminates"
                // into "terminates".
                let proposed = shared
                    .policy
                    .wire_fault_pick(conn)
                    .map(WireFault::from_pick);
                let fault =
                    if shared.consecutive_faults.load(Ordering::SeqCst) >= MAX_CONSECUTIVE_FAULTS {
                        None
                    } else {
                        proposed
                    };
                if fault.is_some() {
                    shared.consecutive_faults.fetch_add(1, Ordering::SeqCst);
                } else {
                    shared.consecutive_faults.store(0, Ordering::SeqCst);
                }
                note(shared, fault);
                let conn_shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("chaos-proxy-conn".into())
                    .spawn(move || proxy_conn(client, &conn_shared, fault));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn note(shared: &ProxyShared, fault: Option<WireFault>) {
    let mut stats = shared.stats.lock().unwrap_or_else(|p| p.into_inner());
    match fault {
        None => stats.clean += 1,
        Some(WireFault::TearFrame) => stats.torn += 1,
        Some(WireFault::Disconnect) => stats.disconnects += 1,
        Some(WireFault::CorruptByte) => stats.corrupted += 1,
        Some(WireFault::Stall) => stats.stalled += 1,
        Some(WireFault::HalfOpen) => stats.half_open += 1,
    }
}

fn proxy_conn(client: TcpStream, shared: &Arc<ProxyShared>, fault: Option<WireFault>) {
    if fault == Some(WireFault::HalfOpen) {
        // Say nothing, then hang up: the peer's deadline does the rest.
        std::thread::sleep(Duration::from_millis(
            (shared.policy.wire_stall_ms * 4).max(20),
        ));
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    let Ok(server) = TcpStream::connect(shared.target) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = server.set_read_timeout(Some(Duration::from_millis(100)));

    // Client -> server: always a faithful copy (the proxy corrupts
    // what the client *sees*, never what the daemon durably records —
    // forging a submission would need a forged CRC).
    let c2s_client = client.try_clone().ok();
    let c2s_server = server.try_clone().ok();
    let upstream = match (c2s_client, c2s_server) {
        (Some(src), Some(dst)) => Some(std::thread::spawn(move || pump_clean(src, dst))),
        _ => None,
    };

    pump_faulted(server, client, fault, shared.policy.wire_stall_ms);
    if let Some(t) = upstream {
        let _ = t.join();
    }
}

/// Faithful byte pump until EOF/error (~5 s safety cap).
fn pump_clean(mut src: TcpStream, mut dst: TcpStream) {
    let mut buf = [0u8; 4096];
    for _ in 0..50 {
        match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if dst.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    let _ = dst.shutdown(Shutdown::Write);
}

/// Server -> client pump with the chosen fault applied.
fn pump_faulted(
    mut server: TcpStream,
    mut client: TcpStream,
    fault: Option<WireFault>,
    stall_ms: u64,
) {
    let mut buf = [0u8; 4096];
    let mut first_chunk = true;
    for _ in 0..50 {
        match server.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                match fault {
                    Some(WireFault::TearFrame) if first_chunk => {
                        // Stop inside the 26-byte header: the client's
                        // next read hits EOF mid-frame.
                        let keep = n.min(HEADER_LEN / 2);
                        let _ = client.write_all(&buf[..keep]);
                        break;
                    }
                    Some(WireFault::Disconnect) if first_chunk => {
                        // The answer exists (the daemon committed);
                        // the client never hears it — the lost-ACK
                        // case idempotency keys exist for.
                        break;
                    }
                    Some(WireFault::CorruptByte) if first_chunk => {
                        let idx = if n > HEADER_LEN + 1 {
                            HEADER_LEN
                        } else {
                            n - 1
                        };
                        buf[idx] ^= 0x01;
                        if client.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                    Some(WireFault::Stall) => {
                        std::thread::sleep(Duration::from_millis(stall_ms));
                        if client.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                    _ => {
                        if client.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
                first_chunk = false;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kinds_cover_the_enum() {
        let kinds: std::collections::BTreeSet<_> = (0..10u64)
            .map(|p| format!("{:?}", WireFault::from_pick(p)))
            .collect();
        assert_eq!(kinds.len(), 5, "all five faults reachable: {kinds:?}");
    }
}
