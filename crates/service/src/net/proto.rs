//! The request/response vocabulary spoken inside wire frames.
//!
//! Each frame payload is one externally-tagged JSON message —
//! `{"Submit":{...}}` — so a protocol dump is self-describing. The
//! vocabulary is deliberately small and forward-compatible in one
//! direction only: a server must answer anything it cannot parse with
//! [`Response::Error`] (kind [`WireErrorKind::BadRequest`]), never by
//! dropping the connection silently.
//!
//! **Idempotency keys.** `Submit.key` is the client's job key; the
//! empty string means "no key, always enqueue fresh". With a key, the
//! daemon's `SubmitKey` WAL reservation makes resubmission — including
//! a retry after a crash ate the ACK — return the original job id with
//! `deduped: true`.

use serde::{Deserialize, Serialize};

use crate::admission::Rejection;
use crate::daemon::JobRow;
use crate::jobspec::JobSpec;
use crate::wal::JobPhase;

/// Protocol revision; servers echo it in [`Response::Pong`].
pub const PROTOCOL_VERSION: u32 = 1;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness + version probe.
    Ping,
    /// Submit a job. `key` is the idempotency key ("" = unkeyed).
    Submit {
        /// Client job key; duplicates dedupe to the original id.
        key: String,
        /// The job to run (carries its tenant).
        spec: JobSpec,
    },
    /// One job's current status row.
    Status {
        /// Job id.
        job: u64,
    },
    /// Stream the job's `FlowEvents` from index `from`, then its
    /// terminal phase. The server polls until the job finishes.
    Subscribe {
        /// Job id.
        job: u64,
        /// First event index wanted (0 = from the start).
        from: u64,
    },
    /// Flip the daemon into draining mode.
    Drain,
}

/// Machine-readable error class on [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireErrorKind {
    /// The frame itself was unreadable (bad header, CRC, size).
    BadFrame,
    /// The frame held JSON the server could not parse as a [`Request`].
    BadRequest,
    /// The requested job id does not exist.
    UnknownJob,
    /// The server hit an internal error serving the request.
    Internal,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// Server protocol revision.
        version: u32,
        /// Whether the daemon is draining.
        draining: bool,
    },
    /// The submit was admitted (or matched an existing key).
    Submitted {
        /// The durable job id.
        job: u64,
        /// True when an idempotency key matched a previous submit.
        deduped: bool,
    },
    /// The submit was refused; the admission rejection verbatim.
    Rejected {
        /// Structured refusal with `retry_after_ms`.
        rejection: Rejection,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// The job's ledger row.
        row: JobRow,
    },
    /// One streamed flow event (Subscribe). `event` is the event's own
    /// JSON text, passed through opaquely so the protocol does not
    /// version-lock to the `FlowEvent` vocabulary.
    Event {
        /// Job id.
        job: u64,
        /// Index of this event in the job's event log.
        index: u64,
        /// The event, as JSON text.
        event: String,
    },
    /// End of a subscription: the job reached a terminal phase.
    End {
        /// Job id.
        job: u64,
        /// The terminal phase.
        phase: JobPhase,
    },
    /// Answer to [`Request::Drain`].
    Draining {
        /// Jobs still open at drain time.
        open_jobs: u64,
    },
    /// Anything that went wrong, with a machine-readable class.
    Error {
        /// Error class.
        kind: WireErrorKind,
        /// Human-readable provenance.
        message: String,
    },
}

/// Serialises a message for the wire.
#[must_use]
pub fn to_wire<T: Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_string(msg).unwrap_or_default().into_bytes()
}

/// Parses a frame payload as a message.
///
/// # Errors
///
/// The serde error text when the payload is not valid JSON for `T`.
pub fn from_wire<T: Deserialize>(payload: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::RejectReason;

    #[test]
    fn requests_round_trip() {
        let msgs = vec![
            Request::Ping,
            Request::Submit {
                key: "k-1".into(),
                spec: JobSpec::nano("acme"),
            },
            Request::Status { job: 42 },
            Request::Subscribe { job: 7, from: 3 },
            Request::Drain,
        ];
        for msg in msgs {
            let back: Request = from_wire(&to_wire(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn responses_round_trip() {
        let msgs = vec![
            Response::Pong {
                version: PROTOCOL_VERSION,
                draining: false,
            },
            Response::Submitted {
                job: 3,
                deduped: true,
            },
            Response::Rejected {
                rejection: Rejection {
                    reason: RejectReason::ConnLimit,
                    retry_after_ms: 250,
                    open_jobs: 9,
                },
            },
            Response::Event {
                job: 1,
                index: 0,
                event: "{\"StageStarted\":{\"stage\":1}}".into(),
            },
            Response::End {
                job: 1,
                phase: JobPhase::Completed { report_digest: 5 },
            },
            Response::Draining { open_jobs: 2 },
            Response::Error {
                kind: WireErrorKind::BadFrame,
                message: "crc mismatch".into(),
            },
        ];
        for msg in msgs {
            let back: Response = from_wire(&to_wire(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn junk_payload_is_an_error_not_a_panic() {
        assert!(from_wire::<Request>(b"not json").is_err());
        assert!(from_wire::<Request>(&[0xff, 0xfe]).is_err());
        assert!(from_wire::<Request>(b"{\"Nope\":{}}").is_err());
    }
}
