//! The wire frame: length-prefixed, CRC-guarded, newline-terminated.
//!
//! ```text
//! LLLLLLLL CCCCCCCCCCCCCCCC <payload bytes>\n
//! ^8 hex   ^16 hex FNV-1a   ^exactly L bytes
//! ```
//!
//! The 26-byte fixed header (8 hex length digits, space, 16 hex CRC
//! digits, space) is deliberately boring: it can be read with one
//! `read_exact`, the length is known *before* the payload is touched
//! (so an oversized frame is refused without buffering it), and the
//! trailing `\n` keeps the stream greppable and resynchronisable by a
//! human with `nc`. The CRC is FNV-1a over the payload bytes — the same
//! digest the WAL frames use — so wire corruption and disk corruption
//! are caught by the same arithmetic.
//!
//! All socket reads go through [`read_frame`]'s *deadline* loop: the
//! OS-level read timeout is re-armed to the remaining time before every
//! `read`, so a peer trickling one byte per second (slow-loris) cannot
//! hold a connection past the deadline no matter how many reads
//! succeed.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use evalcache::fnv1a;

/// Fixed header size: 8 hex length + space + 16 hex CRC + space.
pub const HEADER_LEN: usize = 26;

/// Default maximum payload size accepted by servers and clients.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Why a frame could not be read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Clean EOF at a frame boundary: the peer hung up politely.
    Closed,
    /// EOF in the middle of a frame: the header or payload was torn.
    Torn {
        /// What was being read when the stream ended.
        at: &'static str,
    },
    /// The deadline expired before the frame completed.
    TimedOut,
    /// The 26-byte header was not `LLLLLLLL CCCCCCCCCCCCCCCC `.
    BadHeader {
        /// What was malformed.
        reason: &'static str,
    },
    /// The declared payload length exceeds the negotiated maximum.
    TooLarge {
        /// Declared payload length.
        len: usize,
        /// The refusing side's limit.
        max: usize,
    },
    /// The payload's FNV-1a digest does not match the header's CRC.
    CrcMismatch {
        /// CRC the header declared.
        declared: u64,
        /// CRC of the bytes actually received.
        actual: u64,
    },
    /// The byte after the payload was not `\n`.
    MissingTerminator,
    /// Any other socket error.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Torn { at } => write!(f, "stream ended mid-frame (reading {at})"),
            FrameError::TimedOut => write!(f, "frame deadline expired"),
            FrameError::BadHeader { reason } => write!(f, "malformed frame header: {reason}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload {len} bytes exceeds limit {max}")
            }
            FrameError::CrcMismatch { declared, actual } => write!(
                f,
                "frame CRC mismatch: header {declared:016x}, payload {actual:016x}"
            ),
            FrameError::MissingTerminator => write!(f, "frame missing newline terminator"),
            FrameError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl FrameError {
    /// Whether a client retry on a fresh connection may succeed.
    /// Header/size violations are protocol bugs (permanent); torn
    /// streams, timeouts and corruption are the transport misbehaving.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FrameError::Closed
                | FrameError::Torn { .. }
                | FrameError::TimedOut
                | FrameError::CrcMismatch { .. }
                | FrameError::MissingTerminator
                | FrameError::Io(_)
        )
    }
}

/// Encodes one payload into a wire frame.
#[must_use]
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 1);
    out.extend_from_slice(format!("{:08x} {:016x} ", payload.len(), fnv1a(payload)).as_bytes());
    out.extend_from_slice(payload);
    out.push(b'\n');
    out
}

/// Parses the fixed header; returns `(payload_len, declared_crc)`.
///
/// # Errors
///
/// [`FrameError::BadHeader`] when the 26 bytes do not match the format.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(usize, u64), FrameError> {
    if header[8] != b' ' || header[25] != b' ' {
        return Err(FrameError::BadHeader {
            reason: "missing separators",
        });
    }
    let len_text = std::str::from_utf8(&header[..8]).map_err(|_| FrameError::BadHeader {
        reason: "length not ASCII hex",
    })?;
    let crc_text = std::str::from_utf8(&header[9..25]).map_err(|_| FrameError::BadHeader {
        reason: "crc not ASCII hex",
    })?;
    let len = usize::from_str_radix(len_text, 16).map_err(|_| FrameError::BadHeader {
        reason: "length not hex",
    })?;
    let crc = u64::from_str_radix(crc_text, 16).map_err(|_| FrameError::BadHeader {
        reason: "crc not hex",
    })?;
    Ok((len, crc))
}

/// Decodes one complete frame from a byte slice (no socket involved —
/// the pure half the property tests drive). Returns the payload and the
/// total bytes consumed.
///
/// # Errors
///
/// Every [`FrameError`] a socket read can produce except the
/// timeout/IO classes.
pub fn decode_frame(bytes: &[u8], max_frame: usize) -> Result<(Vec<u8>, usize), FrameError> {
    if bytes.is_empty() {
        return Err(FrameError::Closed);
    }
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::Torn { at: "header" });
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&bytes[..HEADER_LEN]);
    let (len, declared) = parse_header(&header)?;
    if len > max_frame {
        return Err(FrameError::TooLarge {
            len,
            max: max_frame,
        });
    }
    let total = HEADER_LEN + len + 1;
    if bytes.len() < total {
        return Err(FrameError::Torn { at: "payload" });
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + len];
    if bytes[HEADER_LEN + len] != b'\n' {
        return Err(FrameError::MissingTerminator);
    }
    let actual = fnv1a(payload);
    if actual != declared {
        return Err(FrameError::CrcMismatch { declared, actual });
    }
    Ok((payload.to_vec(), total))
}

/// Reads exactly `buf.len()` bytes before `deadline`, re-arming the
/// socket read timeout to the remaining time before every `read` so
/// the *total* wait is bounded (a per-call timeout alone lets a
/// slow-loris peer reset the clock with each byte).
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    at: &'static str,
    any_read: &mut bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(FrameError::TimedOut);
        }
        stream
            .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
            .map_err(|e| FrameError::Io(e.to_string()))?;
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if *any_read {
                    FrameError::Torn { at }
                } else {
                    FrameError::Closed
                });
            }
            Ok(n) => {
                filled += n;
                *any_read = true;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                // Loop: the deadline check at the top decides.
            }
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Reads one frame from `stream`, enforcing `max_frame` and an
/// absolute `deadline` for the whole frame.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF before any byte of this frame;
/// every other variant as described on [`FrameError`].
pub fn read_frame(
    stream: &mut TcpStream,
    max_frame: usize,
    deadline: Instant,
) -> Result<Vec<u8>, FrameError> {
    let mut any_read = false;
    let mut header = [0u8; HEADER_LEN];
    read_exact_deadline(stream, &mut header, deadline, "header", &mut any_read)?;
    let (len, declared) = parse_header(&header)?;
    if len > max_frame {
        return Err(FrameError::TooLarge {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_deadline(stream, &mut payload, deadline, "payload", &mut any_read)?;
    let mut term = [0u8; 1];
    read_exact_deadline(stream, &mut term, deadline, "terminator", &mut any_read)?;
    if term[0] != b'\n' {
        return Err(FrameError::MissingTerminator);
    }
    let actual = fnv1a(&payload);
    if actual != declared {
        return Err(FrameError::CrcMismatch { declared, actual });
    }
    Ok(payload)
}

/// Writes one frame before `deadline`.
///
/// # Errors
///
/// [`FrameError::TimedOut`] when the deadline expires mid-write,
/// otherwise the socket error.
pub fn write_frame(
    stream: &mut TcpStream,
    payload: &[u8],
    deadline: Instant,
) -> Result<(), FrameError> {
    let bytes = encode_frame(payload);
    let mut written = 0;
    while written < bytes.len() {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(FrameError::TimedOut);
        }
        stream
            .set_write_timeout(Some(remaining.max(Duration::from_millis(1))))
            .map_err(|e| FrameError::Io(e.to_string()))?;
        match stream.write(&bytes[written..]) {
            Ok(0) => return Err(FrameError::Torn { at: "write" }),
            Ok(n) => written += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    stream.flush().map_err(|e| FrameError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        for payload in [&b""[..], b"x", b"{\"type\":\"Ping\"}", &[0u8; 300]] {
            let frame = encode_frame(payload);
            let (back, used) = decode_frame(&frame, DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(back, payload);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn corrupt_byte_fails_crc_with_provenance() {
        let mut frame = encode_frame(b"hello world");
        let idx = HEADER_LEN + 3;
        frame[idx] ^= 0x20;
        match decode_frame(&frame, DEFAULT_MAX_FRAME) {
            Err(FrameError::CrcMismatch { declared, actual }) => assert_ne!(declared, actual),
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn oversized_frame_is_refused_from_the_header_alone() {
        let frame = encode_frame(&[7u8; 64]);
        assert_eq!(
            decode_frame(&frame, 16),
            Err(FrameError::TooLarge { len: 64, max: 16 })
        );
    }

    #[test]
    fn torn_frame_reports_where_it_tore() {
        let frame = encode_frame(b"abcdef");
        assert_eq!(
            decode_frame(&frame[..10], DEFAULT_MAX_FRAME),
            Err(FrameError::Torn { at: "header" })
        );
        assert_eq!(
            decode_frame(&frame[..HEADER_LEN + 2], DEFAULT_MAX_FRAME),
            Err(FrameError::Torn { at: "payload" })
        );
    }

    #[test]
    fn junk_header_is_a_bad_header_not_a_panic() {
        let mut frame = encode_frame(b"payload");
        frame[2] = b'z';
        assert!(matches!(
            decode_frame(&frame, DEFAULT_MAX_FRAME),
            Err(FrameError::BadHeader { .. })
        ));
    }

    #[test]
    fn transience_classification_matches_retry_policy() {
        assert!(FrameError::TimedOut.is_transient());
        assert!(FrameError::CrcMismatch {
            declared: 1,
            actual: 2
        }
        .is_transient());
        assert!(!FrameError::TooLarge { len: 9, max: 1 }.is_transient());
        assert!(!FrameError::BadHeader { reason: "x" }.is_transient());
    }
}
