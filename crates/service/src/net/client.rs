//! The wire client: one-shot requests plus classed retry for submits.
//!
//! The retry loop treats the transport and the service differently:
//!
//! * **Transient wire faults** (connect refused during a restart, torn
//!   frames, timeouts, CRC corruption) back off on the exec layer's
//!   deterministic slot-keyed jitter — the slot is the FNV-1a of the
//!   idempotency key, so a thousand clients retrying the same outage
//!   don't stampede in lockstep, yet a given client's schedule is
//!   reproducible.
//! * **Structured rejections** honour the server's `retry_after_ms`
//!   verbatim; the server knows its queue better than any client-side
//!   backoff curve.
//! * **Permanent errors** (malformed request, protocol violation) fail
//!   immediately — retrying a `BadRequest` is how clients melt servers.
//!
//! Submission safety relies on the idempotency key, not on luck: a
//! retry after a lost ACK re-sends the same key and the daemon's WAL
//! reservation returns the original job id (`deduped: true`).

use std::net::TcpStream;
use std::time::{Duration, Instant};

use evalcache::fnv1a;
use exec::RetryPolicy;

use crate::admission::Rejection;
use crate::net::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::net::proto::{from_wire, to_wire, Request, Response};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Whole-response read deadline per request.
    pub io_timeout_ms: u64,
    /// Maximum accepted response frame.
    pub max_frame: usize,
    /// Submit retry budget (attempts = retries + 1).
    pub retries: usize,
    /// Ceiling on any single honoured `retry_after_ms` sleep, so a
    /// hostile/buggy server cannot park a client for an hour.
    pub max_retry_after_ms: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            io_timeout_ms: 5_000,
            max_frame: DEFAULT_MAX_FRAME,
            retries: 6,
            max_retry_after_ms: 2_000,
        }
    }
}

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Could not connect.
    Connect(String),
    /// A frame-layer fault.
    Wire(FrameError),
    /// The server answered something the protocol does not allow here.
    Protocol(String),
    /// Submit retries exhausted; the last rejection, if the final
    /// attempt was refused rather than dropped.
    RetriesExhausted(Option<Rejection>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Wire(e) => write!(f, "wire fault: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ClientError::RetriesExhausted(Some(rej)) => {
                write!(f, "retries exhausted; last rejection {:?}", rej.reason)
            }
            ClientError::RetriesExhausted(None) => write!(f, "retries exhausted"),
        }
    }
}

impl ClientError {
    fn is_transient(&self) -> bool {
        match self {
            ClientError::Connect(_) => true,
            ClientError::Wire(e) => e.is_transient(),
            ClientError::Protocol(_) | ClientError::RetriesExhausted(_) => false,
        }
    }
}

/// Opens a connection, sends one request, reads one response, closes.
///
/// # Errors
///
/// [`ClientError`] on connect, frame, or parse failure.
pub fn request_once(
    addr: &str,
    request: &Request,
    cfg: &ClientConfig,
) -> Result<Response, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| ClientError::Connect(e.to_string()))?;
    let deadline = Instant::now() + Duration::from_millis(cfg.io_timeout_ms);
    write_frame(&mut stream, &to_wire(request), deadline).map_err(ClientError::Wire)?;
    let payload = read_frame(&mut stream, cfg.max_frame, deadline).map_err(ClientError::Wire)?;
    from_wire(&payload).map_err(ClientError::Protocol)
}

/// The outcome of [`submit_with_retry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// The durable job id.
    pub job: u64,
    /// Whether the server matched an earlier submit with this key.
    pub deduped: bool,
    /// Attempts used (1 = first try succeeded).
    pub attempts: usize,
}

/// Submits with classed retry. `key` must be non-empty: retrying an
/// *unkeyed* submit can double-enqueue on a lost ACK, which is exactly
/// the failure mode the key exists to kill.
///
/// # Errors
///
/// [`ClientError::RetriesExhausted`] when the budget runs out;
/// permanent wire/protocol errors immediately.
pub fn submit_with_retry(
    addr: &str,
    spec: &crate::jobspec::JobSpec,
    key: &str,
    cfg: &ClientConfig,
) -> Result<SubmitOutcome, ClientError> {
    assert!(!key.is_empty(), "keyless retry is not idempotent");
    let request = Request::Submit {
        key: key.to_string(),
        spec: spec.clone(),
    };
    let policy = RetryPolicy::transient_backoff();
    let slot = fnv1a(key.as_bytes()) as usize;
    let mut last_rejection = None;
    for attempt in 0..=cfg.retries {
        if attempt > 0 {
            std::thread::sleep(policy.delay_for(attempt, slot));
        }
        match request_once(addr, &request, cfg) {
            Ok(Response::Submitted { job, deduped }) => {
                return Ok(SubmitOutcome {
                    job,
                    deduped,
                    attempts: attempt + 1,
                });
            }
            Ok(Response::Rejected { rejection }) => {
                telemetry::counter_add("net.client.rejected", 1);
                let wait = rejection.retry_after_ms.min(cfg.max_retry_after_ms);
                last_rejection = Some(rejection);
                std::thread::sleep(Duration::from_millis(wait));
            }
            Ok(Response::Error { kind, message }) => {
                return Err(ClientError::Protocol(format!("{kind:?}: {message}")));
            }
            Ok(other) => {
                return Err(ClientError::Protocol(format!(
                    "unexpected response to Submit: {other:?}"
                )));
            }
            Err(e) if e.is_transient() => {
                telemetry::counter_add("net.client.transient", 1);
                // Loop: the deterministic backoff at the top paces us.
            }
            Err(e) => return Err(e),
        }
    }
    Err(ClientError::RetriesExhausted(last_rejection))
}

/// Fetches one job's status row.
///
/// # Errors
///
/// [`ClientError`] on transport failure or a non-`Status` answer.
pub fn status(
    addr: &str,
    job: u64,
    cfg: &ClientConfig,
) -> Result<crate::daemon::JobRow, ClientError> {
    match request_once(addr, &Request::Status { job }, cfg)? {
        Response::Status { row } => Ok(row),
        Response::Error { kind, message } => {
            Err(ClientError::Protocol(format!("{kind:?}: {message}")))
        }
        other => Err(ClientError::Protocol(format!(
            "unexpected response to Status: {other:?}"
        ))),
    }
}

/// Subscribes to a job and invokes `on_event` per streamed event;
/// returns the terminal phase.
///
/// # Errors
///
/// [`ClientError`] on transport failure or protocol violation.
pub fn watch(
    addr: &str,
    job: u64,
    from: u64,
    cfg: &ClientConfig,
    mut on_event: impl FnMut(u64, &str),
) -> Result<crate::wal::JobPhase, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| ClientError::Connect(e.to_string()))?;
    let deadline = Instant::now() + Duration::from_millis(cfg.io_timeout_ms);
    write_frame(
        &mut stream,
        &to_wire(&Request::Subscribe { job, from }),
        deadline,
    )
    .map_err(ClientError::Wire)?;
    loop {
        // Each streamed frame gets its own deadline: the stream is
        // allowed to be long-lived, each frame is not.
        let frame_deadline = Instant::now() + Duration::from_millis(cfg.io_timeout_ms);
        let payload =
            read_frame(&mut stream, cfg.max_frame, frame_deadline).map_err(ClientError::Wire)?;
        match from_wire::<Response>(&payload).map_err(ClientError::Protocol)? {
            Response::Event { index, event, .. } => on_event(index, &event),
            Response::End { phase, .. } => return Ok(phase),
            Response::Error { kind, message } => {
                return Err(ClientError::Protocol(format!("{kind:?}: {message}")));
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "unexpected subscription frame: {other:?}"
                )));
            }
        }
    }
}

/// Pings the server; returns `(protocol_version, draining)`.
///
/// # Errors
///
/// [`ClientError`] on transport failure or a non-`Pong` answer.
pub fn ping(addr: &str, cfg: &ClientConfig) -> Result<(u32, bool), ClientError> {
    match request_once(addr, &Request::Ping, cfg)? {
        Response::Pong { version, draining } => Ok((version, draining)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to Ping: {other:?}"
        ))),
    }
}

/// Asks the server to drain; returns the open-job count it reported.
///
/// # Errors
///
/// [`ClientError`] on transport failure or a non-`Draining` answer.
pub fn drain(addr: &str, cfg: &ClientConfig) -> Result<u64, ClientError> {
    match request_once(addr, &Request::Drain, cfg)? {
        Response::Draining { open_jobs } => Ok(open_jobs),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to Drain: {other:?}"
        ))),
    }
}
