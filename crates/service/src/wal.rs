//! The write-ahead log: the daemon's single source of durable truth.
//!
//! `jobs.wal` is an append-only file of newline-delimited records:
//!
//! ```text
//! {"crc":<fnv1a-of-rec-json>,"rec":{"Submitted":{...}}}
//! ```
//!
//! Every append is one `write_all` of the full framed line followed by
//! `sync_data`, so after a `submit()` returns, the job exists no matter
//! when the process dies. The CRC is an FNV-1a digest of the `rec`
//! payload's canonical JSON — the serde shim serialises objects in
//! insertion order, so re-serialising the parsed payload reproduces the
//! written bytes exactly and the digest can be validated without a
//! second framing layer.
//!
//! Replay ([`Wal::replay`]) is tolerant by design:
//!
//! * a **truncated tail** (the crash window the fsync discipline
//!   leaves open: a partial final line with no newline) is dropped and
//!   flagged, never fatal;
//! * a **corrupt mid-file line** (torn short write, bit rot) fails its
//!   CRC or parse, is skipped and counted — later records still apply;
//! * **duplicate records** are absorbed idempotently when the
//!   [`Ledger`] folds records into job states.
//!
//! Losing a non-`Submitted` record is always recoverable: the ledger
//! then sees an earlier phase of the job and the daemon simply re-runs
//! it from its stage checkpoints — the flow's resume bit-identity
//! contract makes the re-run converge on the same report.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize, Value};

use crate::error::ServiceError;
use crate::jobspec::JobSpec;

/// WAL file name inside the daemon data directory.
pub const WAL_FILE: &str = "jobs.wal";

/// One durable event in a job's life. Records are integer/string-typed
/// only — no floats — so the CRC-over-reserialised-JSON check can never
/// trip over float formatting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A job was admitted. This is the durability point of `submit`.
    Submitted {
        /// Job id (monotonic, assigned by the daemon).
        job: u64,
        /// The submitted spec, verbatim.
        spec: JobSpec,
    },
    /// An attempt at running the job began.
    Started {
        /// Job id.
        job: u64,
        /// Zero-based attempt number.
        attempt: u32,
    },
    /// An attempt was interrupted (cancellation, budget, crash injected
    /// by the chaos harness, worker panic). The job remains runnable.
    Interrupted {
        /// Job id.
        job: u64,
        /// The interrupted attempt.
        attempt: u32,
        /// Human-readable interruption cause.
        reason: String,
    },
    /// The job finished; `report_digest` is the FNV digest of the
    /// report's semantic projection (see [`crate::report`]), the value
    /// the bit-identity soak compares across chaos and clean runs.
    Completed {
        /// Job id.
        job: u64,
        /// The attempt that completed it.
        attempt: u32,
        /// Digest of the semantic report.
        report_digest: u64,
    },
    /// The job failed terminally (non-resumable flow error).
    Failed {
        /// Job id.
        job: u64,
        /// The attempt that failed.
        attempt: u32,
        /// The flow error text.
        error: String,
    },
}

impl WalRecord {
    /// The job this record belongs to.
    pub fn job(&self) -> u64 {
        match self {
            WalRecord::Submitted { job, .. }
            | WalRecord::Started { job, .. }
            | WalRecord::Interrupted { job, .. }
            | WalRecord::Completed { job, .. }
            | WalRecord::Failed { job, .. } => *job,
        }
    }
}

/// Frames a record into its durable line (sans newline).
fn frame(rec: &WalRecord) -> Result<String, ServiceError> {
    let payload = serde_json::to_string(rec).map_err(|e| ServiceError::wal(e.to_string()))?;
    let crc = evalcache::fnv1a(payload.as_bytes());
    Ok(format!("{{\"crc\":{crc},\"rec\":{payload}}}"))
}

/// Extracts an unsigned integer from a shim JSON value.
fn value_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) if *i >= 0 => Some(*i as u64),
        Value::UInt(u) => Some(*u),
        _ => None,
    }
}

/// The append side of the log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: Mutex<fs::File>,
}

impl Wal {
    /// Opens (creating if missing) the log at `path` for appending.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] when the file cannot be opened.
    pub fn open(path: &Path) -> Result<Self, ServiceError> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ServiceError::io(path.display().to_string(), e.to_string()))?;
        Ok(Wal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably appends one record: a single write of the framed line,
    /// then `sync_data`. When this returns `Ok`, the record survives
    /// any subsequent crash.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Wal`] on serialisation or I/O failure.
    pub fn append(&self, rec: &WalRecord) -> Result<(), ServiceError> {
        let line = frame(rec)?;
        self.write_line(&format!("{line}\n"))
    }

    /// Chaos hook: appends a deliberately *short* write — a prefix of
    /// the framed payload with the newline framing kept intact — so the
    /// record fails its CRC on replay exactly like a torn write that
    /// landed between `write` and `sync`. The line framing is preserved
    /// on purpose: a torn write may garble one record, but the chaos
    /// harness must not let it cascade into the *next* append's line.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Wal`] on serialisation or I/O failure.
    pub fn append_short(&self, rec: &WalRecord) -> Result<(), ServiceError> {
        let line = frame(rec)?;
        let keep = (line.len() * 2) / 3;
        self.write_line(&format!("{}\n", &line[..keep]))
    }

    fn write_line(&self, text: &str) -> Result<(), ServiceError> {
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        file.write_all(text.as_bytes())
            .and_then(|()| file.sync_data())
            .map_err(|e| ServiceError::wal(format!("{}: {e}", self.path.display())))
    }

    /// Replays the log at `path`. A missing file replays as empty (the
    /// first daemon start). Corrupt lines are skipped and counted; a
    /// partial final line without newline is flagged as a truncated
    /// tail.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] only when the file exists but
    /// cannot be read at all.
    pub fn replay(path: &Path) -> Result<WalReplay, ServiceError> {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(ServiceError::io(path.display().to_string(), e.to_string())),
        };
        let complete = text.ends_with('\n');
        let lines: Vec<&str> = text.split('\n').filter(|l| !l.is_empty()).collect();
        let mut replay = WalReplay::default();
        for (i, line) in lines.iter().enumerate() {
            let last = i + 1 == lines.len();
            match decode_line(line) {
                Some(rec) => replay.records.push(rec),
                None if last && !complete => replay.truncated_tail = true,
                None => replay.corrupt_lines += 1,
            }
        }
        Ok(replay)
    }
}

/// Decodes one framed line, validating its CRC against the
/// re-serialised payload. `None` on any mismatch.
fn decode_line(line: &str) -> Option<WalRecord> {
    let value: Value = serde_json::from_str(line).ok()?;
    let crc = value_u64(value.get("crc")?)?;
    let rec = value.get("rec")?;
    let payload = serde_json::to_string(rec).ok()?;
    if evalcache::fnv1a(payload.as_bytes()) != crc {
        return None;
    }
    serde_json::from_value(rec.clone()).ok()
}

/// The outcome of replaying a WAL.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every record that decoded and CRC-validated, in file order.
    pub records: Vec<WalRecord>,
    /// Mid-file lines dropped for CRC or parse failure.
    pub corrupt_lines: usize,
    /// Whether the file ended in a partial line (crash mid-append).
    pub truncated_tail: bool,
}

impl WalReplay {
    /// Folds the replayed records into a job ledger.
    pub fn ledger(&self) -> Ledger {
        Ledger::from_records(&self.records)
    }
}

/// A job's current phase, as reconstructed from the WAL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Admitted, no attempt started (or the `Started` record was lost).
    Queued,
    /// An attempt was running when the log ends — after a crash this
    /// means "was running when the daemon died" and the job must be
    /// resumed.
    Running {
        /// The in-flight attempt.
        attempt: u32,
    },
    /// The last attempt was interrupted; the job is runnable.
    Interrupted {
        /// The interrupted attempt.
        attempt: u32,
    },
    /// Terminal: completed with a semantic report digest.
    Completed {
        /// Digest of the semantic report projection.
        report_digest: u64,
    },
    /// Terminal: failed with a flow error.
    Failed {
        /// The recorded error text.
        error: String,
    },
}

impl JobPhase {
    /// Whether the phase is terminal (completed or failed).
    pub fn terminal(&self) -> bool {
        matches!(self, JobPhase::Completed { .. } | JobPhase::Failed { .. })
    }
}

/// One job's ledger entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEntry {
    /// Job id.
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current phase.
    pub phase: JobPhase,
    /// Attempts started so far (for retry budgets after recovery).
    pub attempts: u32,
}

/// The in-memory fold of the WAL: every known job and its phase.
#[derive(Debug, Default, Clone)]
pub struct Ledger {
    jobs: BTreeMap<u64, JobEntry>,
    /// Records that referenced a job with no surviving `Submitted`
    /// record (their line was corrupted away). Counted for diagnostics.
    pub orphaned_records: usize,
}

impl Ledger {
    /// Folds records in order, idempotently: duplicates re-assert the
    /// state they already produced, and terminal phases are sticky (a
    /// duplicated or late `Started` can never resurrect a completed
    /// job).
    pub fn from_records(records: &[WalRecord]) -> Self {
        let mut ledger = Ledger::default();
        for rec in records {
            ledger.apply(rec);
        }
        ledger
    }

    /// Applies one record to the fold. Idempotent and terminal-sticky;
    /// the daemon uses this to keep its in-memory ledger in lockstep
    /// with the records it appends.
    pub fn apply(&mut self, rec: &WalRecord) {
        if let WalRecord::Submitted { job, spec } = rec {
            self.jobs.entry(*job).or_insert_with(|| JobEntry {
                id: *job,
                spec: spec.clone(),
                phase: JobPhase::Queued,
                attempts: 0,
            });
            return;
        }
        let Some(entry) = self.jobs.get_mut(&rec.job()) else {
            self.orphaned_records += 1;
            return;
        };
        if entry.phase.terminal() {
            return;
        }
        match rec {
            WalRecord::Submitted { .. } => unreachable!("handled above"),
            WalRecord::Started { attempt, .. } => {
                entry.phase = JobPhase::Running { attempt: *attempt };
                entry.attempts = entry.attempts.max(attempt + 1);
            }
            WalRecord::Interrupted { attempt, .. } => {
                entry.phase = JobPhase::Interrupted { attempt: *attempt };
                entry.attempts = entry.attempts.max(attempt + 1);
            }
            WalRecord::Completed { report_digest, .. } => {
                entry.phase = JobPhase::Completed {
                    report_digest: *report_digest,
                };
            }
            WalRecord::Failed { error, .. } => {
                entry.phase = JobPhase::Failed {
                    error: error.clone(),
                };
            }
        }
    }

    /// All jobs, by ascending id.
    pub fn jobs(&self) -> impl Iterator<Item = &JobEntry> {
        self.jobs.values()
    }

    /// One job's entry.
    pub fn get(&self, id: u64) -> Option<&JobEntry> {
        self.jobs.get(&id)
    }

    /// The next unused job id.
    pub fn next_id(&self) -> u64 {
        self.jobs.keys().next_back().map_or(1, |last| last + 1)
    }

    /// Ids of jobs that still need work (non-terminal), in id order —
    /// a `Running` phase after a replay means the daemon died mid-run
    /// and the job resumes from its checkpoints.
    pub fn open_jobs(&self) -> Vec<u64> {
        self.jobs
            .values()
            .filter(|e| !e.phase.terminal())
            .map(|e| e.id)
            .collect()
    }

    /// Number of non-terminal jobs owned by `tenant`.
    pub fn open_for_tenant(&self, tenant: &str) -> usize {
        self.jobs
            .values()
            .filter(|e| !e.phase.terminal() && e.spec.tenant == tenant)
            .count()
    }

    /// Total number of non-terminal jobs.
    pub fn open_total(&self) -> usize {
        self.jobs.values().filter(|e| !e.phase.terminal()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tenant: &str) -> JobSpec {
        JobSpec::nano(tenant)
    }

    #[test]
    fn records_round_trip_through_frames() {
        let rec = WalRecord::Completed {
            job: 3,
            attempt: 1,
            report_digest: u64::MAX - 5,
        };
        let line = frame(&rec).unwrap();
        assert_eq!(decode_line(&line), Some(rec));
    }

    #[test]
    fn crc_rejects_payload_tampering() {
        let line = frame(&WalRecord::Started { job: 1, attempt: 0 }).unwrap();
        let tampered = line.replace("\"attempt\":0", "\"attempt\":7");
        assert_ne!(tampered, line, "tamper must hit the payload");
        assert_eq!(decode_line(&tampered), None);
    }

    #[test]
    fn ledger_fold_is_idempotent_and_terminal_sticky() {
        let records = vec![
            WalRecord::Submitted {
                job: 1,
                spec: spec("a"),
            },
            // Duplicate submit: absorbed.
            WalRecord::Submitted {
                job: 1,
                spec: spec("a"),
            },
            WalRecord::Started { job: 1, attempt: 0 },
            WalRecord::Interrupted {
                job: 1,
                attempt: 0,
                reason: "chaos".into(),
            },
            WalRecord::Started { job: 1, attempt: 1 },
            WalRecord::Completed {
                job: 1,
                attempt: 1,
                report_digest: 42,
            },
            // Late duplicates must not resurrect the job.
            WalRecord::Started { job: 1, attempt: 2 },
            WalRecord::Completed {
                job: 1,
                attempt: 2,
                report_digest: 43,
            },
        ];
        let ledger = Ledger::from_records(&records);
        let entry = ledger.get(1).unwrap();
        assert_eq!(
            entry.phase,
            JobPhase::Completed { report_digest: 42 },
            "first terminal record wins"
        );
        assert_eq!(entry.attempts, 2);
        assert!(ledger.open_jobs().is_empty());
        assert_eq!(ledger.next_id(), 2);
    }

    #[test]
    fn orphaned_records_are_counted_not_fatal() {
        let ledger = Ledger::from_records(&[WalRecord::Started { job: 9, attempt: 0 }]);
        assert_eq!(ledger.orphaned_records, 1);
        assert!(ledger.open_jobs().is_empty());
    }
}
