//! The write-ahead log: the daemon's single source of durable truth.
//!
//! `jobs.wal` is an append-only file of newline-delimited records:
//!
//! ```text
//! {"crc":<fnv1a-of-rec-json>,"rec":{"Submitted":{...}}}
//! ```
//!
//! Every append is one `write_all` of the full framed line followed by
//! `sync_data`, so after a `submit()` returns, the job exists no matter
//! when the process dies. The CRC is an FNV-1a digest of the `rec`
//! payload's canonical JSON — the serde shim serialises objects in
//! insertion order, so re-serialising the parsed payload reproduces the
//! written bytes exactly and the digest can be validated without a
//! second framing layer.
//!
//! Replay ([`Wal::replay`]) is tolerant by design:
//!
//! * a **truncated tail** (the crash window the fsync discipline
//!   leaves open: a partial final line with no newline) is dropped and
//!   flagged, never fatal;
//! * a **corrupt mid-file line** (torn short write, bit rot) fails its
//!   CRC or parse, is skipped and counted — later records still apply;
//! * **duplicate records** are absorbed idempotently when the
//!   [`Ledger`] folds records into job states.
//!
//! Losing a non-`Submitted` record is always recoverable: the ledger
//! then sees an earlier phase of the job and the daemon simply re-runs
//! it from its stage checkpoints — the flow's resume bit-identity
//! contract makes the re-run converge on the same report.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize, Value};

use crate::error::ServiceError;
use crate::jobspec::JobSpec;

/// WAL file name inside the daemon data directory.
pub const WAL_FILE: &str = "jobs.wal";

/// One durable event in a job's life. Records are integer/string-typed
/// only — no floats — so the CRC-over-reserialised-JSON check can never
/// trip over float formatting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// An idempotency-key reservation, written *before* the paired
    /// `Submitted` record. Network clients retry submissions after a
    /// lost acknowledgement; the `(tenant, key)` pair maps durably onto
    /// one job id, so the retry returns the original job instead of
    /// creating a duplicate. Writing the reservation first closes the
    /// crash window: if the daemon dies between the two appends, the
    /// retry finds the reservation and *completes* the submission under
    /// the reserved id.
    SubmitKey {
        /// The reserved job id.
        job: u64,
        /// Submitting tenant (keys are scoped per tenant).
        tenant: String,
        /// The client's idempotency key.
        key: String,
    },
    /// A job was admitted. This is the durability point of `submit`.
    Submitted {
        /// Job id (monotonic, assigned by the daemon).
        job: u64,
        /// The submitted spec, verbatim.
        spec: JobSpec,
    },
    /// An attempt at running the job began.
    Started {
        /// Job id.
        job: u64,
        /// Zero-based attempt number.
        attempt: u32,
    },
    /// An attempt was interrupted (cancellation, budget, crash injected
    /// by the chaos harness, worker panic). The job remains runnable.
    Interrupted {
        /// Job id.
        job: u64,
        /// The interrupted attempt.
        attempt: u32,
        /// Human-readable interruption cause.
        reason: String,
    },
    /// The job finished; `report_digest` is the FNV digest of the
    /// report's semantic projection (see [`crate::report`]), the value
    /// the bit-identity soak compares across chaos and clean runs.
    Completed {
        /// Job id.
        job: u64,
        /// The attempt that completed it.
        attempt: u32,
        /// Digest of the semantic report.
        report_digest: u64,
        /// Wall-clock milliseconds the job consumed across all its
        /// attempts — the quantity charged against the tenant's compute
        /// budget (see [`crate::admission`]). Recording it in the WAL
        /// makes budget accounting survive crash/restart.
        wall_ms: u64,
    },
    /// The job failed terminally (non-resumable flow error).
    Failed {
        /// Job id.
        job: u64,
        /// The attempt that failed.
        attempt: u32,
        /// The flow error text.
        error: String,
    },
}

impl WalRecord {
    /// The job this record belongs to.
    pub fn job(&self) -> u64 {
        match self {
            WalRecord::SubmitKey { job, .. }
            | WalRecord::Submitted { job, .. }
            | WalRecord::Started { job, .. }
            | WalRecord::Interrupted { job, .. }
            | WalRecord::Completed { job, .. }
            | WalRecord::Failed { job, .. } => *job,
        }
    }
}

/// Frames a record into its durable line (sans newline).
fn frame(rec: &WalRecord) -> Result<String, ServiceError> {
    let payload = serde_json::to_string(rec).map_err(|e| ServiceError::wal(e.to_string()))?;
    let crc = evalcache::fnv1a(payload.as_bytes());
    Ok(format!("{{\"crc\":{crc},\"rec\":{payload}}}"))
}

/// Extracts an unsigned integer from a shim JSON value.
fn value_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) if *i >= 0 => Some(*i as u64),
        Value::UInt(u) => Some(*u),
        _ => None,
    }
}

/// The active WAL segment plus the record count that drives rotation.
#[derive(Debug)]
struct ActiveSegment {
    file: fs::File,
    /// Lines in the active file (complete or torn — both occupy a line).
    lines: usize,
}

/// The append side of the log.
///
/// With rotation enabled (`rotate_records > 0`) the active file is
/// renamed to `<name>.<seq>` once it holds that many lines and a fresh
/// active file is started, bounding any single file's size. Replay
/// reads every segment in sequence order and then the active file; the
/// daemon compacts terminal-state jobs out of the segments at startup
/// (see [`crate::daemon`]), so the log's total size tracks the *open*
/// job set, not service lifetime.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    rotate_records: usize,
    file: Mutex<ActiveSegment>,
}

impl Wal {
    /// Opens (creating if missing) the log at `path` for appending,
    /// with rotation disabled.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] when the file cannot be opened.
    pub fn open(path: &Path) -> Result<Self, ServiceError> {
        Wal::open_with_rotation(path, 0)
    }

    /// Opens the log with segment rotation every `rotate_records`
    /// appended lines (`0` disables rotation).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] when the file cannot be opened.
    pub fn open_with_rotation(path: &Path, rotate_records: usize) -> Result<Self, ServiceError> {
        let lines = match fs::read_to_string(path) {
            Ok(text) => text.split('\n').filter(|l| !l.is_empty()).count(),
            Err(_) => 0,
        };
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ServiceError::io(path.display().to_string(), e.to_string()))?;
        Ok(Wal {
            path: path.to_path_buf(),
            rotate_records,
            file: Mutex::new(ActiveSegment { file, lines }),
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Paths of rotated segments next to `path`, in ascending sequence
    /// order. A segment is `<file-name>.<digits>` in the same
    /// directory; anything else (tmp files, the active log itself) is
    /// ignored.
    pub fn segment_paths(path: &Path) -> Vec<PathBuf> {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            return Vec::new();
        };
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        let prefix = format!("{name}.");
        let mut seqs: Vec<(u64, PathBuf)> = Vec::new();
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                let file_name = entry.file_name();
                let Some(file_name) = file_name.to_str() else {
                    continue;
                };
                if let Some(suffix) = file_name.strip_prefix(&prefix) {
                    if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
                        if let Ok(seq) = suffix.parse::<u64>() {
                            seqs.push((seq, entry.path()));
                        }
                    }
                }
            }
        }
        seqs.sort();
        seqs.into_iter().map(|(_, p)| p).collect()
    }

    /// Durably appends one record: a single write of the framed line,
    /// then `sync_data`. When this returns `Ok`, the record survives
    /// any subsequent crash.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Wal`] on serialisation or I/O failure.
    pub fn append(&self, rec: &WalRecord) -> Result<(), ServiceError> {
        let line = frame(rec)?;
        self.write_line(&format!("{line}\n"))
    }

    /// Chaos hook: appends a deliberately *short* write — a prefix of
    /// the framed payload with the newline framing kept intact — so the
    /// record fails its CRC on replay exactly like a torn write that
    /// landed between `write` and `sync`. The line framing is preserved
    /// on purpose: a torn write may garble one record, but the chaos
    /// harness must not let it cascade into the *next* append's line.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Wal`] on serialisation or I/O failure.
    pub fn append_short(&self, rec: &WalRecord) -> Result<(), ServiceError> {
        let line = frame(rec)?;
        let keep = (line.len() * 2) / 3;
        self.write_line(&format!("{}\n", &line[..keep]))
    }

    fn write_line(&self, text: &str) -> Result<(), ServiceError> {
        let mut seg = self.file.lock().unwrap_or_else(|p| p.into_inner());
        if self.rotate_records > 0 && seg.lines >= self.rotate_records {
            self.rotate(&mut seg)?;
        }
        seg.file
            .write_all(text.as_bytes())
            .and_then(|()| seg.file.sync_data())
            .map_err(|e| ServiceError::wal(format!("{}: {e}", self.path.display())))?;
        seg.lines += 1;
        Ok(())
    }

    /// Renames the active file to the next free segment sequence and
    /// starts a fresh active file. Called with the append lock held, so
    /// no record can land between the rename and the reopen.
    fn rotate(&self, seg: &mut ActiveSegment) -> Result<(), ServiceError> {
        let next_seq = Wal::segment_paths(&self.path)
            .last()
            .and_then(|p| p.extension()?.to_str()?.parse::<u64>().ok())
            .map_or(1, |seq| seq + 1);
        let segment = self.path.with_file_name(format!(
            "{}.{next_seq}",
            self.path.file_name().and_then(|n| n.to_str()).unwrap_or("")
        ));
        fs::rename(&self.path, &segment)
            .map_err(|e| ServiceError::io(self.path.display().to_string(), e.to_string()))?;
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| ServiceError::io(self.path.display().to_string(), e.to_string()))?;
        seg.file = file;
        seg.lines = 0;
        telemetry::counter_add("wal.rotations", 1);
        Ok(())
    }

    /// Replays the log at `path`: every rotated segment in sequence
    /// order, then the active file. A missing file replays as empty
    /// (the first daemon start). Corrupt lines are skipped and counted;
    /// a partial final line without newline is flagged as a truncated
    /// tail when it ends the *newest* file, and counted as corruption
    /// when it ends an older segment (rotation only ever retires
    /// complete files, so a torn segment tail is damage, not a crash
    /// window).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] only when a file exists but cannot
    /// be read at all.
    pub fn replay(path: &Path) -> Result<WalReplay, ServiceError> {
        let mut files = Wal::segment_paths(path);
        files.push(path.to_path_buf());
        let mut replay = WalReplay {
            segment_files: files.len() - 1,
            ..WalReplay::default()
        };
        let last_file = files.len() - 1;
        for (fi, file) in files.iter().enumerate() {
            let text = match fs::read_to_string(file) {
                Ok(text) => text,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                Err(e) => return Err(ServiceError::io(file.display().to_string(), e.to_string())),
            };
            let complete = text.ends_with('\n');
            let lines: Vec<&str> = text.split('\n').filter(|l| !l.is_empty()).collect();
            for (i, line) in lines.iter().enumerate() {
                let last_line = i + 1 == lines.len();
                match decode_line(line) {
                    Some(rec) => replay.records.push(rec),
                    None if last_line && !complete && fi == last_file => {
                        replay.truncated_tail = true;
                    }
                    None => replay.corrupt_lines += 1,
                }
            }
        }
        Ok(replay)
    }
}

/// Decodes one framed line, validating its CRC against the
/// re-serialised payload. `None` on any mismatch.
fn decode_line(line: &str) -> Option<WalRecord> {
    let value: Value = serde_json::from_str(line).ok()?;
    let crc = value_u64(value.get("crc")?)?;
    let rec = value.get("rec")?;
    let payload = serde_json::to_string(rec).ok()?;
    if evalcache::fnv1a(payload.as_bytes()) != crc {
        return None;
    }
    serde_json::from_value(rec.clone()).ok()
}

/// The outcome of replaying a WAL.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every record that decoded and CRC-validated, in file order.
    pub records: Vec<WalRecord>,
    /// Mid-file lines dropped for CRC or parse failure.
    pub corrupt_lines: usize,
    /// Whether the newest file ended in a partial line (crash
    /// mid-append).
    pub truncated_tail: bool,
    /// Rotated segment files read before the active log.
    pub segment_files: usize,
}

impl WalReplay {
    /// Folds the replayed records into a job ledger.
    pub fn ledger(&self) -> Ledger {
        Ledger::from_records(&self.records)
    }
}

/// A job's current phase, as reconstructed from the WAL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Admitted, no attempt started (or the `Started` record was lost).
    Queued,
    /// An attempt was running when the log ends — after a crash this
    /// means "was running when the daemon died" and the job must be
    /// resumed.
    Running {
        /// The in-flight attempt.
        attempt: u32,
    },
    /// The last attempt was interrupted; the job is runnable.
    Interrupted {
        /// The interrupted attempt.
        attempt: u32,
    },
    /// Terminal: completed with a semantic report digest.
    Completed {
        /// Digest of the semantic report projection.
        report_digest: u64,
    },
    /// Terminal: failed with a flow error.
    Failed {
        /// The recorded error text.
        error: String,
    },
}

impl JobPhase {
    /// Whether the phase is terminal (completed or failed).
    pub fn terminal(&self) -> bool {
        matches!(self, JobPhase::Completed { .. } | JobPhase::Failed { .. })
    }
}

/// One job's ledger entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEntry {
    /// Job id.
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current phase.
    pub phase: JobPhase,
    /// Attempts started so far (for retry budgets after recovery).
    pub attempts: u32,
    /// Wall-clock milliseconds charged on completion (0 until then).
    pub wall_ms: u64,
}

/// The in-memory fold of the WAL: every known job and its phase.
#[derive(Debug, Default, Clone)]
pub struct Ledger {
    jobs: BTreeMap<u64, JobEntry>,
    /// Idempotency reservations: `(tenant, client key) → job id`.
    /// First reservation wins; duplicates re-assert it.
    keys: BTreeMap<(String, String), u64>,
    /// Records that referenced a job with no surviving `Submitted`
    /// record (their line was corrupted away). Counted for diagnostics.
    pub orphaned_records: usize,
}

impl Ledger {
    /// Folds records in order, idempotently: duplicates re-assert the
    /// state they already produced, and terminal phases are sticky (a
    /// duplicated or late `Started` can never resurrect a completed
    /// job).
    pub fn from_records(records: &[WalRecord]) -> Self {
        let mut ledger = Ledger::default();
        for rec in records {
            ledger.apply(rec);
        }
        ledger
    }

    /// Applies one record to the fold. Idempotent and terminal-sticky;
    /// the daemon uses this to keep its in-memory ledger in lockstep
    /// with the records it appends.
    pub fn apply(&mut self, rec: &WalRecord) {
        if let WalRecord::SubmitKey { job, tenant, key } = rec {
            self.keys
                .entry((tenant.clone(), key.clone()))
                .or_insert(*job);
            return;
        }
        if let WalRecord::Submitted { job, spec } = rec {
            self.jobs.entry(*job).or_insert_with(|| JobEntry {
                id: *job,
                spec: spec.clone(),
                phase: JobPhase::Queued,
                attempts: 0,
                wall_ms: 0,
            });
            return;
        }
        let Some(entry) = self.jobs.get_mut(&rec.job()) else {
            self.orphaned_records += 1;
            return;
        };
        if entry.phase.terminal() {
            return;
        }
        match rec {
            WalRecord::SubmitKey { .. } | WalRecord::Submitted { .. } => {
                unreachable!("handled above")
            }
            WalRecord::Started { attempt, .. } => {
                entry.phase = JobPhase::Running { attempt: *attempt };
                entry.attempts = entry.attempts.max(attempt + 1);
            }
            WalRecord::Interrupted { attempt, .. } => {
                entry.phase = JobPhase::Interrupted { attempt: *attempt };
                entry.attempts = entry.attempts.max(attempt + 1);
            }
            WalRecord::Completed {
                report_digest,
                wall_ms,
                ..
            } => {
                entry.phase = JobPhase::Completed {
                    report_digest: *report_digest,
                };
                entry.wall_ms = *wall_ms;
            }
            WalRecord::Failed { error, .. } => {
                entry.phase = JobPhase::Failed {
                    error: error.clone(),
                };
            }
        }
    }

    /// All jobs, by ascending id.
    pub fn jobs(&self) -> impl Iterator<Item = &JobEntry> {
        self.jobs.values()
    }

    /// One job's entry.
    pub fn get(&self, id: u64) -> Option<&JobEntry> {
        self.jobs.get(&id)
    }

    /// The next unused job id. Idempotency reservations count even
    /// when their `Submitted` record never landed (the crash window a
    /// keyed retry later completes): a reserved id is never reissued.
    pub fn next_id(&self) -> u64 {
        let last_job = self.jobs.keys().next_back().copied().unwrap_or(0);
        let last_reserved = self.keys.values().max().copied().unwrap_or(0);
        last_job.max(last_reserved) + 1
    }

    /// The job id reserved for `(tenant, key)`, if any.
    pub fn lookup_key(&self, tenant: &str, key: &str) -> Option<u64> {
        self.keys
            .get(&(tenant.to_string(), key.to_string()))
            .copied()
    }

    /// The client key reserved for `job`, if any (reverse lookup; used
    /// by compaction to preserve reservations).
    pub fn key_for_job(&self, job: u64) -> Option<(&str, &str)> {
        self.keys
            .iter()
            .find(|(_, id)| **id == job)
            .map(|((tenant, key), _)| (tenant.as_str(), key.as_str()))
    }

    /// Total wall-clock milliseconds charged to `tenant` by completed
    /// jobs — the quantity the admission budget gates on.
    pub fn spent_ms_for_tenant(&self, tenant: &str) -> u64 {
        self.jobs
            .values()
            .filter(|e| e.spec.tenant == tenant)
            .map(|e| e.wall_ms)
            .sum()
    }

    /// Synthesises the minimal record sequence that folds back into
    /// this ledger: per job (id order) the key reservation, the
    /// `Submitted` record, and one state record — the terminal record
    /// for finished jobs, an `Interrupted` marker preserving the
    /// attempt count for open ones. This is the compaction image the
    /// daemon rewrites segments down to at startup.
    pub fn compaction_records(&self) -> Vec<WalRecord> {
        let mut records = Vec::new();
        for entry in self.jobs.values() {
            if let Some((tenant, key)) = self.key_for_job(entry.id) {
                records.push(WalRecord::SubmitKey {
                    job: entry.id,
                    tenant: tenant.to_string(),
                    key: key.to_string(),
                });
            }
            records.push(WalRecord::Submitted {
                job: entry.id,
                spec: entry.spec.clone(),
            });
            let attempt = entry.attempts.saturating_sub(1);
            match &entry.phase {
                JobPhase::Completed { report_digest } => records.push(WalRecord::Completed {
                    job: entry.id,
                    attempt,
                    report_digest: *report_digest,
                    wall_ms: entry.wall_ms,
                }),
                JobPhase::Failed { error } => records.push(WalRecord::Failed {
                    job: entry.id,
                    attempt,
                    error: error.clone(),
                }),
                _ if entry.attempts > 0 => records.push(WalRecord::Interrupted {
                    job: entry.id,
                    attempt,
                    reason: "compaction marker".into(),
                }),
                _ => {}
            }
        }
        // Reservations whose `Submitted` never landed (crash between
        // the two appends) must survive compaction: a keyed retry
        // completes them under the reserved id.
        for ((tenant, key), job) in &self.keys {
            if !self.jobs.contains_key(job) {
                records.push(WalRecord::SubmitKey {
                    job: *job,
                    tenant: tenant.clone(),
                    key: key.clone(),
                });
            }
        }
        records
    }

    /// Ids of jobs that still need work (non-terminal), in id order —
    /// a `Running` phase after a replay means the daemon died mid-run
    /// and the job resumes from its checkpoints.
    pub fn open_jobs(&self) -> Vec<u64> {
        self.jobs
            .values()
            .filter(|e| !e.phase.terminal())
            .map(|e| e.id)
            .collect()
    }

    /// Number of non-terminal jobs owned by `tenant`.
    pub fn open_for_tenant(&self, tenant: &str) -> usize {
        self.jobs
            .values()
            .filter(|e| !e.phase.terminal() && e.spec.tenant == tenant)
            .count()
    }

    /// Total number of non-terminal jobs.
    pub fn open_total(&self) -> usize {
        self.jobs.values().filter(|e| !e.phase.terminal()).count()
    }
}

/// Compacts the log at `path` down to `ledger`'s minimal record image:
/// writes the image to a temporary file (fsync'd), atomically renames
/// it over the active log, then deletes the rotated segments. Returns
/// the number of segment files removed.
///
/// Crash-safe at every step because the ledger fold is idempotent and
/// terminal-sticky: a crash before the rename leaves the old files
/// untouched (the tmp name never parses as a segment); a crash after
/// the rename but before the deletes replays segments *and* the
/// compacted image — duplicates are absorbed.
///
/// # Errors
///
/// Returns [`ServiceError`] when the image cannot be written or
/// renamed; segment deletion failures are swallowed (they only delay
/// the next compaction).
pub fn compact(path: &Path, ledger: &Ledger) -> Result<usize, ServiceError> {
    let mut image = String::new();
    for rec in ledger.compaction_records() {
        image.push_str(&frame(&rec)?);
        image.push('\n');
    }
    let tmp = path.with_file_name(format!(
        "{}.compact-tmp",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("wal")
    ));
    let io_err = |e: std::io::Error| ServiceError::io(tmp.display().to_string(), e.to_string());
    {
        let mut file = fs::File::create(&tmp).map_err(io_err)?;
        file.write_all(image.as_bytes()).map_err(io_err)?;
        file.sync_data().map_err(io_err)?;
    }
    fs::rename(&tmp, path)
        .map_err(|e| ServiceError::io(path.display().to_string(), e.to_string()))?;
    let mut removed = 0;
    for segment in Wal::segment_paths(path) {
        if fs::remove_file(&segment).is_ok() {
            removed += 1;
        }
    }
    telemetry::counter_add("wal.compactions", 1);
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tenant: &str) -> JobSpec {
        JobSpec::nano(tenant)
    }

    #[test]
    fn records_round_trip_through_frames() {
        let rec = WalRecord::Completed {
            job: 3,
            attempt: 1,
            report_digest: u64::MAX - 5,
            wall_ms: 1234,
        };
        let line = frame(&rec).unwrap();
        assert_eq!(decode_line(&line), Some(rec));
        let key = WalRecord::SubmitKey {
            job: 9,
            tenant: "acme".into(),
            key: "retry-0".into(),
        };
        let line = frame(&key).unwrap();
        assert_eq!(decode_line(&line), Some(key));
    }

    #[test]
    fn crc_rejects_payload_tampering() {
        let line = frame(&WalRecord::Started { job: 1, attempt: 0 }).unwrap();
        let tampered = line.replace("\"attempt\":0", "\"attempt\":7");
        assert_ne!(tampered, line, "tamper must hit the payload");
        assert_eq!(decode_line(&tampered), None);
    }

    #[test]
    fn ledger_fold_is_idempotent_and_terminal_sticky() {
        let records = vec![
            WalRecord::Submitted {
                job: 1,
                spec: spec("a"),
            },
            // Duplicate submit: absorbed.
            WalRecord::Submitted {
                job: 1,
                spec: spec("a"),
            },
            WalRecord::Started { job: 1, attempt: 0 },
            WalRecord::Interrupted {
                job: 1,
                attempt: 0,
                reason: "chaos".into(),
            },
            WalRecord::Started { job: 1, attempt: 1 },
            WalRecord::Completed {
                job: 1,
                attempt: 1,
                report_digest: 42,
                wall_ms: 10,
            },
            // Late duplicates must not resurrect the job.
            WalRecord::Started { job: 1, attempt: 2 },
            WalRecord::Completed {
                job: 1,
                attempt: 2,
                report_digest: 43,
                wall_ms: 99,
            },
        ];
        let ledger = Ledger::from_records(&records);
        let entry = ledger.get(1).unwrap();
        assert_eq!(
            entry.phase,
            JobPhase::Completed { report_digest: 42 },
            "first terminal record wins"
        );
        assert_eq!(entry.attempts, 2);
        assert!(ledger.open_jobs().is_empty());
        assert_eq!(ledger.next_id(), 2);
    }

    #[test]
    fn orphaned_records_are_counted_not_fatal() {
        let ledger = Ledger::from_records(&[WalRecord::Started { job: 9, attempt: 0 }]);
        assert_eq!(ledger.orphaned_records, 1);
        assert!(ledger.open_jobs().is_empty());
    }

    #[test]
    fn submit_keys_reserve_ids_and_survive_lost_submitted() {
        let ledger = Ledger::from_records(&[
            WalRecord::SubmitKey {
                job: 1,
                tenant: "a".into(),
                key: "k1".into(),
            },
            WalRecord::Submitted {
                job: 1,
                spec: spec("a"),
            },
            // Crash window: reservation with no Submitted record.
            WalRecord::SubmitKey {
                job: 2,
                tenant: "a".into(),
                key: "k2".into(),
            },
        ]);
        assert_eq!(ledger.lookup_key("a", "k1"), Some(1));
        assert_eq!(ledger.lookup_key("a", "k2"), Some(2));
        assert_eq!(ledger.lookup_key("b", "k1"), None, "keys are per tenant");
        assert_eq!(ledger.next_id(), 3, "reserved ids are never reissued");
        assert_eq!(ledger.key_for_job(1), Some(("a", "k1")));
    }

    #[test]
    fn duplicate_submit_key_first_reservation_wins() {
        let ledger = Ledger::from_records(&[
            WalRecord::SubmitKey {
                job: 1,
                tenant: "a".into(),
                key: "k".into(),
            },
            WalRecord::SubmitKey {
                job: 5,
                tenant: "a".into(),
                key: "k".into(),
            },
        ]);
        assert_eq!(ledger.lookup_key("a", "k"), Some(1));
    }

    #[test]
    fn completed_wall_ms_charges_the_tenant_budget() {
        let ledger = Ledger::from_records(&[
            WalRecord::Submitted {
                job: 1,
                spec: spec("a"),
            },
            WalRecord::Submitted {
                job: 2,
                spec: spec("a"),
            },
            WalRecord::Submitted {
                job: 3,
                spec: spec("b"),
            },
            WalRecord::Completed {
                job: 1,
                attempt: 0,
                report_digest: 1,
                wall_ms: 150,
            },
            WalRecord::Completed {
                job: 3,
                attempt: 0,
                report_digest: 2,
                wall_ms: 70,
            },
        ]);
        assert_eq!(ledger.spent_ms_for_tenant("a"), 150, "open jobs free");
        assert_eq!(ledger.spent_ms_for_tenant("b"), 70);
        assert_eq!(ledger.spent_ms_for_tenant("c"), 0);
    }

    #[test]
    fn compaction_records_fold_back_to_the_same_ledger() {
        let records = vec![
            WalRecord::SubmitKey {
                job: 1,
                tenant: "a".into(),
                key: "k1".into(),
            },
            WalRecord::Submitted {
                job: 1,
                spec: spec("a"),
            },
            WalRecord::Started { job: 1, attempt: 0 },
            WalRecord::Completed {
                job: 1,
                attempt: 0,
                report_digest: 77,
                wall_ms: 41,
            },
            WalRecord::Submitted {
                job: 2,
                spec: spec("b"),
            },
            WalRecord::Started { job: 2, attempt: 0 },
            WalRecord::Interrupted {
                job: 2,
                attempt: 0,
                reason: "chaos".into(),
            },
            WalRecord::Started { job: 2, attempt: 1 },
            // Orphaned reservation from a crash window.
            WalRecord::SubmitKey {
                job: 3,
                tenant: "c".into(),
                key: "k3".into(),
            },
        ];
        let ledger = Ledger::from_records(&records);
        let compacted = Ledger::from_records(&ledger.compaction_records());
        assert_eq!(
            compacted.get(1).unwrap().phase,
            JobPhase::Completed { report_digest: 77 }
        );
        assert_eq!(compacted.get(1).unwrap().wall_ms, 41);
        assert_eq!(compacted.lookup_key("a", "k1"), Some(1));
        assert_eq!(compacted.lookup_key("c", "k3"), Some(3));
        let open = compacted.get(2).unwrap();
        assert_eq!(open.attempts, 2, "attempt count survives compaction");
        assert!(!open.phase.terminal());
        assert_eq!(compacted.open_jobs(), vec![2]);
        assert_eq!(compacted.next_id(), 4);
        assert_eq!(compacted.spent_ms_for_tenant("a"), 41);
    }
}
