//! `hiersizer-cli` — the wire client for `hiersizerd --listen`.
//!
//! ```text
//! hiersizer-cli submit --addr HOST:PORT --tenant T [--key K]
//!                      [--spec FILE] [--seed-offset N] [--retries N]
//! hiersizer-cli status --addr HOST:PORT --job ID
//! hiersizer-cli watch  --addr HOST:PORT --job ID [--from N]
//! hiersizer-cli ping   --addr HOST:PORT
//! hiersizer-cli drain  --addr HOST:PORT
//! ```
//!
//! `submit` is always keyed: when `--key` is omitted a process-unique
//! key is generated (`cli-<pid>-<nanos>`), printed, and reused across
//! the retry loop — so a lost ACK never double-enqueues, it dedupes.
//! Retries are classed (transient wire faults back off on deterministic
//! jitter; structured rejections honour the server's `retry_after_ms`;
//! protocol errors fail fast). Exit codes: 0 success, 1 failure,
//! 2 usage.

use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use service::net::client::{self, ClientConfig};
use service::{JobPhase, JobSpec};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hiersizer-cli submit --addr A --tenant T [--key K] [--spec FILE] \
         [--seed-offset N] [--retries N]\n  hiersizer-cli status --addr A --job ID\n  \
         hiersizer-cli watch --addr A --job ID [--from N]\n  hiersizer-cli ping --addr A\n  \
         hiersizer-cli drain --addr A"
    );
    ExitCode::from(2)
}

struct Flags {
    addr: Option<String>,
    tenant: Option<String>,
    key: Option<String>,
    spec: Option<String>,
    job: Option<u64>,
    from: u64,
    seed_offset: u64,
    retries: Option<usize>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        addr: None,
        tenant: None,
        key: None,
        spec: None,
        job: None,
        from: 0,
        seed_offset: 0,
        retries: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => flags.addr = Some(value("--addr")?),
            "--tenant" => flags.tenant = Some(value("--tenant")?),
            "--key" => flags.key = Some(value("--key")?),
            "--spec" => flags.spec = Some(value("--spec")?),
            "--job" => {
                flags.job = Some(value("--job")?.parse().map_err(|e| format!("--job: {e}"))?);
            }
            "--from" => {
                flags.from = value("--from")?
                    .parse()
                    .map_err(|e| format!("--from: {e}"))?;
            }
            "--seed-offset" => {
                flags.seed_offset = value("--seed-offset")?
                    .parse()
                    .map_err(|e| format!("--seed-offset: {e}"))?;
            }
            "--retries" => {
                flags.retries = Some(
                    value("--retries")?
                        .parse()
                        .map_err(|e| format!("--retries: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(flags)
}

/// A key unique to this process invocation: pid + wall-clock nanos.
/// Uniqueness, not secrecy, is the requirement — two CLI invocations
/// must not collide, one invocation's retries must.
fn generate_key() -> String {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    format!("cli-{}-{nanos}", std::process::id())
}

fn cmd_submit(flags: &Flags) -> ExitCode {
    let Some(addr) = &flags.addr else {
        return usage();
    };
    let spec = match (&flags.spec, &flags.tenant) {
        (Some(path), _) => match std::fs::read_to_string(path) {
            Ok(text) => match serde_json::from_str::<JobSpec>(&text) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("hiersizer-cli: invalid spec {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("hiersizer-cli: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, Some(tenant)) => JobSpec::nano(tenant).with_seed_offset(flags.seed_offset),
        (None, None) => return usage(),
    };
    let key = flags.key.clone().unwrap_or_else(generate_key);
    let mut cfg = ClientConfig::default();
    if let Some(retries) = flags.retries {
        cfg.retries = retries;
    }
    eprintln!("hiersizer-cli: submitting with key {key}");
    match client::submit_with_retry(addr, &spec, &key, &cfg) {
        Ok(outcome) => {
            println!(
                "{{\"job\": {}, \"deduped\": {}, \"attempts\": {}, \"key\": \"{}\"}}",
                outcome.job, outcome.deduped, outcome.attempts, key
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hiersizer-cli: submit failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_status(flags: &Flags) -> ExitCode {
    let (Some(addr), Some(job)) = (&flags.addr, flags.job) else {
        return usage();
    };
    match client::status(addr, job, &ClientConfig::default()) {
        Ok(row) => {
            match serde_json::to_string_pretty(&row) {
                Ok(text) => println!("{text}"),
                Err(e) => {
                    eprintln!("hiersizer-cli: render failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hiersizer-cli: status failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_watch(flags: &Flags) -> ExitCode {
    let (Some(addr), Some(job)) = (&flags.addr, flags.job) else {
        return usage();
    };
    // Watching spans the whole job, so give frames a generous deadline;
    // each individual frame read is still bounded.
    let cfg = ClientConfig {
        io_timeout_ms: 300_000,
        ..ClientConfig::default()
    };
    match client::watch(addr, job, flags.from, &cfg, |index, event| {
        println!("{index}\t{event}");
    }) {
        Ok(phase) => {
            println!("terminal\t{:?}", phase);
            if matches!(phase, JobPhase::Completed { .. }) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("hiersizer-cli: watch failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_ping(flags: &Flags) -> ExitCode {
    let Some(addr) = &flags.addr else {
        return usage();
    };
    match client::ping(addr, &ClientConfig::default()) {
        Ok((version, draining)) => {
            println!("{{\"version\": {version}, \"draining\": {draining}}}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hiersizer-cli: ping failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_drain(flags: &Flags) -> ExitCode {
    let Some(addr) = &flags.addr else {
        return usage();
    };
    match client::drain(addr, &ClientConfig::default()) {
        Ok(open_jobs) => {
            println!("{{\"draining\": true, \"open_jobs\": {open_jobs}}}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hiersizer-cli: drain failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let flags = match parse_flags(rest) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("hiersizer-cli: {e}");
            return usage();
        }
    };
    match cmd.as_str() {
        "submit" => cmd_submit(&flags),
        "status" => cmd_status(&flags),
        "watch" => cmd_watch(&flags),
        "ping" => cmd_ping(&flags),
        "drain" => cmd_drain(&flags),
        _ => usage(),
    }
}
