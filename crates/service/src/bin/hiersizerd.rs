//! `hiersizerd` — the optimisation-as-a-service daemon.
//!
//! ```text
//! hiersizerd --data-dir DIR [--once] [--workers N] [--chaos SEED]
//!            [--max-open N] [--max-open-per-tenant N] [--poll-ms N]
//!            [--listen ADDR] [--wal-rotate N] [--tenant-budget-ms N]
//! ```
//!
//! Jobs arrive two ways: as JSON [`JobSpec`] files dropped into
//! `<data>/incoming/` (each poll cycle ingests them in name order), and
//! — with `--listen` — over the TCP protocol served by [`NetServer`]
//! (`hiersizer-cli` is the matching client). The actual bound address
//! is written to `<data>/net_addr` so tests and scripts can use port 0.
//! Each cycle admits or rejects work, runs the queue to idle, and
//! refreshes `status.json` + `health.json`. With `--once` the daemon
//! drains everything and exits — the mode the kill-restart end-to-end
//! test and cron-style deployments use. Without it, the daemon polls
//! until SIGTERM, which triggers a graceful drain: stop accepting,
//! finish in-flight jobs, flush status, exit.
//!
//! Rejected submissions leave a `<name>.rejected.json` next to the
//! removed spec, carrying the structured retry-after; *unparseable or
//! unreadable* drops are quarantined into `incoming/rejected/` with a
//! `<name>.reason.json` explaining why, and counted in `status.json` —
//! a torn half-written spec must never wedge the intake loop into
//! retrying it forever.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use service::net::{NetConfig, NetServer};
use service::{ChaosPolicy, Daemon, DaemonConfig, JobSpec, Submission};

/// Set by the SIGTERM handler; the main loop treats it as `Drain`.
static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_handler() {
    // std links libc; one raw `signal` registration avoids growing a
    // dependency for a single flag flip. The handler only stores to a
    // static atomic — async-signal-safe by construction.
    extern "C" fn on_sigterm(_sig: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

struct Args {
    data_dir: PathBuf,
    once: bool,
    workers: usize,
    chaos_seed: Option<u64>,
    max_open: Option<usize>,
    max_open_per_tenant: Option<usize>,
    poll_ms: u64,
    listen: Option<String>,
    wal_rotate: usize,
    tenant_budget_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data_dir: PathBuf::new(),
        once: false,
        workers: 1,
        chaos_seed: None,
        max_open: None,
        max_open_per_tenant: None,
        poll_ms: 200,
        listen: None,
        wal_rotate: 0,
        tenant_budget_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--data-dir" => args.data_dir = PathBuf::from(value("--data-dir")?),
            "--once" => args.once = true,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--chaos" => {
                args.chaos_seed = Some(
                    value("--chaos")?
                        .parse()
                        .map_err(|e| format!("--chaos: {e}"))?,
                );
            }
            "--max-open" => {
                args.max_open = Some(
                    value("--max-open")?
                        .parse()
                        .map_err(|e| format!("--max-open: {e}"))?,
                );
            }
            "--max-open-per-tenant" => {
                args.max_open_per_tenant = Some(
                    value("--max-open-per-tenant")?
                        .parse()
                        .map_err(|e| format!("--max-open-per-tenant: {e}"))?,
                );
            }
            "--poll-ms" => {
                args.poll_ms = value("--poll-ms")?
                    .parse()
                    .map_err(|e| format!("--poll-ms: {e}"))?;
            }
            "--listen" => args.listen = Some(value("--listen")?),
            "--wal-rotate" => {
                args.wal_rotate = value("--wal-rotate")?
                    .parse()
                    .map_err(|e| format!("--wal-rotate: {e}"))?;
            }
            "--tenant-budget-ms" => {
                args.tenant_budget_ms = value("--tenant-budget-ms")?
                    .parse()
                    .map_err(|e| format!("--tenant-budget-ms: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.data_dir.as_os_str().is_empty() {
        return Err("--data-dir is required".into());
    }
    Ok(args)
}

/// Quarantines an intake file that cannot be parsed (or read): moves it
/// into `incoming/rejected/` and writes a structured reason next to it.
/// The move is what breaks the retry-forever loop — the poll glob never
/// looks inside `rejected/`.
fn quarantine(daemon: &Daemon, incoming: &Path, path: &Path, reason: &str) {
    let rejected = incoming.join("rejected");
    let _ = fs::create_dir_all(&rejected);
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed.json".into());
    let dest = rejected.join(&name);
    if fs::rename(path, &dest).is_err() {
        // Cross-device or permission trouble: fall back to copy+remove,
        // and if even that fails, remove alone still unwedges intake.
        if fs::copy(path, &dest).is_err() {
            eprintln!("hiersizerd: could not quarantine {}", path.display());
        }
        let _ = fs::remove_file(path);
    }
    let note = format!(
        "{{\n  \"file\": {:?},\n  \"reason\": {:?},\n  \"quarantined_by_pid\": {}\n}}\n",
        name,
        reason,
        std::process::id()
    );
    let _ = fs::write(rejected.join(format!("{name}.reason.json")), note);
    daemon.note_quarantined();
    eprintln!("hiersizerd: quarantined {}: {reason}", path.display());
}

/// Ingests every `*.json` spec in `<data>/incoming`, in name order for
/// determinism. Returns how many were accepted.
fn ingest_incoming(daemon: &Daemon, incoming: &Path) -> usize {
    let Ok(entries) = fs::read_dir(incoming) else {
        return 0;
    };
    let mut names: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .filter(|p| {
            !p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".rejected.json"))
        })
        .collect();
    names.sort();
    let mut accepted = 0;
    for path in names {
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                quarantine(daemon, incoming, &path, &format!("unreadable: {e}"));
                continue;
            }
        };
        let spec: JobSpec = match serde_json::from_str(&text) {
            Ok(spec) => spec,
            Err(e) => {
                quarantine(daemon, incoming, &path, &format!("invalid spec: {e}"));
                continue;
            }
        };
        match daemon.submit(&spec) {
            Ok(Submission::Accepted(id)) => {
                eprintln!("hiersizerd: accepted job {id} from {}", path.display());
                let _ = fs::remove_file(&path);
                accepted += 1;
            }
            Ok(Submission::Deduped(id)) => {
                eprintln!("hiersizerd: deduped job {id} from {}", path.display());
                let _ = fs::remove_file(&path);
            }
            Ok(Submission::Rejected(rej)) => {
                let note = serde_json::to_string_pretty(&rej).unwrap_or_default();
                let _ = fs::write(path.with_extension("rejected.json"), note);
                let _ = fs::remove_file(&path);
                eprintln!(
                    "hiersizerd: rejected {} ({:?}, retry in {}ms)",
                    path.display(),
                    rej.reason,
                    rej.retry_after_ms
                );
            }
            Err(e) => eprintln!("hiersizerd: submit failed for {}: {e}", path.display()),
        }
    }
    accepted
}

fn write_health(data_dir: &Path, heartbeat: u64, open_jobs: usize) {
    let text = format!(
        "{{\n  \"healthy\": true,\n  \"pid\": {},\n  \"heartbeat\": {heartbeat},\n  \"open_jobs\": {open_jobs}\n}}\n",
        std::process::id()
    );
    let tmp = data_dir.join("health.json.tmp");
    if fs::write(&tmp, text).is_ok() {
        let _ = fs::rename(&tmp, data_dir.join("health.json"));
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("hiersizerd: {e}");
            eprintln!(
                "usage: hiersizerd --data-dir DIR [--once] [--workers N] [--chaos SEED] \
                 [--max-open N] [--max-open-per-tenant N] [--poll-ms N] [--listen ADDR] \
                 [--wal-rotate N] [--tenant-budget-ms N]"
            );
            return ExitCode::from(2);
        }
    };
    install_sigterm_handler();

    let mut cfg = DaemonConfig::new(&args.data_dir);
    cfg.workers = args.workers.max(1);
    cfg.wal_rotate_records = args.wal_rotate;
    cfg.admission.tenant_budget_ms = args.tenant_budget_ms;
    if let Some(seed) = args.chaos_seed {
        cfg.chaos = Some(ChaosPolicy::soak(seed));
    }
    if let Some(max) = args.max_open {
        cfg.admission.max_open = max;
    }
    if let Some(max) = args.max_open_per_tenant {
        cfg.admission.max_open_per_tenant = max;
    }

    let incoming = args.data_dir.join("incoming");
    let _ = fs::create_dir_all(&incoming);

    let daemon = match Daemon::open(cfg) {
        Ok(daemon) => Arc::new(daemon),
        Err(e) => {
            eprintln!("hiersizerd: open failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rec = daemon.recovery();
    eprintln!(
        "hiersizerd: recovered {} records ({} corrupt, truncated_tail={}), \
         resuming {} jobs, compacted {} segment(s)",
        rec.replayed_records,
        rec.corrupt_lines,
        rec.truncated_tail,
        rec.resumed_jobs,
        rec.compacted_segments
    );

    let server = match &args.listen {
        Some(addr) => {
            let net_cfg = NetConfig {
                addr: addr.clone(),
                ..NetConfig::default()
            };
            match NetServer::start(Arc::clone(&daemon), net_cfg) {
                Ok(server) => {
                    let bound = server.local_addr();
                    eprintln!("hiersizerd: listening on {bound}");
                    let tmp = args.data_dir.join("net_addr.tmp");
                    if fs::write(&tmp, bound.to_string()).is_ok() {
                        let _ = fs::rename(&tmp, args.data_dir.join("net_addr"));
                    }
                    Some(server)
                }
                Err(e) => {
                    eprintln!("hiersizerd: listen on {addr} failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    let mut heartbeat = 0u64;
    let exit_code = loop {
        if TERMINATE.load(Ordering::SeqCst) && !daemon.is_draining() {
            eprintln!("hiersizerd: SIGTERM — draining");
            daemon.drain();
            if let Some(server) = &server {
                server.stop_accepting();
            }
        }
        ingest_incoming(&daemon, &incoming);
        let executed = daemon.run_until_idle();
        if executed > 0 {
            eprintln!("hiersizerd: executed {executed} job(s)");
        }
        let status = daemon.status();
        if let Err(e) = daemon.write_status() {
            eprintln!("hiersizerd: status write failed: {e}");
        }
        heartbeat += 1;
        write_health(&args.data_dir, heartbeat, status.queued + status.running);
        if daemon.is_draining() {
            // In-flight work is already done (run_until_idle returned,
            // and while draining nothing new is claimed); flush and go.
            let _ = daemon.write_status();
            eprintln!(
                "hiersizerd: drained — {} completed, {} failed, {} still queued (durable)",
                status.completed, status.failed, status.queued
            );
            break ExitCode::SUCCESS;
        }
        if args.once {
            let drained = status.queued == 0
                && status.running == 0
                && ingest_incoming(&daemon, &incoming) == 0;
            if drained {
                let _ = daemon.write_status();
                eprintln!(
                    "hiersizerd: idle — {} completed, {} failed; exiting (--once)",
                    status.completed, status.failed
                );
                break ExitCode::SUCCESS;
            }
        } else {
            std::thread::sleep(Duration::from_millis(args.poll_ms));
        }
    };
    if let Some(server) = server {
        server.shutdown(Duration::from_secs(2));
    }
    exit_code
}
