//! `hiersizerd` — the optimisation-as-a-service daemon.
//!
//! ```text
//! hiersizerd --data-dir DIR [--once] [--workers N] [--chaos SEED]
//!            [--max-open N] [--max-open-per-tenant N] [--poll-ms N]
//! ```
//!
//! Jobs arrive as JSON [`JobSpec`] files dropped into
//! `<data>/incoming/`; each poll cycle ingests them (in name order),
//! admits or rejects them, runs the queue to idle, and refreshes
//! `status.json` + `health.json`. With `--once` the daemon drains
//! everything and exits — the mode the kill-restart end-to-end test and
//! cron-style deployments use. Without it, the daemon polls forever.
//!
//! Rejected submissions leave a `<name>.rejected.json` next to the
//! removed spec, carrying the structured retry-after; malformed specs
//! are renamed to `<name>.invalid` so they cannot wedge the intake loop.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use service::{ChaosPolicy, Daemon, DaemonConfig, JobSpec, Submission};

struct Args {
    data_dir: PathBuf,
    once: bool,
    workers: usize,
    chaos_seed: Option<u64>,
    max_open: Option<usize>,
    max_open_per_tenant: Option<usize>,
    poll_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data_dir: PathBuf::new(),
        once: false,
        workers: 1,
        chaos_seed: None,
        max_open: None,
        max_open_per_tenant: None,
        poll_ms: 200,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--data-dir" => args.data_dir = PathBuf::from(value("--data-dir")?),
            "--once" => args.once = true,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--chaos" => {
                args.chaos_seed = Some(
                    value("--chaos")?
                        .parse()
                        .map_err(|e| format!("--chaos: {e}"))?,
                );
            }
            "--max-open" => {
                args.max_open = Some(
                    value("--max-open")?
                        .parse()
                        .map_err(|e| format!("--max-open: {e}"))?,
                );
            }
            "--max-open-per-tenant" => {
                args.max_open_per_tenant = Some(
                    value("--max-open-per-tenant")?
                        .parse()
                        .map_err(|e| format!("--max-open-per-tenant: {e}"))?,
                );
            }
            "--poll-ms" => {
                args.poll_ms = value("--poll-ms")?
                    .parse()
                    .map_err(|e| format!("--poll-ms: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.data_dir.as_os_str().is_empty() {
        return Err("--data-dir is required".into());
    }
    Ok(args)
}

/// Ingests every `*.json` spec in `<data>/incoming`, in name order for
/// determinism. Returns how many were accepted.
fn ingest_incoming(daemon: &Daemon, incoming: &Path) -> usize {
    let Ok(entries) = fs::read_dir(incoming) else {
        return 0;
    };
    let mut names: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .filter(|p| {
            !p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".rejected.json"))
        })
        .collect();
    names.sort();
    let mut accepted = 0;
    for path in names {
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let spec: JobSpec = match serde_json::from_str(&text) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("hiersizerd: invalid spec {}: {e}", path.display());
                let _ = fs::rename(&path, path.with_extension("invalid"));
                continue;
            }
        };
        match daemon.submit(&spec) {
            Ok(Submission::Accepted(id)) => {
                eprintln!("hiersizerd: accepted job {id} from {}", path.display());
                let _ = fs::remove_file(&path);
                accepted += 1;
            }
            Ok(Submission::Rejected(rej)) => {
                let note = serde_json::to_string_pretty(&rej).unwrap_or_default();
                let _ = fs::write(path.with_extension("rejected.json"), note);
                let _ = fs::remove_file(&path);
                eprintln!(
                    "hiersizerd: rejected {} ({:?}, retry in {}ms)",
                    path.display(),
                    rej.reason,
                    rej.retry_after_ms
                );
            }
            Err(e) => eprintln!("hiersizerd: submit failed for {}: {e}", path.display()),
        }
    }
    accepted
}

fn write_health(data_dir: &Path, heartbeat: u64, open_jobs: usize) {
    let text = format!(
        "{{\n  \"healthy\": true,\n  \"pid\": {},\n  \"heartbeat\": {heartbeat},\n  \"open_jobs\": {open_jobs}\n}}\n",
        std::process::id()
    );
    let tmp = data_dir.join("health.json.tmp");
    if fs::write(&tmp, text).is_ok() {
        let _ = fs::rename(&tmp, data_dir.join("health.json"));
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("hiersizerd: {e}");
            eprintln!(
                "usage: hiersizerd --data-dir DIR [--once] [--workers N] [--chaos SEED] \
                 [--max-open N] [--max-open-per-tenant N] [--poll-ms N]"
            );
            return ExitCode::from(2);
        }
    };

    let mut cfg = DaemonConfig::new(&args.data_dir);
    cfg.workers = args.workers.max(1);
    if let Some(seed) = args.chaos_seed {
        cfg.chaos = Some(ChaosPolicy::soak(seed));
    }
    if let Some(max) = args.max_open {
        cfg.admission.max_open = max;
    }
    if let Some(max) = args.max_open_per_tenant {
        cfg.admission.max_open_per_tenant = max;
    }

    let incoming = args.data_dir.join("incoming");
    let _ = fs::create_dir_all(&incoming);

    let daemon = match Daemon::open(cfg) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("hiersizerd: open failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rec = daemon.recovery();
    eprintln!(
        "hiersizerd: recovered {} records ({} corrupt, truncated_tail={}), resuming {} jobs",
        rec.replayed_records, rec.corrupt_lines, rec.truncated_tail, rec.resumed_jobs
    );

    let mut heartbeat = 0u64;
    loop {
        ingest_incoming(&daemon, &incoming);
        let executed = daemon.run_until_idle();
        if executed > 0 {
            eprintln!("hiersizerd: executed {executed} job(s)");
        }
        let status = daemon.status();
        if let Err(e) = daemon.write_status() {
            eprintln!("hiersizerd: status write failed: {e}");
        }
        heartbeat += 1;
        write_health(&args.data_dir, heartbeat, status.queued + status.running);
        if args.once {
            let drained = status.queued == 0
                && status.running == 0
                && ingest_incoming(&daemon, &incoming) == 0;
            if drained {
                let _ = daemon.write_status();
                eprintln!(
                    "hiersizerd: idle — {} completed, {} failed; exiting (--once)",
                    status.completed, status.failed
                );
                return ExitCode::SUCCESS;
            }
        } else {
            std::thread::sleep(Duration::from_millis(args.poll_ms));
        }
    }
}
