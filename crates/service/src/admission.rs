//! Admission control: bounded queues, per-tenant quotas, compute budgets.
//!
//! The daemon never queues unboundedly — an overloaded service that
//! accepts everything eventually loses everything when it dies with
//! hours of silently queued work. Instead submission is gated by three
//! limits, and a refusal is a *structured* [`Rejection`] carrying a
//! `retry_after_ms` hint, so clients can implement honest backoff
//! rather than parsing error prose.
//!
//! The third gate is a per-tenant *compute* budget: completed jobs
//! charge their wall-clock (the `wall_ms` field on WAL `Completed`
//! records, so the charge survives restart) against
//! [`AdmissionConfig::tenant_budget_ms`]. Counting jobs alone lets a
//! tenant with a few huge jobs starve tenants with many tiny ones;
//! counting milliseconds is the honest currency.

use serde::{Deserialize, Serialize};

/// Admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum non-terminal jobs (queued + running) across all tenants.
    pub max_open: usize,
    /// Maximum non-terminal jobs per tenant (fair-share cap).
    pub max_open_per_tenant: usize,
    /// Retry hint attached to queue/quota rejections, in milliseconds.
    pub retry_after_ms: u64,
    /// Per-tenant compute budget in wall-clock milliseconds; `0`
    /// disables budget enforcement. Charged from completed jobs'
    /// `wall_ms`, so the spend ledger survives crash/restart.
    pub tenant_budget_ms: u64,
    /// Retry hint attached to budget rejections. Budgets replenish on
    /// operator action (or WAL compaction policy), not on a queue
    /// draining, so the honest hint is much longer than
    /// [`retry_after_ms`](Self::retry_after_ms).
    pub budget_retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_open: 64,
            max_open_per_tenant: 16,
            retry_after_ms: 500,
            tenant_budget_ms: 0,
            budget_retry_after_ms: 60_000,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The whole service queue is at capacity.
    QueueFull,
    /// The submitting tenant is at its fair-share cap.
    TenantQuota,
    /// The submitting tenant has spent its compute budget.
    BudgetExhausted,
    /// The service is draining and refuses new work.
    Draining,
    /// The tenant is at its network connection cap.
    ConnLimit,
}

/// A structured admission refusal. Not an error: the service is
/// healthy, the client should retry after the hinted delay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rejection {
    /// Why.
    pub reason: RejectReason,
    /// When to retry, in milliseconds from now.
    pub retry_after_ms: u64,
    /// Open jobs at refusal time (diagnostics).
    pub open_jobs: usize,
}

impl AdmissionConfig {
    /// Decides admission given the current open-job counts and the
    /// tenant's accumulated compute spend.
    ///
    /// # Errors
    ///
    /// Returns the structured [`Rejection`] when a limit is hit. The
    /// budget is checked first (it is the slowest to clear, and a
    /// busted-budget tenant should not be told to retry in 500 ms),
    /// then the tenant quota, so a noisy tenant sees its own cap, not
    /// the global one it is causing.
    pub fn admit(
        &self,
        open_total: usize,
        open_for_tenant: usize,
        tenant_spent_ms: u64,
    ) -> Result<(), Rejection> {
        if self.tenant_budget_ms > 0 && tenant_spent_ms >= self.tenant_budget_ms {
            return Err(Rejection {
                reason: RejectReason::BudgetExhausted,
                retry_after_ms: self.budget_retry_after_ms,
                open_jobs: open_total,
            });
        }
        if open_for_tenant >= self.max_open_per_tenant {
            return Err(Rejection {
                reason: RejectReason::TenantQuota,
                retry_after_ms: self.retry_after_ms,
                open_jobs: open_total,
            });
        }
        if open_total >= self.max_open {
            return Err(Rejection {
                reason: RejectReason::QueueFull,
                retry_after_ms: self.retry_after_ms,
                open_jobs: open_total,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            max_open: 4,
            max_open_per_tenant: 2,
            retry_after_ms: 250,
            tenant_budget_ms: 0,
            budget_retry_after_ms: 9_000,
        }
    }

    #[test]
    fn admits_under_both_limits() {
        assert!(cfg().admit(1, 0, 0).is_ok());
    }

    #[test]
    fn tenant_quota_fires_before_queue_full() {
        let rej = cfg().admit(4, 2, 0).unwrap_err();
        assert_eq!(rej.reason, RejectReason::TenantQuota);
        assert_eq!(rej.retry_after_ms, 250);
    }

    #[test]
    fn queue_full_rejects_even_quiet_tenants() {
        let rej = cfg().admit(4, 0, 0).unwrap_err();
        assert_eq!(rej.reason, RejectReason::QueueFull);
        assert_eq!(rej.open_jobs, 4);
    }

    #[test]
    fn zero_budget_disables_enforcement() {
        assert!(cfg().admit(0, 0, u64::MAX).is_ok());
    }

    #[test]
    fn exhausted_budget_rejects_with_the_long_hint() {
        let limits = AdmissionConfig {
            tenant_budget_ms: 1_000,
            ..cfg()
        };
        assert!(limits.admit(0, 0, 999).is_ok(), "under budget admits");
        let rej = limits.admit(0, 0, 1_000).unwrap_err();
        assert_eq!(rej.reason, RejectReason::BudgetExhausted);
        assert_eq!(rej.retry_after_ms, 9_000, "budget hint, not queue hint");
    }

    #[test]
    fn budget_outranks_tenant_quota_in_the_rejection() {
        let limits = AdmissionConfig {
            tenant_budget_ms: 1,
            ..cfg()
        };
        let rej = limits.admit(4, 2, 5).unwrap_err();
        assert_eq!(
            rej.reason,
            RejectReason::BudgetExhausted,
            "the slowest-clearing limit wins the retry hint"
        );
    }

    #[test]
    fn rejection_serialises_for_clients() {
        let rej = Rejection {
            reason: RejectReason::BudgetExhausted,
            retry_after_ms: 500,
            open_jobs: 64,
        };
        let text = serde_json::to_string(&rej).unwrap();
        let back: Rejection = serde_json::from_str(&text).unwrap();
        assert_eq!(back, rej);
    }
}
