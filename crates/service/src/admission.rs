//! Admission control: bounded queues and per-tenant quotas.
//!
//! The daemon never queues unboundedly — an overloaded service that
//! accepts everything eventually loses everything when it dies with
//! hours of silently queued work. Instead submission is gated by two
//! limits, and a refusal is a *structured* [`Rejection`] carrying a
//! `retry_after_ms` hint, so clients can implement honest backoff
//! rather than parsing error prose.

use serde::{Deserialize, Serialize};

/// Admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum non-terminal jobs (queued + running) across all tenants.
    pub max_open: usize,
    /// Maximum non-terminal jobs per tenant (fair-share cap).
    pub max_open_per_tenant: usize,
    /// Retry hint attached to rejections, in milliseconds.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_open: 64,
            max_open_per_tenant: 16,
            retry_after_ms: 500,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The whole service queue is at capacity.
    QueueFull,
    /// The submitting tenant is at its fair-share cap.
    TenantQuota,
}

/// A structured admission refusal. Not an error: the service is
/// healthy, the client should retry after the hinted delay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rejection {
    /// Why.
    pub reason: RejectReason,
    /// When to retry, in milliseconds from now.
    pub retry_after_ms: u64,
    /// Open jobs at refusal time (diagnostics).
    pub open_jobs: usize,
}

impl AdmissionConfig {
    /// Decides admission given the current open-job counts.
    ///
    /// # Errors
    ///
    /// Returns the structured [`Rejection`] when a limit is hit; the
    /// tenant quota is checked first so a noisy tenant sees its own
    /// cap, not the global one it is causing.
    pub fn admit(&self, open_total: usize, open_for_tenant: usize) -> Result<(), Rejection> {
        if open_for_tenant >= self.max_open_per_tenant {
            return Err(Rejection {
                reason: RejectReason::TenantQuota,
                retry_after_ms: self.retry_after_ms,
                open_jobs: open_total,
            });
        }
        if open_total >= self.max_open {
            return Err(Rejection {
                reason: RejectReason::QueueFull,
                retry_after_ms: self.retry_after_ms,
                open_jobs: open_total,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            max_open: 4,
            max_open_per_tenant: 2,
            retry_after_ms: 250,
        }
    }

    #[test]
    fn admits_under_both_limits() {
        assert!(cfg().admit(1, 0).is_ok());
    }

    #[test]
    fn tenant_quota_fires_before_queue_full() {
        let rej = cfg().admit(4, 2).unwrap_err();
        assert_eq!(rej.reason, RejectReason::TenantQuota);
        assert_eq!(rej.retry_after_ms, 250);
    }

    #[test]
    fn queue_full_rejects_even_quiet_tenants() {
        let rej = cfg().admit(4, 0).unwrap_err();
        assert_eq!(rej.reason, RejectReason::QueueFull);
        assert_eq!(rej.open_jobs, 4);
    }

    #[test]
    fn rejection_serialises_for_clients() {
        let rej = Rejection {
            reason: RejectReason::QueueFull,
            retry_after_ms: 500,
            open_jobs: 64,
        };
        let text = serde_json::to_string(&rej).unwrap();
        let back: Rejection = serde_json::from_str(&text).unwrap();
        assert_eq!(back, rej);
    }
}
