//! Optimisation-as-a-service: a crash-safe daemon around the
//! hierarchical flow.
//!
//! The flow crates solve one sizing problem per process. This crate
//! turns them into a long-running service that accepts job submissions,
//! schedules them fairly across tenants, survives being killed at any
//! instruction, and — the conformance-grade contract — produces a
//! **bit-identical** final report whether a job ran uninterrupted or
//! was killed mid-stage and resumed by a fresh daemon process.
//!
//! * [`jobspec`] — [`JobSpec`]: the serialisable job description
//!   (preset + plain-typed overrides) that maps deterministically onto
//!   a [`hierflow::FlowConfig`]. Jobs are specs, never configs: the
//!   config type carries non-serialisable budgets and the mapping must
//!   be reproducible across daemon versions of the same build.
//! * [`wal`] — the append-only, fsync'd write-ahead log (`jobs.wal`):
//!   one CRC-framed JSON record per line, replayed on startup to
//!   rebuild the job [`Ledger`]. Truncated tails (the crash case the
//!   fsync discipline allows) and corrupt mid-file lines are tolerated
//!   and counted, never fatal.
//! * [`admission`] — bounded-queue backpressure and per-tenant quotas;
//!   rejections are structured ([`Rejection`]) and carry a
//!   `retry_after_ms` hint instead of an error string.
//! * [`daemon`] — [`Daemon`]: recovery (WAL replay + checkpoint
//!   resume), round-robin tenant scheduling over worker threads, and
//!   the `status.json`/`health.json` snapshots the `hiersizerd` binary
//!   maintains.
//! * [`chaos`] — [`ChaosPolicy`]: seed-keyed, bounded fault injection
//!   at the *service* layer (simulated crashes, torn WAL appends,
//!   corrupt checkpoint bytes, transient solver faults with clock
//!   stalls), driving the soak test: N jobs under chaos, every job
//!   reaches a terminal state, no report diverges from its chaos-free
//!   reference.
//! * [`net`] — the TCP ingestion layer: CRC-framed JSON protocol with
//!   deadlines, quotas, idempotent keyed submission, event streaming,
//!   graceful drain, and a wire-level chaos proxy for soak tests.
//! * [`report`] — the semantic projection of a [`hierflow::FlowReport`]
//!   (results only, no run provenance) whose serialised bytes are the
//!   cross-process bit-identity oracle, and its FNV digest recorded in
//!   `Completed` WAL records.
//!
//! The `hiersizerd` binary (in `src/bin/`) wraps [`Daemon`] with
//! file-based ingestion: drop a `JobSpec` JSON into
//! `<data-dir>/incoming/` and collect `jobs/<id>/report_semantic.json`.

pub mod admission;
pub mod chaos;
pub mod daemon;
pub mod error;
pub mod jobspec;
pub mod net;
pub mod report;
pub mod wal;

pub use admission::{AdmissionConfig, RejectReason, Rejection};
pub use chaos::ChaosPolicy;
pub use daemon::{Daemon, DaemonConfig, DaemonStatus, JobRow, RecoveryReport, Submission};
pub use error::ServiceError;
pub use jobspec::{JobPreset, JobSpec};
pub use net::{ChaosProxy, ClientConfig, NetConfig, NetServer};
pub use report::{report_digest, semantic_json, semantic_value};
pub use wal::{JobPhase, Ledger, Wal, WalRecord, WalReplay};
