//! The service-level chaos harness.
//!
//! PR 1's [`FaultInjector`] perturbs individual solver evaluations;
//! this module extends the idea one layer up, to the faults a *daemon*
//! must survive: a worker dying mid-stage, a checkpoint file smashed on
//! disk, a WAL append torn between `write` and `sync`, a solver
//! stalling the clock. Every decision is a pure function of the policy
//! seed and the `(job, attempt)` coordinates — no RNG state, no wall
//! clock — so a soak run replays bug-for-bug under `--test-threads 1`
//! or 16, and a failure seed printed by CI reproduces locally.
//!
//! Boundedness is part of the contract: crash/panic injection stops
//! once a job has burned [`ChaosPolicy::max_faults_per_job`] attempts,
//! so every job's final attempt runs clean and the soak provably
//! terminates.

use std::time::Duration;

use hierflow::faults::{FaultInjector, FaultKind};

/// Seed-keyed, bounded service-fault injection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPolicy {
    /// Master seed; every decision derives from it.
    pub seed: u64,
    /// Per-attempt probability (‰) of a simulated hard crash: the
    /// job's cancel token fires after a deterministic number of task
    /// polls, interrupting the flow mid-stage exactly where a `kill -9`
    /// would, minus the process teardown.
    pub crash_permille: u16,
    /// Per-attempt probability (‰) of a worker panic before the flow
    /// starts; the daemon must isolate it and retry the job.
    pub panic_permille: u16,
    /// Probability (‰), after an interruption, of smashing bytes in the
    /// newest stage checkpoint — the resume path must quarantine it and
    /// recompute.
    pub corrupt_checkpoint_permille: u16,
    /// Probability (‰) of tearing a non-`Submitted` WAL append into a
    /// short write that fails CRC on replay.
    pub wal_short_write_permille: u16,
    /// Per-job probability (‰) of attaching a transient solver-fault
    /// injector (keyed by job only, so every attempt — and the clean
    /// reference run — sees identical faults).
    pub sim_fault_permille: u16,
    /// Wall-clock stall for injected `Timeout` faults, exercising the
    /// clock-stall path without making results timing-dependent.
    pub stall_ms: u64,
    /// Crash/panic budget per job; past it, attempts run clean.
    pub max_faults_per_job: u32,
    /// Per-connection probability (‰) that the wire chaos proxy faults
    /// a connection (torn frame, disconnect, corrupt byte, stall,
    /// half-open). Which fault is a second roll on the same key.
    pub wire_fault_permille: u16,
    /// Wall-clock stall the proxy's `Stall` fault holds a read for.
    pub wire_stall_ms: u64,
}

impl ChaosPolicy {
    /// The soak policy: aggressive but bounded.
    pub fn soak(seed: u64) -> Self {
        ChaosPolicy {
            seed,
            crash_permille: 450,
            panic_permille: 150,
            corrupt_checkpoint_permille: 400,
            wal_short_write_permille: 250,
            sim_fault_permille: 300,
            stall_ms: 5,
            max_faults_per_job: 3,
            wire_fault_permille: 400,
            wire_stall_ms: 10,
        }
    }

    /// A policy that injects nothing (the identity daemon).
    pub fn quiet() -> Self {
        ChaosPolicy {
            seed: 0,
            crash_permille: 0,
            panic_permille: 0,
            corrupt_checkpoint_permille: 0,
            wal_short_write_permille: 0,
            sim_fault_permille: 0,
            stall_ms: 0,
            max_faults_per_job: 0,
            wire_fault_permille: 0,
            wire_stall_ms: 0,
        }
    }

    /// The deterministic roll for a `(job, attempt, channel)` triple.
    fn roll(&self, job: u64, attempt: u32, channel: u64) -> u64 {
        splitmix64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(job << 24)
                .wrapping_add(u64::from(attempt) << 8)
                .wrapping_add(channel),
        )
    }

    fn hits(&self, permille: u16, job: u64, attempt: u32, channel: u64) -> bool {
        permille > 0 && self.roll(job, attempt, channel) % 1000 < u64::from(permille)
    }

    /// Whether this attempt's worker panics before the flow starts.
    /// Checked first; a panicking attempt never also crashes.
    pub fn inject_panic(&self, job: u64, attempt: u32) -> bool {
        attempt < self.max_faults_per_job && self.hits(self.panic_permille, job, attempt, 4)
    }

    /// Simulated hard crash: `Some(polls)` means the attempt's cancel
    /// token fires after that many task polls.
    pub fn crash_after_polls(&self, job: u64, attempt: u32) -> Option<u64> {
        if attempt >= self.max_faults_per_job || !self.hits(self.crash_permille, job, attempt, 0) {
            return None;
        }
        // Between 20 and ~520 polls: early enough to land mid-stage-1
        // on small presets, late enough to let checkpoints form.
        Some(20 + self.roll(job, attempt, 5) % 500)
    }

    /// Whether to smash the newest checkpoint after this attempt's
    /// interruption.
    pub fn corrupt_checkpoint(&self, job: u64, attempt: u32) -> bool {
        self.hits(self.corrupt_checkpoint_permille, job, attempt, 1)
    }

    /// Whether to tear this attempt's WAL append for `channel` (callers
    /// pass a distinct channel per record kind; `Submitted` records are
    /// never torn — they are the durability point of admission).
    pub fn short_write(&self, job: u64, attempt: u32, record_channel: u64) -> bool {
        self.hits(
            self.wal_short_write_permille,
            job,
            attempt,
            0x100 + record_channel,
        )
    }

    /// Wire-proxy fault decision for connection `conn` (a per-proxy
    /// accept counter): `None` means the connection passes through
    /// clean, `Some(pick)` hands the proxy a deterministic value to
    /// choose the fault kind from. Channels 7 (gate) and 8 (pick) are
    /// fresh — wire chaos never perturbs the job-level schedule.
    pub fn wire_fault_pick(&self, conn: u64) -> Option<u64> {
        if !self.hits(self.wire_fault_permille, conn, 0, 7) {
            return None;
        }
        Some(self.roll(conn, 0, 8))
    }

    /// The transient solver-fault injector for a job, if chaos assigns
    /// one. Keyed by job id only — every attempt, and the chaos-free
    /// reference run of the same job, sees the identical injector, so
    /// fault recovery is part of the replayed computation rather than a
    /// divergence source.
    pub fn sim_faults(&self, job: u64) -> Option<FaultInjector> {
        if !self.hits(self.sim_fault_permille, job, 0, 3) {
            return None;
        }
        let pick = self.roll(job, 0, 6);
        let point = (pick % 2) as usize;
        let kind = match (pick >> 8) % 3 {
            0 => FaultKind::NonConvergence,
            1 => FaultKind::SingularMatrix,
            _ => FaultKind::Timeout,
        };
        let mut injector = FaultInjector::new().fail_point(point, kind).transient();
        if kind == FaultKind::Timeout && self.stall_ms > 0 {
            injector = injector.with_timeout_stall(Duration::from_millis(self.stall_ms));
        }
        Some(injector)
    }
}

/// SplitMix64: the standard 64-bit finaliser, the same generator the
/// exec retry jitter uses.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = ChaosPolicy::soak(7);
        let b = ChaosPolicy::soak(7);
        for job in 0..50u64 {
            for attempt in 0..4u32 {
                assert_eq!(
                    a.crash_after_polls(job, attempt),
                    b.crash_after_polls(job, attempt)
                );
                assert_eq!(a.inject_panic(job, attempt), b.inject_panic(job, attempt));
                assert_eq!(
                    a.corrupt_checkpoint(job, attempt),
                    b.corrupt_checkpoint(job, attempt)
                );
            }
        }
    }

    #[test]
    fn seeds_change_the_plan() {
        let a = ChaosPolicy::soak(1);
        let b = ChaosPolicy::soak(2);
        let plan = |p: &ChaosPolicy| {
            (0..64u64)
                .map(|j| p.crash_after_polls(j, 0).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(plan(&a), plan(&b));
    }

    #[test]
    fn fault_budget_bounds_crashes_and_panics() {
        let p = ChaosPolicy::soak(3);
        for job in 0..100u64 {
            for attempt in p.max_faults_per_job..p.max_faults_per_job + 4 {
                assert_eq!(p.crash_after_polls(job, attempt), None);
                assert!(!p.inject_panic(job, attempt));
            }
        }
    }

    #[test]
    fn soak_policy_actually_injects() {
        let p = ChaosPolicy::soak(11);
        let crashes = (0..40u64)
            .filter(|&j| p.crash_after_polls(j, 0).is_some())
            .count();
        let sims = (0..40u64).filter(|&j| p.sim_faults(j).is_some()).count();
        assert!(crashes > 5, "crash channel live ({crashes})");
        assert!(sims > 3, "sim-fault channel live ({sims})");
    }

    #[test]
    fn sim_faults_are_attempt_invariant() {
        let p = ChaosPolicy::soak(5);
        for job in 0..20u64 {
            let a = p.sim_faults(job).map(|i| i.planned());
            let b = p.sim_faults(job).map(|i| i.planned());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn quiet_policy_injects_nothing() {
        let p = ChaosPolicy::quiet();
        for job in 0..32u64 {
            assert_eq!(p.crash_after_polls(job, 0), None);
            assert!(!p.inject_panic(job, 0));
            assert!(!p.corrupt_checkpoint(job, 0));
            assert!(!p.short_write(job, 0, 1));
            assert!(p.sim_faults(job).is_none());
            assert!(p.wire_fault_pick(job).is_none());
        }
    }

    #[test]
    fn wire_channel_is_live_and_deterministic() {
        let p = ChaosPolicy::soak(21);
        let picks: Vec<_> = (0..40u64).map(|c| p.wire_fault_pick(c)).collect();
        assert!(picks.iter().filter(|p| p.is_some()).count() > 5);
        assert!(picks.iter().filter(|p| p.is_none()).count() > 5);
        let again: Vec<_> = (0..40u64).map(|c| p.wire_fault_pick(c)).collect();
        assert_eq!(picks, again);
    }
}
