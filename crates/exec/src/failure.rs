//! Per-task failure taxonomy.

use std::fmt;
use std::time::Duration;

/// How a failure relates to retrying: transient faults (a solver that
/// did not converge this time, a timeout under contention) are worth a
/// retry; permanent ones (a singular matrix, a structural bug) are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Retrying may succeed.
    Transient,
    /// Retrying will reproduce the same failure.
    Permanent,
}

/// Why one task of a batch produced no result. Every variant costs the
/// batch exactly one item — never the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskFailure {
    /// The task body panicked; the payload message is preserved.
    Panicked {
        /// Panic payload rendered to text.
        message: String,
    },
    /// The task ran longer than its per-task deadline. Its result (if
    /// any) is discarded: a measurement that blows its budget is a
    /// failure even when it eventually returns.
    TimedOut {
        /// Observed wall-clock duration.
        elapsed: Duration,
        /// The per-task limit it exceeded.
        limit: Duration,
    },
    /// The task never ran (or was abandoned between retries) because
    /// the batch was cancelled or hit a batch-level deadline.
    Cancelled,
    /// The task body reported a failure.
    Failed {
        /// Description of the failure.
        message: String,
        /// Retry classification.
        class: FaultClass,
    },
}

impl TaskFailure {
    /// A permanent (non-retryable) failure.
    pub fn permanent(message: impl Into<String>) -> Self {
        TaskFailure::Failed {
            message: message.into(),
            class: FaultClass::Permanent,
        }
    }

    /// A transient (retryable) failure.
    pub fn transient(message: impl Into<String>) -> Self {
        TaskFailure::Failed {
            message: message.into(),
            class: FaultClass::Transient,
        }
    }

    /// Whether the retry policy applies to this failure: transient
    /// faults and timeouts, never panics or cancellations.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TaskFailure::TimedOut { .. }
                | TaskFailure::Failed {
                    class: FaultClass::Transient,
                    ..
                }
        )
    }
}

impl fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskFailure::Panicked { message } => write!(f, "panicked: {message}"),
            TaskFailure::TimedOut { elapsed, limit } => write!(
                f,
                "timed out: ran {:.1} ms against a {:.1} ms deadline",
                elapsed.as_secs_f64() * 1e3,
                limit.as_secs_f64() * 1e3
            ),
            TaskFailure::Cancelled => f.write_str("cancelled before completion"),
            TaskFailure::Failed { message, .. } => f.write_str(message),
        }
    }
}

/// Why a batch stopped before exhausting its work list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The [`CancelToken`](crate::CancelToken) fired.
    Cancelled,
    /// The batch-level deadline expired.
    DeadlineExceeded,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Cancelled => f.write_str("cancelled"),
            AbortReason::DeadlineExceeded => f.write_str("deadline exceeded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_classification() {
        assert!(TaskFailure::transient("solver wobble").is_retryable());
        assert!(!TaskFailure::permanent("singular matrix").is_retryable());
        assert!(TaskFailure::TimedOut {
            elapsed: Duration::from_millis(20),
            limit: Duration::from_millis(10),
        }
        .is_retryable());
        assert!(!TaskFailure::Cancelled.is_retryable());
        assert!(!TaskFailure::Panicked {
            message: "boom".into()
        }
        .is_retryable());
    }

    #[test]
    fn failures_render_for_provenance() {
        let t = TaskFailure::TimedOut {
            elapsed: Duration::from_millis(25),
            limit: Duration::from_millis(10),
        };
        let text = t.to_string();
        assert!(text.contains("timed out"), "{text}");
        assert!(text.contains("10.0 ms"), "{text}");
        assert_eq!(TaskFailure::permanent("bad").to_string(), "bad");
        assert!(AbortReason::DeadlineExceeded
            .to_string()
            .contains("deadline"));
    }
}
