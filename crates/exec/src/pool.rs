//! The supervised work-stealing batch pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use crate::deadline::Deadline;
use crate::failure::{AbortReason, TaskFailure};
use crate::retry::RetryPolicy;

/// Everything the pool needs to supervise a batch: worker count,
/// deadlines, cancellation and retry policy. The default policy is a
/// bare serial loop — one worker, no limits, no retries — so adopting
/// the pool never changes semantics until a budget is asked for.
#[derive(Debug, Clone, Default)]
pub struct ExecPolicy {
    /// Worker threads (0 and 1 both mean serial, in-place execution).
    pub threads: usize,
    /// Per-task wall-clock limit; overruns become
    /// [`TaskFailure::TimedOut`].
    pub task_deadline: Option<Duration>,
    /// Absolute batch deadline (the earliest of the stage and run
    /// deadlines); once expired workers stop claiming tasks.
    pub batch_deadline: Option<Deadline>,
    /// Cooperative cancellation flag, polled between tasks.
    pub cancel: CancelToken,
    /// Retry policy for retryable failures.
    pub retry: RetryPolicy,
}

impl ExecPolicy {
    /// Serial, unlimited, non-retrying — semantically a plain loop with
    /// panic isolation.
    pub fn serial() -> Self {
        Self::default()
    }

    /// A policy with `threads` workers and no limits.
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy {
            threads,
            ..Self::default()
        }
    }

    /// Sets the per-task deadline.
    pub fn task_deadline(mut self, limit: Duration) -> Self {
        self.task_deadline = Some(limit);
        self
    }

    /// Sets the absolute batch deadline.
    pub fn batch_deadline(mut self, deadline: Deadline) -> Self {
        self.batch_deadline = Some(deadline);
        self
    }

    /// Installs a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Installs a retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Per-task context handed to the task body: which task and attempt
/// this is, the task's deadline (for cooperative early exit in long
/// evaluations) and the batch's cancellation token.
pub struct TaskCtx<'a> {
    /// Task index within the batch (the determinism key).
    pub index: usize,
    /// Attempt number (0 = first run, 1 = first retry, …).
    pub attempt: usize,
    /// This attempt's wall-clock deadline, when a per-task limit is set.
    pub deadline: Option<Deadline>,
    /// The batch's cancellation token.
    pub cancel: &'a CancelToken,
}

/// Scheduling statistics of one batch. `per_worker` records how many
/// tasks each worker actually executed; `stolen` counts tasks executed
/// by a different worker than static chunking would have assigned them
/// to — the load-balancing work the shared queue did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads used.
    pub workers: usize,
    /// Tasks in the batch.
    pub tasks: usize,
    /// Tasks that produced a result.
    pub completed: usize,
    /// Tasks executed per worker.
    pub per_worker: Vec<usize>,
    /// Tasks that ran on a different worker than static chunking would
    /// have used (0 when serial).
    pub stolen: usize,
    /// Tasks that ended in a panic.
    pub panics: usize,
    /// Tasks whose final attempt exceeded the per-task deadline.
    pub timeouts: usize,
    /// Retry attempts performed across the batch.
    pub retries: usize,
    /// Tasks never run (or abandoned) due to cancellation or a batch
    /// deadline.
    pub cancelled: usize,
}

impl PoolStats {
    /// Difference between the busiest and idlest worker's task counts —
    /// the imbalance a static chunking would have locked in.
    pub fn imbalance(&self) -> usize {
        let max = self.per_worker.iter().copied().max().unwrap_or(0);
        let min = self.per_worker.iter().copied().min().unwrap_or(0);
        max - min
    }

    fn merge_counts(&mut self, other: &PoolStats) {
        self.tasks += other.tasks;
        self.completed += other.completed;
        self.stolen += other.stolen;
        self.panics += other.panics;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.cancelled += other.cancelled;
    }

    /// Accumulates another batch's stats (worker counts are merged
    /// element-wise; the wider of the two worker vectors wins).
    pub fn absorb(&mut self, other: &PoolStats) {
        self.workers = self.workers.max(other.workers);
        if self.per_worker.len() < other.per_worker.len() {
            self.per_worker.resize(other.per_worker.len(), 0);
        }
        for (mine, theirs) in self.per_worker.iter_mut().zip(&other.per_worker) {
            *mine += *theirs;
        }
        self.merge_counts(other);
    }
}

/// Outcome of a supervised batch: results keyed by task index, the
/// failures with their indices, scheduling stats, and whether the batch
/// stopped early.
#[derive(Debug)]
pub struct BatchResult<T> {
    /// Per-index results; `None` where the task failed or never ran.
    pub items: Vec<Option<T>>,
    /// `(task index, failure)` pairs, ascending by index.
    pub failures: Vec<(usize, TaskFailure)>,
    /// Scheduling statistics.
    pub stats: PoolStats,
    /// Set when workers stopped claiming tasks before the list was
    /// exhausted (cancellation or batch deadline).
    pub aborted: Option<AbortReason>,
}

struct WorkerOut<T> {
    worker: usize,
    results: Vec<(usize, Result<T, TaskFailure>)>,
    retries: usize,
}

const ABORT_NONE: u8 = 0;
const ABORT_CANCELLED: u8 = 1;
const ABORT_DEADLINE: u8 = 2;

/// Runs `tasks` independent tasks under `policy` and returns the
/// index-keyed results.
///
/// Workers claim tasks from a shared atomic cursor (work stealing in
/// the bounded-batch sense: a fast worker drains work a static chunking
/// would have left on a slow one). Each task body runs under
/// `catch_unwind`; panics, timeouts, task-reported failures and
/// cancellations all become per-index [`TaskFailure`]s. Results are
/// keyed by task index, so for a deterministic task body the batch
/// output is bit-identical across thread counts.
pub fn run_batch<T, F>(tasks: usize, policy: &ExecPolicy, f: F) -> BatchResult<T>
where
    T: Send,
    F: Fn(&TaskCtx<'_>) -> Result<T, TaskFailure> + Sync,
{
    let workers = policy.threads.max(1).min(tasks.max(1));
    let chunk = tasks.div_ceil(workers).max(1);
    let next = AtomicUsize::new(0);
    let abort = AtomicU8::new(ABORT_NONE);
    // Ambient telemetry state of the calling thread, re-established on
    // each worker so spans opened inside task bodies parent correctly.
    let trace_ctx = telemetry::capture();
    let batch_start = Instant::now();

    let worker_loop = |w: usize| -> WorkerOut<T> {
        let mut out = WorkerOut {
            worker: w,
            results: Vec::new(),
            retries: 0,
        };
        loop {
            if policy.cancel.poll() {
                let _ = abort.compare_exchange(
                    ABORT_NONE,
                    ABORT_CANCELLED,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                break;
            }
            if policy.batch_deadline.is_some_and(|d| d.expired()) {
                let _ = abort.compare_exchange(
                    ABORT_NONE,
                    ABORT_DEADLINE,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                break;
            }
            let i = next.fetch_add(1, Ordering::SeqCst);
            if i >= tasks {
                break;
            }
            if telemetry::enabled() {
                telemetry::observe_secs("pool.queue_wait_seconds", batch_start.elapsed());
            }
            let result = run_task(i, policy, &f, &mut out.retries);
            out.results.push((i, result));
        }
        out
    };

    let worker_outs: Vec<WorkerOut<T>> = if workers <= 1 {
        vec![worker_loop(0)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let worker_loop = &worker_loop;
                    let trace_ctx = trace_ctx.clone();
                    scope.spawn(move || {
                        let _trace = trace_ctx.attach();
                        worker_loop(w)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool workers isolate task panics"))
                .collect()
        })
    };

    // Merge worker-local results into the index-keyed batch outcome.
    let mut items: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    let mut failures: Vec<(usize, TaskFailure)> = Vec::new();
    let mut claimed = vec![false; tasks];
    let mut stats = PoolStats {
        workers,
        tasks,
        per_worker: vec![0; workers],
        ..PoolStats::default()
    };
    for out in worker_outs {
        stats.retries += out.retries;
        stats.per_worker[out.worker] = out.results.len();
        for (i, result) in out.results {
            claimed[i] = true;
            if workers > 1 && i / chunk != out.worker {
                stats.stolen += 1;
            }
            match result {
                Ok(value) => {
                    stats.completed += 1;
                    items[i] = Some(value);
                }
                Err(failure) => {
                    match failure {
                        TaskFailure::Panicked { .. } => stats.panics += 1,
                        TaskFailure::TimedOut { .. } => stats.timeouts += 1,
                        TaskFailure::Cancelled => stats.cancelled += 1,
                        TaskFailure::Failed { .. } => {}
                    }
                    failures.push((i, failure));
                }
            }
        }
    }
    let mut starved = false;
    for (i, was_claimed) in claimed.iter().enumerate() {
        if !was_claimed {
            starved = true;
            stats.cancelled += 1;
            failures.push((i, TaskFailure::Cancelled));
        }
    }
    failures.sort_by_key(|&(i, _)| i);

    if telemetry::enabled() {
        telemetry::counter_add("pool.tasks", stats.tasks as u64);
        telemetry::counter_add("pool.retries", stats.retries as u64);
        telemetry::counter_add("pool.panics", stats.panics as u64);
        telemetry::counter_add("pool.timeouts", stats.timeouts as u64);
        telemetry::counter_add("pool.cancelled", stats.cancelled as u64);
    }

    let aborted = if starved
        || failures
            .iter()
            .any(|(_, f)| matches!(f, TaskFailure::Cancelled))
    {
        match abort.load(Ordering::SeqCst) {
            ABORT_DEADLINE => Some(AbortReason::DeadlineExceeded),
            _ => Some(AbortReason::Cancelled),
        }
    } else {
        None
    };

    BatchResult {
        items,
        failures,
        stats,
        aborted,
    }
}

/// One task, with panic isolation, per-task deadline accounting and
/// in-place retries for retryable failures.
fn run_task<T, F>(
    index: usize,
    policy: &ExecPolicy,
    f: &F,
    retries: &mut usize,
) -> Result<T, TaskFailure>
where
    F: Fn(&TaskCtx<'_>) -> Result<T, TaskFailure> + Sync,
{
    let mut attempt = 0usize;
    loop {
        let deadline = policy.task_deadline.map(Deadline::after);
        let ctx = TaskCtx {
            index,
            attempt,
            deadline,
            cancel: &policy.cancel,
        };
        let start = Instant::now();
        let caught = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
        let elapsed = start.elapsed();
        if telemetry::enabled() {
            telemetry::observe_secs("pool.task_seconds", elapsed);
        }
        let outcome = match caught {
            Err(payload) => Err(TaskFailure::Panicked {
                message: panic_message(payload.as_ref()),
            }),
            Ok(result) => match policy.task_deadline {
                // Blowing the wall-clock budget trumps whatever the
                // task returned — a late answer is not an answer.
                Some(limit) if elapsed > limit => Err(TaskFailure::TimedOut { elapsed, limit }),
                _ => result,
            },
        };
        match outcome {
            Ok(value) => return Ok(value),
            Err(failure) => {
                if failure.is_retryable() && attempt < policy.retry.max_retries {
                    attempt += 1;
                    *retries += 1;
                    // Slot-keyed deterministic jitter: the delay depends
                    // on (task index, attempt) only, so the retry
                    // schedule is identical across thread counts.
                    let delay = policy.retry.delay_for(attempt, index);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    if policy.cancel.is_cancelled() {
                        return Err(TaskFailure::Cancelled);
                    }
                    continue;
                }
                return Err(failure);
            }
        }
    }
}

/// Renders a panic payload to text (str and String payloads verbatim,
/// anything else a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FaultClass;
    use std::sync::atomic::AtomicUsize;

    fn ok_square(policy: &ExecPolicy, n: usize) -> BatchResult<usize> {
        run_batch(n, policy, |ctx| Ok(ctx.index * ctx.index))
    }

    #[test]
    fn results_are_keyed_by_index() {
        for threads in [1, 4] {
            let out = ok_square(&ExecPolicy::with_threads(threads), 37);
            assert_eq!(out.items.len(), 37);
            for (i, item) in out.items.iter().enumerate() {
                assert_eq!(*item, Some(i * i));
            }
            assert!(out.failures.is_empty());
            assert!(out.aborted.is_none());
            assert_eq!(out.stats.completed, 37);
        }
    }

    #[test]
    fn thread_counts_produce_identical_items() {
        let serial = ok_square(&ExecPolicy::serial(), 101).items;
        let parallel = ok_square(&ExecPolicy::with_threads(4), 101).items;
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = ok_square(&ExecPolicy::with_threads(4), 0);
        assert!(out.items.is_empty());
        assert!(out.aborted.is_none());
    }

    #[test]
    fn panics_become_per_item_failures() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = run_batch(8, &ExecPolicy::with_threads(3), |ctx| {
            if ctx.index % 3 == 0 {
                panic!("task {} exploded", ctx.index);
            }
            Ok(ctx.index)
        });
        std::panic::set_hook(hook);
        assert_eq!(out.stats.panics, 3, "tasks 0, 3, 6");
        let failed: Vec<usize> = out.failures.iter().map(|&(i, _)| i).collect();
        assert_eq!(failed, vec![0, 3, 6]);
        for (i, failure) in &out.failures {
            assert!(
                matches!(failure, TaskFailure::Panicked { message } if message.contains(&i.to_string())),
                "{failure}"
            );
        }
        assert_eq!(out.items[1], Some(1));
        assert!(out.aborted.is_none(), "panics never abort the batch");
    }

    #[test]
    fn slow_tasks_trip_the_per_task_deadline() {
        let policy = ExecPolicy::with_threads(2).task_deadline(Duration::from_millis(20));
        let out = run_batch(6, &policy, |ctx| {
            if ctx.index == 4 {
                std::thread::sleep(Duration::from_millis(60));
            }
            Ok(ctx.index)
        });
        assert_eq!(out.stats.timeouts, 1);
        assert_eq!(out.failures.len(), 1);
        let (i, failure) = &out.failures[0];
        assert_eq!(*i, 4);
        assert!(matches!(failure, TaskFailure::TimedOut { .. }), "{failure}");
        assert_eq!(out.items[4], None, "a late result is discarded");
        assert_eq!(out.stats.completed, 5, "the rest of the batch survives");
        assert!(out.aborted.is_none());
    }

    #[test]
    fn deadline_overrun_trumps_task_reported_failure() {
        let policy = ExecPolicy::serial().task_deadline(Duration::from_millis(10));
        let out = run_batch(1, &policy, |_| -> Result<(), TaskFailure> {
            std::thread::sleep(Duration::from_millis(40));
            Err(TaskFailure::permanent("late and wrong"))
        });
        assert!(
            matches!(out.failures[0].1, TaskFailure::TimedOut { .. }),
            "the wall-clock verdict wins"
        );
    }

    #[test]
    fn cancellation_stops_claiming_and_reports_the_rest() {
        // Deterministic with one worker: 3 polls allowed = 3 tasks run.
        let policy = ExecPolicy::serial().with_cancel(CancelToken::cancel_after(3));
        let out = ok_square(&policy, 10);
        assert_eq!(out.aborted, Some(AbortReason::Cancelled));
        assert_eq!(out.stats.completed, 3);
        assert_eq!(out.stats.cancelled, 7);
        for i in 0..3 {
            assert_eq!(out.items[i], Some(i * i));
        }
        for i in 3..10 {
            assert_eq!(out.items[i], None);
            assert!(matches!(
                out.failures.iter().find(|&&(j, _)| j == i).unwrap().1,
                TaskFailure::Cancelled
            ));
        }
    }

    #[test]
    fn external_cancel_reaches_parallel_workers() {
        let token = CancelToken::new();
        token.cancel();
        let policy = ExecPolicy::with_threads(4).with_cancel(token);
        let out = ok_square(&policy, 50);
        assert_eq!(out.aborted, Some(AbortReason::Cancelled));
        assert_eq!(out.stats.completed, 0);
        assert_eq!(out.stats.cancelled, 50);
    }

    #[test]
    fn batch_deadline_aborts_with_deadline_reason() {
        let policy =
            ExecPolicy::with_threads(2).batch_deadline(Deadline::after(Duration::from_millis(25)));
        let out = run_batch(64, &policy, |ctx| {
            std::thread::sleep(Duration::from_millis(5));
            Ok(ctx.index)
        });
        assert_eq!(out.aborted, Some(AbortReason::DeadlineExceeded));
        assert!(out.stats.completed < 64, "the deadline must bite");
        assert!(out.stats.completed > 0, "but some work lands first");
        assert_eq!(out.stats.cancelled, 64 - out.stats.completed);
    }

    #[test]
    fn transient_failures_are_retried_with_backoff() {
        let attempts = AtomicUsize::new(0);
        let policy = ExecPolicy::serial().with_retry(RetryPolicy::new(2, Duration::from_millis(1)));
        let out = run_batch(1, &policy, |ctx| {
            attempts.fetch_add(1, Ordering::SeqCst);
            if ctx.attempt < 2 {
                Err(TaskFailure::transient("solver wobble"))
            } else {
                Ok(ctx.index + 100)
            }
        });
        assert_eq!(attempts.load(Ordering::SeqCst), 3, "initial + 2 retries");
        assert_eq!(out.items[0], Some(100));
        assert_eq!(out.stats.retries, 2);
        assert!(out.failures.is_empty());
    }

    #[test]
    fn permanent_failures_are_not_retried() {
        let attempts = AtomicUsize::new(0);
        let policy = ExecPolicy::serial().with_retry(RetryPolicy::new(5, Duration::ZERO));
        let out = run_batch(1, &policy, |_| -> Result<(), TaskFailure> {
            attempts.fetch_add(1, Ordering::SeqCst);
            Err(TaskFailure::Failed {
                message: "singular matrix".into(),
                class: FaultClass::Permanent,
            })
        });
        assert_eq!(attempts.load(Ordering::SeqCst), 1);
        assert_eq!(out.stats.retries, 0);
        assert_eq!(out.failures.len(), 1);
    }

    #[test]
    fn retries_exhausted_reports_last_failure() {
        let policy = ExecPolicy::serial().with_retry(RetryPolicy::new(2, Duration::ZERO));
        let out = run_batch(1, &policy, |_| -> Result<(), TaskFailure> {
            Err(TaskFailure::transient("never converges"))
        });
        assert_eq!(out.stats.retries, 2);
        assert!(matches!(
            &out.failures[0].1,
            TaskFailure::Failed {
                class: FaultClass::Transient,
                ..
            }
        ));
    }

    #[test]
    fn stealing_balances_a_skewed_workload() {
        // One pathological task; with static 2-chunking its worker
        // would also own half the batch. The shared cursor lets the
        // other worker drain that half instead.
        let policy = ExecPolicy::with_threads(2);
        let out = run_batch(32, &policy, |ctx| {
            if ctx.index == 0 {
                std::thread::sleep(Duration::from_millis(60));
            }
            Ok(ctx.index)
        });
        assert_eq!(out.stats.completed, 32);
        assert_eq!(out.stats.per_worker.iter().sum::<usize>(), 32);
        assert!(
            out.stats.stolen > 0,
            "the fast worker must steal from the slow one's static half: {:?}",
            out.stats.per_worker
        );
        assert!(out.stats.imbalance() > 0);
    }

    #[test]
    fn stats_absorb_accumulates() {
        let a = ok_square(&ExecPolicy::with_threads(2), 10).stats;
        let b = ok_square(&ExecPolicy::with_threads(2), 6).stats;
        let mut total = PoolStats::default();
        total.absorb(&a);
        total.absorb(&b);
        assert_eq!(total.tasks, 16);
        assert_eq!(total.completed, 16);
        assert_eq!(total.workers, 2);
        assert_eq!(total.per_worker.iter().sum::<usize>(), 16);
    }

    #[test]
    fn ctx_deadline_is_visible_to_tasks() {
        let policy = ExecPolicy::serial().task_deadline(Duration::from_secs(5));
        let out = run_batch(1, &policy, |ctx| {
            let d = ctx.deadline.expect("deadline set");
            assert!(d.remaining() > Duration::from_secs(4));
            assert!(!ctx.cancel.is_cancelled());
            Ok(())
        });
        assert!(out.failures.is_empty());
    }
}
