//! Wall-clock deadlines and run budgets.

use std::time::{Duration, Instant};

/// An absolute wall-clock deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `limit` from now.
    pub fn after(limit: Duration) -> Self {
        Deadline {
            at: Instant::now() + limit,
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// The earlier of two optional deadlines — how a per-stage limit
    /// composes with a whole-run limit.
    pub fn earliest(a: Option<Deadline>, b: Option<Deadline>) -> Option<Deadline> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if x.at <= y.at { x } else { y }),
            (x, None) => x,
            (None, y) => y,
        }
    }
}

/// Wall-clock budgets for a supervised run, at three scopes:
///
/// * `task` — limit on one evaluation (a slow sample becomes a
///   [`TaskFailure::TimedOut`](crate::TaskFailure) instead of holding a
///   worker hostage);
/// * `stage` — limit on one flow stage, measured from stage start;
/// * `run` — limit on the whole run, measured from run start.
///
/// `None` means unlimited — the default. Budgets compose: a batch stops
/// at whichever of the stage and run deadlines comes first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Per-task wall-clock limit.
    pub task: Option<Duration>,
    /// Per-stage wall-clock limit.
    pub stage: Option<Duration>,
    /// Whole-run wall-clock limit.
    pub run: Option<Duration>,
    /// Retry policy for transient and timed-out tasks.
    pub retry: crate::RetryPolicy,
}

impl RunBudget {
    /// An unlimited budget (no deadlines, no retries).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets the per-task limit.
    pub fn per_task(mut self, limit: Duration) -> Self {
        self.task = Some(limit);
        self
    }

    /// Sets the per-stage limit.
    pub fn per_stage(mut self, limit: Duration) -> Self {
        self.stage = Some(limit);
        self
    }

    /// Sets the whole-run limit.
    pub fn whole_run(mut self, limit: Duration) -> Self {
        self.run = Some(limit);
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: crate::RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_expires() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(3500));
    }

    #[test]
    fn earliest_composes_optionals() {
        let near = Deadline::after(Duration::from_millis(1));
        let far = Deadline::after(Duration::from_secs(60));
        assert_eq!(Deadline::earliest(Some(near), Some(far)), Some(near));
        assert_eq!(Deadline::earliest(None, Some(far)), Some(far));
        assert_eq!(Deadline::earliest(None, None), None);
    }

    #[test]
    fn budget_builders_set_scopes() {
        let b = RunBudget::unlimited()
            .per_task(Duration::from_millis(5))
            .per_stage(Duration::from_secs(1))
            .whole_run(Duration::from_secs(10));
        assert_eq!(b.task, Some(Duration::from_millis(5)));
        assert_eq!(b.stage, Some(Duration::from_secs(1)));
        assert_eq!(b.run, Some(Duration::from_secs(10)));
        assert_eq!(RunBudget::default().task, None);
    }
}
