//! Cooperative cancellation.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

/// A cooperative cancellation flag shared between a supervisor and the
/// workers it runs. Cloning shares the flag; once
/// [`CancelToken::cancel`] fires every clone observes it.
///
/// Cancellation is *cooperative*: nothing is pre-empted. The pool polls
/// the token between tasks, and long evaluators may poll it themselves
/// through [`TaskCtx`](crate::TaskCtx).
///
/// For deterministic tests, [`CancelToken::cancel_after`] builds a
/// token that self-cancels after a fixed number of polls — with a
/// single worker thread that pins the cancellation point exactly.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

struct Inner {
    cancelled: AtomicBool,
    /// Remaining polls before self-cancellation; negative = disabled.
    countdown: AtomicI64,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                countdown: AtomicI64::new(-1),
            }),
        }
    }

    /// A token that self-cancels once it has been polled `polls` times
    /// (so `polls = 0` is cancelled on the first poll). Deterministic
    /// under a single worker thread.
    pub fn cancel_after(polls: u64) -> Self {
        let token = CancelToken::new();
        token
            .inner
            .countdown
            .store(polls.min(i64::MAX as u64) as i64, Ordering::SeqCst);
        token
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested. Does not consume a
    /// self-cancellation poll.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Polls the token from a worker: consumes one self-cancellation
    /// count (when armed) and returns whether the batch should stop.
    pub fn poll(&self) -> bool {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        if self.inner.countdown.load(Ordering::SeqCst) >= 0
            && self.inner.countdown.fetch_sub(1, Ordering::SeqCst) <= 0
        {
            self.cancel();
            return true;
        }
        false
    }
}

// Stable output regardless of runtime state: the token rides inside
// configs whose `Debug` rendering feeds checkpoint digests, and a
// cancelled run must still match its own checkpoint directory.
impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CancelToken")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_shared_between_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && a.poll());
    }

    #[test]
    fn cancel_after_counts_polls() {
        let t = CancelToken::cancel_after(2);
        assert!(!t.poll());
        assert!(!t.poll());
        assert!(t.poll(), "third poll crosses the budget");
        assert!(t.is_cancelled());
    }

    #[test]
    fn cancel_after_zero_cancels_immediately_on_poll() {
        let t = CancelToken::cancel_after(0);
        assert!(!t.is_cancelled(), "not cancelled until polled");
        assert!(t.poll());
    }

    #[test]
    fn debug_is_state_independent() {
        let t = CancelToken::new();
        let before = format!("{t:?}");
        t.cancel();
        assert_eq!(before, format!("{t:?}"));
    }
}
