//! Supervised execution runtime for embarrassingly parallel evaluation
//! batches.
//!
//! The paper's flow spends nearly all of its wall clock in three loops:
//! 3 000 transistor-level GA evaluations, a 100-sample Monte Carlo per
//! Pareto point, and a 500-sample bottom-up verification. All three are
//! batches of independent tasks — exactly the workload stochastic
//! simulators treat as a *budgeted, failure-tolerant batch*, not a bare
//! thread loop. This crate is that treatment:
//!
//! * **Work-stealing pool** ([`run_batch`]): workers claim tasks from a
//!   shared atomic index over the work list, so the batch's wall clock
//!   is set by total work, not by the unluckiest static chunk.
//! * **Panic isolation**: each task runs under `catch_unwind`; a
//!   panicking evaluator becomes a per-item
//!   [`TaskFailure::Panicked`], never a process abort.
//! * **Cooperative cancellation** ([`CancelToken`]): polled between
//!   tasks; a cancelled batch stops claiming work and reports the
//!   unrun items as [`TaskFailure::Cancelled`].
//! * **Deadlines** ([`Deadline`], [`RunBudget`]): per-task wall-clock
//!   limits convert slow evaluations into [`TaskFailure::TimedOut`];
//!   a batch-level deadline stops the whole batch like a cancellation.
//! * **Retry with backoff** ([`RetryPolicy`], [`FaultClass`]):
//!   transient task failures are retried in place with exponential
//!   backoff before they count as failures.
//!
//! Results are keyed by task index, never by worker, so a batch is
//! bit-identical across thread counts — the property every determinism
//! test in this workspace leans on.

mod cancel;
mod deadline;
mod failure;
mod pool;
mod retry;

pub use cancel::CancelToken;
pub use deadline::{Deadline, RunBudget};
pub use failure::{AbortReason, FaultClass, TaskFailure};
pub use pool::{run_batch, BatchResult, ExecPolicy, PoolStats, TaskCtx};
pub use retry::RetryPolicy;

/// Worker-thread count requested via the `HIERSIZER_THREADS`
/// environment variable, or `default` when unset or unparsable. Lets a
/// CI matrix drive every pool in the workspace through 1-thread and
/// N-thread schedules without touching configs.
pub fn threads_from_env(default: usize) -> usize {
    std::env::var("HIERSIZER_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    #[test]
    fn env_thread_override_parses_or_defaults() {
        // No env manipulation (tests run concurrently); just the parse
        // fallback paths via the public API contract.
        assert!(super::threads_from_env(3) >= 1);
    }
}
