//! Retry policy with exponential backoff.

use std::time::Duration;

/// How many times a retryable task failure is retried in place, and how
/// long to back off between attempts (doubling per retry). The default
/// is no retries — retrying is an opt-in budget decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per task (0 = first failure is final).
    pub max_retries: usize,
    /// Backoff before the first retry; doubles each further retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
        }
    }

    /// Up to `max_retries` retries, starting at `backoff` and doubling.
    pub fn new(max_retries: usize, backoff: Duration) -> Self {
        RetryPolicy {
            max_retries,
            backoff,
        }
    }

    /// Backoff before retry `attempt` (1-based), doubling per retry and
    /// saturating rather than overflowing.
    pub fn delay(&self, attempt: usize) -> Duration {
        if attempt == 0 || self.backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 1).min(20) as u32;
        self.backoff.saturating_mul(factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_per_attempt() {
        let p = RetryPolicy::new(3, Duration::from_millis(10));
        assert_eq!(p.delay(1), Duration::from_millis(10));
        assert_eq!(p.delay(2), Duration::from_millis(20));
        assert_eq!(p.delay(3), Duration::from_millis(40));
        assert_eq!(p.delay(0), Duration::ZERO);
    }

    #[test]
    fn default_is_no_retry() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.delay(5), Duration::ZERO);
    }

    #[test]
    fn huge_attempt_counts_saturate() {
        let p = RetryPolicy::new(usize::MAX, Duration::from_secs(1));
        assert!(p.delay(500) >= p.delay(21));
    }
}
