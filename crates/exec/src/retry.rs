//! Retry policy with deterministic exponential backoff and seeded,
//! bounded jitter.
//!
//! Retries exist to absorb *transient* faults — a solver that wobbled
//! under contention, a timed-out evaluation on a loaded box. Retrying
//! every such task after an identical delay synchronises the retries
//! (they all hammer the same contended resource again at the same
//! instant), so the policy supports jitter. Ordinary jitter breaks the
//! workspace's bit-identity contract; this one does not: the jitter for
//! a retry is a pure function of `(seed, task slot, attempt)`, so the
//! delay schedule — like every result in this workspace — is keyed by
//! task index, never by thread timing. Thread-count invariance holds by
//! construction.

use std::time::Duration;

/// How many times a retryable task failure is retried in place, and how
/// long to back off between attempts (doubling per retry, with optional
/// deterministic jitter). The default is no retries — retrying is an
/// opt-in budget decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per task (0 = first failure is final).
    pub max_retries: usize,
    /// Backoff before the first retry; doubles each further retry.
    pub backoff: Duration,
    /// Jitter amplitude in permille of the exponential delay: `250`
    /// spreads each delay over ±25 % of its nominal value. `0` (the
    /// default) reproduces plain exponential backoff.
    pub jitter_permille: u16,
    /// Seed for the deterministic jitter stream. Two policies with the
    /// same seed produce the same delay schedule for the same task
    /// slots.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// SplitMix64 step: the jitter's stateless PRNG. Good avalanche, no
/// state to share between threads, and a pure function of its input —
/// exactly what slot-keyed determinism needs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// No retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
            jitter_permille: 0,
            jitter_seed: 0,
        }
    }

    /// Up to `max_retries` retries, starting at `backoff` and doubling
    /// (no jitter).
    pub fn new(max_retries: usize, backoff: Duration) -> Self {
        RetryPolicy {
            max_retries,
            backoff,
            ..Self::none()
        }
    }

    /// The recommended policy for transient fault classes: three
    /// retries from a 10 ms base with ±25 % slot-keyed jitter, instead
    /// of hammering the fault again immediately. Used by the service
    /// daemon's default job budget.
    pub fn transient_backoff() -> Self {
        RetryPolicy::new(3, Duration::from_millis(10)).with_jitter(250, 0x5eed_5107)
    }

    /// Adds deterministic jitter: each delay is spread over
    /// ±`permille`/1000 of its exponential value, keyed by
    /// `(seed, task slot, attempt)`. Values above 1000 are clamped (a
    /// delay never goes negative).
    pub fn with_jitter(mut self, permille: u16, seed: u64) -> Self {
        self.jitter_permille = permille.min(1000);
        self.jitter_seed = seed;
        self
    }

    /// Nominal (jitter-free) backoff before retry `attempt` (1-based),
    /// doubling per retry and saturating rather than overflowing.
    pub fn delay(&self, attempt: usize) -> Duration {
        if attempt == 0 || self.backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 1).min(20) as u32;
        self.backoff.saturating_mul(factor)
    }

    /// Backoff before retry `attempt` of the task in batch slot `slot`,
    /// with jitter applied. A pure function of the policy and its two
    /// arguments: the same `(slot, attempt)` always waits the same
    /// time, whatever thread runs it or how many workers the pool has.
    pub fn delay_for(&self, attempt: usize, slot: usize) -> Duration {
        let base = self.delay(attempt);
        if base.is_zero() || self.jitter_permille == 0 {
            return base;
        }
        let raw = splitmix64(
            self.jitter_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((slot as u64) << 32)
                .wrapping_add(attempt as u64),
        );
        // Map the top bits to a signed fraction in [-1, 1).
        let unit = (raw >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let signed = 2.0 * unit - 1.0;
        let scale = 1.0 + signed * f64::from(self.jitter_permille) / 1000.0;
        Duration::from_secs_f64((base.as_secs_f64() * scale).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_per_attempt() {
        let p = RetryPolicy::new(3, Duration::from_millis(10));
        assert_eq!(p.delay(1), Duration::from_millis(10));
        assert_eq!(p.delay(2), Duration::from_millis(20));
        assert_eq!(p.delay(3), Duration::from_millis(40));
        assert_eq!(p.delay(0), Duration::ZERO);
    }

    #[test]
    fn default_is_no_retry() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.delay(5), Duration::ZERO);
        assert_eq!(p.jitter_permille, 0);
    }

    #[test]
    fn huge_attempt_counts_saturate() {
        let p = RetryPolicy::new(usize::MAX, Duration::from_secs(1));
        assert!(p.delay(500) >= p.delay(21));
    }

    #[test]
    fn zero_jitter_reproduces_plain_exponential() {
        let p = RetryPolicy::new(3, Duration::from_millis(8));
        for attempt in 0..4 {
            for slot in [0, 7, 1000] {
                assert_eq!(p.delay_for(attempt, slot), p.delay(attempt));
            }
        }
    }

    #[test]
    fn jitter_is_deterministic_per_slot_and_attempt() {
        let p = RetryPolicy::new(3, Duration::from_millis(10)).with_jitter(250, 42);
        let q = RetryPolicy::new(3, Duration::from_millis(10)).with_jitter(250, 42);
        for slot in 0..32 {
            for attempt in 1..4 {
                assert_eq!(p.delay_for(attempt, slot), q.delay_for(attempt, slot));
            }
        }
    }

    #[test]
    fn jitter_stays_within_its_bounds() {
        let p = RetryPolicy::new(5, Duration::from_millis(100)).with_jitter(250, 7);
        for slot in 0..64 {
            for attempt in 1..5 {
                let nominal = p.delay(attempt);
                let jittered = p.delay_for(attempt, slot);
                let lo = nominal.mul_f64(0.75);
                let hi = nominal.mul_f64(1.2500001);
                assert!(
                    jittered >= lo && jittered <= hi,
                    "slot {slot} attempt {attempt}: {jittered:?} outside [{lo:?}, {hi:?}]"
                );
            }
        }
    }

    #[test]
    fn jitter_actually_spreads_slots() {
        let p = RetryPolicy::new(1, Duration::from_millis(100)).with_jitter(500, 1);
        let delays: Vec<Duration> = (0..16).map(|slot| p.delay_for(1, slot)).collect();
        let distinct = {
            let mut d = delays.clone();
            d.sort();
            d.dedup();
            d.len()
        };
        assert!(distinct > 8, "16 slots, only {distinct} distinct delays");
    }

    #[test]
    fn permille_clamps_at_full_amplitude() {
        let p = RetryPolicy::new(1, Duration::from_millis(10)).with_jitter(5000, 3);
        assert_eq!(p.jitter_permille, 1000);
        for slot in 0..32 {
            // Full amplitude may reach zero but never wraps negative.
            let d = p.delay_for(1, slot);
            assert!(d <= Duration::from_millis(20));
        }
    }

    #[test]
    fn transient_preset_backs_off_with_jitter() {
        let p = RetryPolicy::transient_backoff();
        assert!(p.max_retries >= 1);
        assert!(p.delay(1) > Duration::ZERO, "no immediate retry");
        assert!(p.jitter_permille > 0);
    }
}
