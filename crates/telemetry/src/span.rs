//! Hierarchical spans: a per-run [`Recorder`], thread-local ambient
//! state, RAII [`SpanGuard`]s, and cross-thread [`Context`] capture.
//!
//! The recorder is the single sink for one run's trace. Threads opt in
//! by installing it ([`Recorder::install`]) or attaching a captured
//! [`Context`] (how pool workers inherit the caller's current span).
//! Span open is an id allocation plus a clock read; span close pushes
//! one finished record into a sharded sink — no lock is held while the
//! instrumented code runs, and a panic unwinding through a guard still
//! closes its span.

use std::cell::RefCell;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::Value;

use crate::metrics::{MetricsSnapshot, Registry};

/// Sink shards; record pushes hash over these to keep the critical
/// section from serialising the pool.
const SHARDS: usize = 8;

thread_local! {
    static AMBIENT: RefCell<Option<Ambient>> = const { RefCell::new(None) };
}

/// Per-thread telemetry state: which recorder to write to and which
/// span is currently open on this thread.
#[derive(Clone)]
struct Ambient {
    recorder: Recorder,
    current: Option<u64>,
}

/// A finished span: one interval in the `run → stage → point → sample
/// → solve` hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the recorder (1-based).
    pub id: u64,
    /// Enclosing span at open time, if any.
    pub parent: Option<u64>,
    /// Span kind (`run`, `stage`, `point`, `sample`, `solve`, …).
    pub name: &'static str,
    /// Open time, microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Free-form key/value annotations.
    pub attrs: Vec<(String, String)>,
    /// Global record sequence number (close order).
    pub seq: u64,
}

/// A point-in-time annotation tied to the span that was current when
/// it fired — how `FlowEvent`s correlate with the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Span current on the emitting thread, if any.
    pub span: Option<u64>,
    /// Index of the mirrored entry in `events.json`, when the event
    /// also lives there.
    pub index: Option<u64>,
    /// Rendered event text.
    pub message: String,
    /// Emission time, microseconds since the recorder's epoch.
    pub t_us: u64,
    /// Global record sequence number.
    pub seq: u64,
}

/// One line of `trace.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A closed span.
    Span(SpanRecord),
    /// A point event.
    Event(EventRecord),
}

impl TraceRecord {
    fn seq(&self) -> u64 {
        match self {
            TraceRecord::Span(s) => s.seq,
            TraceRecord::Event(e) => e.seq,
        }
    }

    /// The record as one compact JSON value (a `trace.jsonl` line).
    #[must_use]
    pub fn to_json(&self) -> Value {
        match self {
            TraceRecord::Span(s) => Value::Object(vec![
                ("type".into(), Value::Str("span".into())),
                ("id".into(), Value::UInt(s.id)),
                ("parent".into(), s.parent.map_or(Value::Null, Value::UInt)),
                ("name".into(), Value::Str(s.name.into())),
                ("start_us".into(), Value::UInt(s.start_us)),
                ("dur_us".into(), Value::UInt(s.dur_us)),
                (
                    "attrs".into(),
                    Value::Object(
                        s.attrs
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                            .collect(),
                    ),
                ),
                ("seq".into(), Value::UInt(s.seq)),
            ]),
            TraceRecord::Event(e) => Value::Object(vec![
                ("type".into(), Value::Str("event".into())),
                ("span".into(), e.span.map_or(Value::Null, Value::UInt)),
                (
                    "event_index".into(),
                    e.index.map_or(Value::Null, Value::UInt),
                ),
                ("message".into(), Value::Str(e.message.clone())),
                ("t_us".into(), Value::UInt(e.t_us)),
                ("seq".into(), Value::UInt(e.seq)),
            ]),
        }
    }
}

struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    seq: AtomicU64,
    shards: [Mutex<Vec<TraceRecord>>; SHARDS],
    registry: Registry,
}

/// The per-run span/metric sink. Cheap to clone (an `Arc`); one
/// instance serves every thread of a run.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// Creates an empty recorder; its epoch is now.
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                seq: AtomicU64::new(0),
                shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
                registry: Registry::new(),
            }),
        }
    }

    /// Installs this recorder as the calling thread's ambient sink
    /// until the returned guard drops. Nests: the previous ambient
    /// state (another recorder, or none) is restored on drop. The
    /// guard must be dropped on the installing thread.
    #[must_use]
    pub fn install(&self) -> InstallGuard {
        let prev = AMBIENT.with(|a| {
            a.borrow_mut().replace(Ambient {
                recorder: self.clone(),
                current: None,
            })
        });
        crate::activate();
        InstallGuard { prev }
    }

    /// The recorder's metrics registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Snapshot of every metric recorded so far.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.registry.snapshot()
    }

    /// All records so far, in close order.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = Vec::new();
        for shard in &self.inner.shards {
            out.extend(shard.lock().unwrap().iter().cloned());
        }
        out.sort_by_key(TraceRecord::seq);
        out
    }

    /// Writes the trace as JSON lines (one record per line, close
    /// order) to `path`, atomically via a sibling temp file.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_trace<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            for record in self.records() {
                let line = serde_json::to_string(&record.to_json())
                    .expect("shim serialisation is infallible");
                writeln!(f, "{line}")?;
            }
            f.flush()?;
        }
        std::fs::rename(&tmp, path)
    }

    fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    fn push(&self, record: TraceRecord) {
        let shard = (record.seq() % SHARDS as u64) as usize;
        self.inner.shards[shard].lock().unwrap().push(record);
    }

    fn next_seq(&self) -> u64 {
        self.inner.seq.fetch_add(1, Ordering::Relaxed)
    }
}

/// Reverts [`Recorder::install`] on drop.
pub struct InstallGuard {
    prev: Option<Ambient>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        crate::deactivate();
        let prev = self.prev.take();
        let _ = AMBIENT.try_with(|a| *a.borrow_mut() = prev);
    }
}

/// A captured snapshot of the calling thread's ambient telemetry
/// state, for re-establishing it on another thread (pool workers).
/// Capturing with no recorder installed yields an inert context whose
/// [`Context::attach`] is a no-op — callers never need to special-case
/// the disabled path.
#[derive(Clone)]
pub struct Context {
    ambient: Option<Ambient>,
}

impl Context {
    /// Attaches the captured state to the calling thread until the
    /// returned guard drops (which must happen on the same thread).
    #[must_use]
    pub fn attach(&self) -> AttachGuard {
        match &self.ambient {
            None => AttachGuard {
                prev: None,
                active: false,
            },
            Some(amb) => {
                let prev = AMBIENT.with(|a| a.borrow_mut().replace(amb.clone()));
                crate::activate();
                AttachGuard { prev, active: true }
            }
        }
    }
}

/// Captures the calling thread's ambient state (recorder + current
/// span) for hand-off to another thread.
#[must_use]
pub fn capture() -> Context {
    Context {
        ambient: AMBIENT.with(|a| a.borrow().clone()),
    }
}

/// Reverts [`Context::attach`] on drop.
pub struct AttachGuard {
    prev: Option<Ambient>,
    active: bool,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        if self.active {
            crate::deactivate();
            let prev = self.prev.take();
            let _ = AMBIENT.try_with(|a| *a.borrow_mut() = prev);
        }
    }
}

struct OpenSpan {
    recorder: Recorder,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_us: u64,
    attrs: Vec<(String, String)>,
}

/// RAII handle for an open span; closing (dropping) records it. A
/// guard obtained with telemetry disabled is inert and free.
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

impl SpanGuard {
    /// The span id, when telemetry is live.
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|s| s.id)
    }

    /// Annotates the span (builder-style, no-op when inert).
    #[must_use]
    pub fn attr(mut self, key: &str, value: impl ToString) -> Self {
        if let Some(open) = &mut self.inner {
            open.attrs.push((key.to_string(), value.to_string()));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else {
            return;
        };
        let dur_us = open.start.elapsed().as_micros() as u64;
        // Pop this span off the thread's ambient stack. `try_with`
        // because Drop may run during thread teardown.
        let _ = AMBIENT.try_with(|a| {
            if let Ok(mut slot) = a.try_borrow_mut() {
                if let Some(amb) = slot.as_mut() {
                    if amb.current == Some(open.id) {
                        amb.current = open.parent;
                    }
                }
            }
        });
        let seq = open.recorder.next_seq();
        open.recorder.push(TraceRecord::Span(SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            start_us: open.start_us,
            dur_us,
            attrs: open.attrs,
            seq,
        }));
    }
}

/// Opens a span under the thread's current span (or as a root). Inert
/// when telemetry is disabled or the thread has no ambient recorder.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { inner: None };
    }
    AMBIENT.with(|a| {
        let mut slot = a.borrow_mut();
        let Some(amb) = slot.as_mut() else {
            return SpanGuard { inner: None };
        };
        let recorder = amb.recorder.clone();
        let id = recorder.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = amb.current;
        amb.current = Some(id);
        SpanGuard {
            inner: Some(OpenSpan {
                start_us: recorder.now_us(),
                recorder,
                id,
                parent,
                name,
                start: Instant::now(),
                attrs: Vec::new(),
            }),
        }
    })
}

/// The id of the calling thread's current span, if any.
#[must_use]
pub fn current_span_id() -> Option<u64> {
    AMBIENT.with(|a| a.borrow().as_ref().and_then(|amb| amb.current))
}

/// Records a point event tied to the current span.
pub fn event(message: &str) {
    record_event(message, None);
}

/// Records a point event that mirrors entry `index` of `events.json`,
/// so the two logs correlate by span id and event index.
pub fn event_indexed(index: usize, message: &str) {
    record_event(message, Some(index as u64));
}

fn record_event(message: &str, index: Option<u64>) {
    if !crate::enabled() {
        return;
    }
    let Some((recorder, span)) = AMBIENT.with(|a| {
        a.borrow()
            .as_ref()
            .map(|amb| (amb.recorder.clone(), amb.current))
    }) else {
        return;
    };
    let t_us = recorder.now_us();
    let seq = recorder.next_seq();
    recorder.push(TraceRecord::Event(EventRecord {
        span,
        index,
        message: message.to_string(),
        t_us,
        seq,
    }));
}

pub(crate) fn with_ambient_recorder<R>(f: impl FnOnce(&Recorder) -> R) -> Option<R> {
    AMBIENT.with(|a| a.borrow().as_ref().map(|amb| f(&amb.recorder)))
}
