//! Per-run profiling: aggregates a [`Recorder`]'s spans and metrics
//! into a machine-readable [`RunProfile`] (persisted as
//! `metrics.json`) and a human-readable table ([`render`]).

use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSnapshot;
use crate::span::{Recorder, SpanRecord, TraceRecord};

/// Wall-clock share of one flow stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Stage name (the `stage` attribute of its span).
    pub stage: String,
    /// Stage wall clock in microseconds.
    pub wall_us: u64,
}

/// One of the slowest characterised/evaluated points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointProfile {
    /// Stage the point belongs to.
    pub stage: String,
    /// Point index within its stage.
    pub point: String,
    /// Retry-ladder attempt the span covers.
    pub attempt: String,
    /// Point wall clock in microseconds.
    pub wall_us: u64,
}

/// Where evaluation time went: inside the simulator versus around it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SolverSplit {
    /// Summed duration of `solve` spans (busy time across threads).
    pub solver_us: u64,
    /// Summed duration of `sample` spans.
    pub sample_us: u64,
    /// Number of `solve` spans.
    pub solves: u64,
    /// Number of `sample` spans.
    pub samples: u64,
}

impl SolverSplit {
    /// Fraction of sample time spent inside the solver (`None` when no
    /// samples ran).
    #[must_use]
    pub fn solver_fraction(&self) -> Option<f64> {
        (self.sample_us > 0).then(|| self.solver_us as f64 / self.sample_us as f64)
    }
}

/// Aggregated profile of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Profile schema version.
    pub version: u32,
    /// Run wall clock in microseconds (the `run` span, or the latest
    /// span end when no run span closed).
    pub wall_us: u64,
    /// Per-stage wall clock, run order.
    pub stages: Vec<StageProfile>,
    /// Slowest point spans, descending.
    pub slowest_points: Vec<PointProfile>,
    /// Solver-time vs. overhead split.
    pub solver: SolverSplit,
    /// Total spans recorded.
    pub span_count: u64,
    /// Total events recorded.
    pub event_count: u64,
    /// Every metric the run recorded.
    pub metrics: MetricsSnapshot,
}

fn attr<'a>(span: &'a SpanRecord, key: &str) -> Option<&'a str> {
    span.attrs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Builds the profile from everything `recorder` captured, keeping the
/// `top_points` slowest point spans.
#[must_use]
pub fn build(recorder: &Recorder, top_points: usize) -> RunProfile {
    let records = recorder.records();
    let mut spans: Vec<&SpanRecord> = Vec::new();
    let mut event_count = 0u64;
    for record in &records {
        match record {
            TraceRecord::Span(s) => spans.push(s),
            TraceRecord::Event(_) => event_count += 1,
        }
    }

    let mut wall_us = spans
        .iter()
        .find(|s| s.name == "run")
        .map(|s| s.dur_us)
        .unwrap_or(0);
    if wall_us == 0 {
        wall_us = spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .max()
            .unwrap_or(0);
    }

    // Stage spans in open order (start_us ascending = run order).
    let mut stage_spans: Vec<&&SpanRecord> = spans.iter().filter(|s| s.name == "stage").collect();
    stage_spans.sort_by_key(|s| s.start_us);
    let stages = stage_spans
        .iter()
        .map(|s| StageProfile {
            stage: attr(s, "stage").unwrap_or("?").to_string(),
            wall_us: s.dur_us,
        })
        .collect();

    let mut points: Vec<PointProfile> = spans
        .iter()
        .filter(|s| s.name == "point")
        .map(|s| PointProfile {
            stage: attr(s, "stage").unwrap_or("?").to_string(),
            point: attr(s, "point").unwrap_or("?").to_string(),
            attempt: attr(s, "attempt").unwrap_or("0").to_string(),
            wall_us: s.dur_us,
        })
        .collect();
    points.sort_by_key(|p| std::cmp::Reverse(p.wall_us));
    points.truncate(top_points);

    // The solver split compares like with like: only solve spans that
    // ran *under* a sample span count, so solves from stages without
    // sample spans (GA evaluation, verification) don't inflate the
    // ratio past the sample busy time.
    let name_of: std::collections::HashMap<u64, (&'static str, Option<u64>)> =
        spans.iter().map(|s| (s.id, (s.name, s.parent))).collect();
    let under_sample = |mut parent: Option<u64>| {
        while let Some(id) = parent {
            match name_of.get(&id) {
                Some(("sample", _)) => return true,
                Some((_, up)) => parent = *up,
                None => return false,
            }
        }
        false
    };
    let mut solver = SolverSplit::default();
    for s in &spans {
        match s.name {
            "solve" if under_sample(s.parent) => {
                solver.solver_us += s.dur_us;
                solver.solves += 1;
            }
            "sample" => {
                solver.sample_us += s.dur_us;
                solver.samples += 1;
            }
            _ => {}
        }
    }

    RunProfile {
        version: 1,
        wall_us,
        stages,
        slowest_points: points,
        solver,
        span_count: spans.len() as u64,
        event_count,
        metrics: recorder.metrics(),
    }
}

fn fmt_us(us: u64) -> String {
    let s = us as f64 / 1e6;
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{us} µs")
    }
}

/// Renders the profile as a human-readable table (the `--report`
/// output and the example's end-of-run summary).
#[must_use]
pub fn render(profile: &RunProfile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "run profile: {} wall, {} spans, {} events\n",
        fmt_us(profile.wall_us),
        profile.span_count,
        profile.event_count
    ));

    if !profile.stages.is_empty() {
        out.push_str("stage breakdown:\n");
        for s in &profile.stages {
            let pct = if profile.wall_us > 0 {
                100.0 * s.wall_us as f64 / profile.wall_us as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<14} {:>10}  {:>5.1}%\n",
                s.stage,
                fmt_us(s.wall_us),
                pct
            ));
        }
    }

    if !profile.slowest_points.is_empty() {
        out.push_str("slowest points:\n");
        for p in &profile.slowest_points {
            out.push_str(&format!(
                "  {:<14} point {:<4} attempt {:<2} {:>10}\n",
                p.stage,
                p.point,
                p.attempt,
                fmt_us(p.wall_us)
            ));
        }
    }

    if profile.solver.samples > 0 {
        let frac = profile.solver.solver_fraction().unwrap_or(0.0) * 100.0;
        out.push_str(&format!(
            "solver vs overhead: {} solver / {} sample busy time \
             ({frac:.1}% in solver, {} solves over {} samples)\n",
            fmt_us(profile.solver.solver_us),
            fmt_us(profile.solver.sample_us),
            profile.solver.solves,
            profile.solver.samples
        ));
    }

    let hot: Vec<&(String, crate::metrics::HistogramSnapshot)> = profile
        .metrics
        .histograms
        .iter()
        .filter(|(_, h)| h.count > 0)
        .collect();
    if !hot.is_empty() {
        out.push_str("histograms (count / mean / max):\n");
        for (name, h) in hot {
            out.push_str(&format!(
                "  {:<28} {:>8}  {:>12.4}  {:>12.4}\n",
                name,
                h.count,
                h.mean().unwrap_or(0.0),
                h.max.unwrap_or(0.0)
            ));
        }
    }
    if !profile.metrics.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &profile.metrics.counters {
            out.push_str(&format!("  {name:<28} {v:>8}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    #[test]
    fn build_aggregates_stages_points_and_solver_split() {
        let rec = Recorder::new();
        {
            let _install = rec.install();
            let _run = span("run");
            {
                let _stage = span("stage").attr("stage", "characterise");
                for point in 0..3 {
                    let _p = span("point")
                        .attr("stage", "characterise")
                        .attr("point", point)
                        .attr("attempt", 0);
                    let _s = span("sample").attr("index", 0);
                    let _solve = span("solve").attr("analysis", "transient");
                    std::thread::sleep(std::time::Duration::from_millis(1 + point));
                }
            }
            crate::counter_add("mc.samples", 3);
            crate::observe("sim.newton_iterations.dc", 4.0);
        }
        let profile = build(&rec, 2);
        assert_eq!(profile.stages.len(), 1);
        assert_eq!(profile.stages[0].stage, "characterise");
        assert_eq!(profile.slowest_points.len(), 2, "top-N truncates");
        assert!(
            profile.slowest_points[0].wall_us >= profile.slowest_points[1].wall_us,
            "descending order"
        );
        assert_eq!(profile.solver.solves, 3);
        assert_eq!(profile.solver.samples, 3);
        assert!(profile.solver.solver_fraction().unwrap() <= 1.0);
        assert!(profile.wall_us >= profile.stages[0].wall_us);
        assert_eq!(profile.metrics.counter("mc.samples"), Some(3));

        let text = render(&profile);
        assert!(text.contains("stage breakdown"), "{text}");
        assert!(text.contains("characterise"), "{text}");
        assert!(text.contains("solver vs overhead"), "{text}");

        let json = serde_json::to_string_pretty(&profile).unwrap();
        let back: RunProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, profile);
    }
}
