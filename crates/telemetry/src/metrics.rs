//! Metrics registry: named counters, gauges, and fixed-bucket
//! log-scale histograms, all updated lock-free after a first-touch
//! registration (a short read-locked map lookup).
//!
//! Histograms cover the dynamic range the flow actually produces —
//! sub-nanosecond latencies up to hours, Newton iteration counts,
//! substep depths — with one bucket per power of two. Observations are
//! classified exactly from the f64 exponent bits, so bucket boundaries
//! are deterministic: `2^k` always lands in the bucket whose lower
//! bound is `2^k`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use serde::{Deserialize, Serialize};

/// Number of histogram buckets (one per power of two).
pub const BUCKETS: usize = 64;

/// Exponent of the lowest bucket's lower bound: bucket 0 starts at
/// `2^MIN_EXP` (≈ 2.3e-10 — below one nanosecond in seconds).
const MIN_EXP: i32 = -32;

/// Bucket index for a positive finite observation: `floor(log2(v))`
/// shifted and clamped into `0..BUCKETS`. Returns `None` for zero,
/// negative, or non-finite values — those are tallied separately, not
/// binned.
#[must_use]
pub fn bucket_index(v: f64) -> Option<usize> {
    if !v.is_finite() || v <= 0.0 {
        return None;
    }
    // Exponent straight from the bits: exact at bucket boundaries,
    // unlike a floating log2. Subnormals read as -1023 and clamp into
    // bucket 0.
    let exp = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    Some((exp - MIN_EXP).clamp(0, BUCKETS as i32 - 1) as usize)
}

/// `[lower, upper)` bounds of bucket `i`. The first bucket also
/// absorbs smaller positive values and the last absorbs larger ones.
///
/// # Panics
///
/// Panics when `i >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(i: usize) -> (f64, f64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    let lo = MIN_EXP + i as i32;
    (2f64.powi(lo), 2f64.powi(lo + 1))
}

/// A fixed-bucket log-scale histogram, updated lock-free.
///
/// Observation classes: positive finite values are binned and counted;
/// zero and negative finite values count (into `count`, `sum`,
/// `min`/`max`) but land in `underflow` instead of a bucket; NaN and
/// infinities are tallied as `invalid` and otherwise ignored.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    underflow: AtomicU64,
    invalid: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

fn update_extreme(cell: &AtomicU64, v: f64, keep_current: impl Fn(f64, f64) -> bool) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let cur = f64::from_bits(current);
        if !cur.is_nan() && keep_current(cur, v) {
            return;
        }
        match cell.compare_exchange_weak(current, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            underflow: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::NAN.to_bits()),
            max_bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }

    /// Records one observation (see the type docs for how zero,
    /// negative, and non-finite values are classified).
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            self.invalid.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match bucket_index(v) {
            Some(i) => {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.underflow.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 add via CAS; fine for statistics, not for money.
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        update_extreme(&self.min_bits, v, |cur, v| cur <= v);
        update_extreme(&self.max_bits, v, |cur, v| cur >= v);
    }

    /// Folds `other`'s observations into `self`.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.underflow
            .fetch_add(other.underflow.load(Ordering::Relaxed), Ordering::Relaxed);
        self.invalid
            .fetch_add(other.invalid.load(Ordering::Relaxed), Ordering::Relaxed);
        let their_sum = f64::from_bits(other.sum_bits.load(Ordering::Relaxed));
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + their_sum).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        let their_min = f64::from_bits(other.min_bits.load(Ordering::Relaxed));
        if !their_min.is_nan() {
            update_extreme(&self.min_bits, their_min, |cur, v| cur <= v);
        }
        let their_max = f64::from_bits(other.max_bits.load(Ordering::Relaxed));
        if !their_max.is_nan() {
            update_extreme(&self.max_bits, their_max, |cur, v| cur >= v);
        }
    }

    /// A point-in-time copy of the histogram.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        HistogramSnapshot {
            count,
            underflow: self.underflow.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: (!min.is_nan()).then_some(min),
            max: (!max.is_nan()).then_some(max),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| {
                        let (lo, hi) = bucket_bounds(i);
                        BucketCount {
                            index: i,
                            lo,
                            hi,
                            count: n,
                        }
                    })
                })
                .collect(),
        }
    }
}

/// One non-empty bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Bucket index (`0..BUCKETS`).
    pub index: usize,
    /// Lower bound (inclusive for in-range values).
    pub lo: f64,
    /// Upper bound (exclusive for in-range values).
    pub hi: f64,
    /// Observations binned here.
    pub count: u64,
}

/// Serializable copy of a [`Histogram`]. Empty buckets are omitted.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Finite observations (binned + underflow).
    pub count: u64,
    /// Zero or negative finite observations (counted, not binned).
    pub underflow: u64,
    /// NaN / infinite observations (rejected).
    pub invalid: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Smallest finite observation, when any.
    pub min: Option<f64>,
    /// Largest finite observation, when any.
    pub max: Option<f64>,
    /// Non-empty buckets, ascending.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean of finite observations (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Total observations binned into buckets.
    #[must_use]
    pub fn binned(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }
}

/// Named metric registry. First use of a name registers it; later
/// updates are a read-locked lookup plus atomic ops.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn intern<T>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    init: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(found) = map.read().unwrap().get(name) {
        return found.clone();
    }
    let mut writer = map.write().unwrap();
    writer
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(init()))
        .clone()
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        intern(&self.counters, name, || AtomicU64::new(0)).fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        intern(&self.gauges, name, || AtomicU64::new(0)).store(value.to_bits(), Ordering::Relaxed);
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        self.histogram(name).observe(value);
    }

    /// The named histogram, registered on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name, Histogram::new)
    }

    /// Snapshot of every metric, names ascending.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Serializable copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, names ascending.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, names ascending.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` histograms, names ascending.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Counter value by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Histogram snapshot by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        // 2^k sits in the bucket whose lower bound is 2^k.
        for k in [-32i32, -5, 0, 1, 10, 31] {
            let v = 2f64.powi(k);
            let i = bucket_index(v).unwrap();
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, v, "2^{k}");
            assert!(v < hi);
        }
        // Just under a power of two falls one bucket lower.
        let under = 2f64.powi(3) * (1.0 - f64::EPSILON);
        assert_eq!(bucket_index(under), Some(bucket_index(8.0).unwrap() - 1));
        // Out-of-range magnitudes clamp, never drop.
        assert_eq!(bucket_index(1e-300), Some(0));
        assert_eq!(bucket_index(1e300), Some(BUCKETS - 1));
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 4.0), Some(0));
        // Non-binnable classes.
        assert_eq!(bucket_index(0.0), None);
        assert_eq!(bucket_index(-1.0), None);
        assert_eq!(bucket_index(f64::NAN), None);
        assert_eq!(bucket_index(f64::INFINITY), None);
    }

    #[test]
    fn histogram_classifies_observations() {
        let h = Histogram::new();
        h.observe(4.0);
        h.observe(0.0);
        h.observe(-2.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.underflow, 2);
        assert_eq!(s.invalid, 2);
        assert_eq!(s.binned(), 1);
        assert_eq!(s.sum, 2.0);
        assert_eq!(s.min, Some(-2.0));
        assert_eq!(s.max, Some(4.0));
        assert_eq!(s.mean(), Some(2.0 / 3.0));
    }

    #[test]
    fn merge_adds_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe(1.0);
        a.observe(0.0);
        b.observe(8.0);
        b.observe(f64::NAN);
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.underflow, 1);
        assert_eq!(s.invalid, 1);
        assert_eq!(s.sum, 9.0);
        assert_eq!(s.min, Some(0.0));
        assert_eq!(s.max, Some(8.0));
    }

    #[test]
    fn registry_interns_and_snapshots() {
        let r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        r.observe("h", 4.0);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), Some(5));
        assert_eq!(s.gauges, vec![("g".into(), 2.5)]);
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn concurrent_observations_are_complete() {
        let r = std::sync::Arc::new(Registry::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let r = r.clone();
                scope.spawn(move || {
                    for i in 0..500 {
                        r.counter_add("n", 1);
                        r.observe("lat", (t * 500 + i) as f64 + 0.5);
                    }
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.counter("n"), Some(2000));
        let h = s.histogram("lat").unwrap();
        assert_eq!(h.count, 2000);
        assert_eq!(h.binned() + h.underflow, 2000);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let h = Histogram::new();
        h.observe(3.0);
        h.observe(-1.0);
        let r = Registry::new();
        r.counter_add("c", 1);
        r.gauge_set("g", 0.25);
        r.observe("h", 3.0);
        let snap = r.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }
}
