//! Opt-in observability for the hierarchical sizing flow: hierarchical
//! span tracing, a metrics registry, and per-run profiling reports.
//!
//! The flow is a deep pipeline — thousands of GA evaluations, a
//! Monte-Carlo batch per Pareto point, table-model fits, then a
//! system-level optimisation — and its wall clock concentrates in a few
//! hot loops that coarse `FlowEvent` counters cannot localise. This
//! crate records *where* time and failures go without perturbing the
//! computation:
//!
//! * **Spans** ([`span`], [`Recorder`]): RAII-guarded intervals
//!   mirroring the flow's own hierarchy
//!   (`run → stage → point → sample → solve`). Guards close during
//!   unwinding, so panic isolation and cancellation leave no dangling
//!   spans. A [`Context`] carries the ambient recorder and current span
//!   across thread boundaries into pool workers. Finished spans and
//!   events are flushed as JSON lines (`trace.jsonl`).
//! * **Metrics** ([`Registry`], [`Histogram`]): lock-free counters,
//!   gauges and fixed-bucket log-scale histograms, addressed by name
//!   through the ambient recorder ([`counter_add`], [`gauge_set`],
//!   [`observe`]).
//! * **Reports** ([`report`]): aggregates spans + metrics into a
//!   machine-readable profile (`metrics.json`) and a human-readable
//!   table (stage breakdown, slowest points, solver vs. overhead).
//!
//! Everything is opt-in and observation-only. When no recorder is
//! installed, every entry point returns after one relaxed atomic load —
//! no allocation, no locks, no clocks — and enabling telemetry never
//! changes numerical results, cache keys, or config digests.

mod metrics;
pub mod report;
mod span;

pub use metrics::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, MetricsSnapshot, Registry, BUCKETS,
};
pub use span::{
    capture, current_span_id, event, event_indexed, span, Context, EventRecord, Recorder,
    SpanGuard, SpanRecord, TraceRecord,
};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Number of live recorder installations/attachments across all
/// threads. Zero means every instrumentation call is a no-op after one
/// relaxed load — the disabled fast path.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

pub(crate) fn activate() {
    ACTIVE.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn deactivate() {
    ACTIVE.fetch_sub(1, Ordering::Relaxed);
}

/// Whether any recorder is installed anywhere in the process. This is
/// the cheap guard every instrumentation site checks first; the
/// per-thread truth is the ambient recorder (a thread with no recorder
/// installed still no-ops even when another thread has one).
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Telemetry opt-in requested via the `HIERSIZER_TELEMETRY`
/// environment variable, or `default` when unset or unrecognised.
/// `1`/`true`/`on`/`yes` enable, `0`/`false`/`off`/`no` disable; the
/// CI matrix uses this to drive tier-1 tests through both paths
/// without touching configs.
pub fn enabled_from_env(default: bool) -> bool {
    match std::env::var("HIERSIZER_TELEMETRY") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" | "yes" => true,
            "0" | "false" | "off" | "no" => false,
            _ => default,
        },
        Err(_) => default,
    }
}

/// Adds `delta` to the named counter on the ambient registry.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    span::with_ambient_recorder(|r| r.registry().counter_add(name, delta));
}

/// Sets the named gauge on the ambient registry.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    span::with_ambient_recorder(|r| r.registry().gauge_set(name, value));
}

/// Records one observation into the named histogram on the ambient
/// registry.
#[inline]
pub fn observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    span::with_ambient_recorder(|r| r.registry().observe(name, value));
}

/// Records a duration (in seconds) into the named histogram.
#[inline]
pub fn observe_secs(name: &str, elapsed: Duration) {
    observe(name, elapsed.as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_process_noops_and_env_parse() {
        // With no recorder installed on this thread, every entry point
        // must be inert (other tests may have recorders on their own
        // threads, so `enabled()` itself is not asserted here).
        counter_add("t.counter", 1);
        observe("t.hist", 1.0);
        gauge_set("t.gauge", 2.0);
        assert!(span("noop").id().is_none());
        assert!(current_span_id().is_none());
        assert!(enabled_from_env(true));
        assert!(!enabled_from_env(false));
    }

    #[test]
    fn install_records_spans_metrics_and_events() {
        let rec = Recorder::new();
        {
            let _install = rec.install();
            assert!(enabled());
            let outer = span("run");
            let outer_id = outer.id().unwrap();
            {
                let inner = span("stage").attr("stage", "circuit-opt");
                assert_eq!(current_span_id(), inner.id());
                event_indexed(0, "stage started");
            }
            counter_add("t.counter", 3);
            observe("t.hist", 0.5);
            gauge_set("t.gauge", 7.0);
            assert_eq!(current_span_id(), Some(outer_id));
        }
        let records = rec.records();
        let spans: Vec<&SpanRecord> = records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Span(s) => Some(s),
                TraceRecord::Event(_) => None,
            })
            .collect();
        assert_eq!(spans.len(), 2);
        let stage = spans.iter().find(|s| s.name == "stage").unwrap();
        let run = spans.iter().find(|s| s.name == "run").unwrap();
        assert_eq!(stage.parent, Some(run.id));
        assert_eq!(run.parent, None);
        assert_eq!(stage.attrs, vec![("stage".into(), "circuit-opt".into())]);
        let ev = records
            .iter()
            .find_map(|r| match r {
                TraceRecord::Event(e) => Some(e),
                TraceRecord::Span(_) => None,
            })
            .unwrap();
        assert_eq!(ev.span, Some(stage.id));
        assert_eq!(ev.index, Some(0));
        let m = rec.metrics();
        assert_eq!(m.counters, vec![("t.counter".into(), 3)]);
        assert_eq!(m.gauges, vec![("t.gauge".into(), 7.0)]);
        assert_eq!(m.histograms.len(), 1);
        assert_eq!(m.histograms[0].1.count, 1);
    }

    #[test]
    fn context_carries_spans_across_threads() {
        let rec = Recorder::new();
        let _install = rec.install();
        let parent = span("point");
        let parent_id = parent.id().unwrap();
        let ctx = capture();
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(current_span_id().is_none(), "fresh thread starts clean");
                let _attach = ctx.attach();
                assert_eq!(current_span_id(), Some(parent_id));
                let _child = span("sample");
                counter_add("t.cross", 1);
            });
        });
        drop(parent);
        let records = rec.records();
        let child = records
            .iter()
            .find_map(|r| match r {
                TraceRecord::Span(s) if s.name == "sample" => Some(s),
                _ => None,
            })
            .unwrap();
        assert_eq!(child.parent, Some(parent_id));
        assert_eq!(rec.metrics().counters, vec![("t.cross".into(), 1)]);
    }

    #[test]
    fn spans_close_during_unwind() {
        let rec = Recorder::new();
        let _install = rec.install();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _s = span("sample");
            panic!("evaluator exploded");
        }));
        assert!(result.is_err());
        assert!(current_span_id().is_none(), "unwound span must pop");
        let records = rec.records();
        assert_eq!(records.len(), 1, "the unwound span is still recorded");
    }

    #[test]
    fn trace_file_is_json_lines() {
        let rec = Recorder::new();
        {
            let _install = rec.install();
            let _s = span("run").attr("k", "v");
            event("hello");
        }
        let dir = std::env::temp_dir().join(format!("telemetry-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        rec.write_trace(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(matches!(v, serde_json::Value::Object(_)));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
