//! Direct tests of the dense-LU solve paths: degenerate sizes,
//! singular and ill-conditioned systems, and the pivot threshold —
//! the failure modes the MNA stamp hands this solver every Newton
//! iteration.

use numkit::matrix::{Matrix, SolveMatrixError};

fn matrix_from(rows: &[&[f64]]) -> Matrix {
    Matrix::from_rows(rows)
}

#[test]
fn one_by_one_solves_directly() {
    let m = matrix_from(&[&[4.0]]);
    let x = m.solve(&[8.0]).expect("1x1 with non-zero pivot solves");
    assert_eq!(x, vec![2.0]);
}

#[test]
fn one_by_one_zero_is_singular_at_step_zero() {
    let m = matrix_from(&[&[0.0]]);
    assert_eq!(m.solve(&[1.0]), Err(SolveMatrixError::Singular { step: 0 }));
}

#[test]
fn dependent_rows_report_the_elimination_step() {
    // Row 2 = row 0 + row 1: elimination zeroes the third pivot.
    let m = matrix_from(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[3.0, 4.0, 1.0]]);
    assert_eq!(
        m.solve(&[1.0, 2.0, 3.0]),
        Err(SolveMatrixError::Singular { step: 2 })
    );

    // A rank-1 matrix collapses one step earlier.
    let rank1 = matrix_from(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0], &[4.0, 8.0, 12.0]]);
    assert_eq!(
        rank1.solve(&[1.0, 2.0, 4.0]),
        Err(SolveMatrixError::Singular { step: 1 })
    );
}

#[test]
fn singular_error_message_names_the_step() {
    let err = matrix_from(&[&[0.0]]).solve(&[1.0]).unwrap_err();
    assert!(err.to_string().contains("step 0"), "{err}");
}

#[test]
fn ill_conditioned_hilbert_still_solves_accurately() {
    // The 6x6 Hilbert matrix (condition number ~1.5e7) is a classic
    // ill-conditioning stress: partial pivoting must keep the error
    // far below the conditioning bound.
    let n = 6;
    let mut h = Matrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            h[(r, c)] = 1.0 / (r + c + 1) as f64;
        }
    }
    let ones = vec![1.0; n];
    let b = h.mul_vec(&ones);
    let x = h.solve(&b).expect("Hilbert-6 is non-singular");
    for (i, xi) in x.iter().enumerate() {
        assert!(
            (xi - 1.0).abs() < 1e-6,
            "x[{i}] = {xi}, expected 1 within conditioning-limited accuracy"
        );
    }
    // The residual must be at rounding level even though the solution
    // error is amplified by the condition number.
    let back = h.mul_vec(&x);
    for (bi, bb) in b.iter().zip(&back) {
        assert!((bi - bb).abs() < 1e-12);
    }
}

#[test]
fn pivot_threshold_separates_tiny_from_zero() {
    // 1e-299 sits above the 1e-300 pivot threshold and must solve;
    // 1e-301 sits below it and must be declared singular, not produce
    // a 1e301-scale garbage solution.
    let tiny_ok = matrix_from(&[&[1e-299]]);
    let x = tiny_ok.solve(&[1e-299]).expect("above threshold solves");
    assert!((x[0] - 1.0).abs() < 1e-12);

    let tiny_bad = matrix_from(&[&[1e-301]]);
    assert_eq!(
        tiny_bad.solve(&[1.0]),
        Err(SolveMatrixError::Singular { step: 0 })
    );
}

#[test]
fn pivoting_rescues_a_zero_leading_diagonal() {
    // A zero in the (0,0) position is harmless with partial pivoting.
    let m = matrix_from(&[&[0.0, 1.0], &[1.0, 0.0]]);
    let x = m.solve(&[3.0, 5.0]).expect("permutation solves it");
    assert_eq!(x, vec![5.0, 3.0]);
}

#[test]
fn shape_errors_are_typed() {
    let rect = Matrix::zeros(2, 3);
    assert_eq!(
        rect.solve(&[1.0, 2.0]),
        Err(SolveMatrixError::NotSquare { rows: 2, cols: 3 })
    );
    let square = Matrix::identity(3);
    assert_eq!(
        square.solve(&[1.0]),
        Err(SolveMatrixError::DimensionMismatch {
            expected: 3,
            got: 1
        })
    );
}

#[test]
fn lu_factors_reuse_matches_direct_solve_bitwise() {
    let m = matrix_from(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
    let lu = m.lu().expect("SPD matrix factors");
    assert_eq!(lu.dim(), 3);
    for b in [[1.0, 0.0, 0.0], [0.5, -1.5, 2.0]] {
        let direct = m.solve(&b).expect("solves");
        let reused = lu.solve(&b).expect("solves");
        // Same factorisation, same arithmetic: the reuse path must be
        // bit-identical to the one-shot path.
        for (a, r) in direct.iter().zip(&reused) {
            assert_eq!(a.to_bits(), r.to_bits());
        }
    }
}
