//! Random distributions layered over [`rand`].
//!
//! Only the distributions the workspace needs are provided: standard and
//! scaled normals (Box–Muller), truncated normals (for bounded process
//! parameters) and uniform sampling within bounds. All samplers take the
//! RNG explicitly so every stochastic experiment is reproducible from a
//! seed.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Creates the workspace's deterministic RNG from a seed.
///
/// All experiments route their randomness through this constructor so a
/// single `u64` reproduces a full run.
///
/// # Examples
///
/// ```
/// let mut a = numkit::dist::seeded_rng(7);
/// let mut b = numkit::dist::seeded_rng(7);
/// assert_eq!(numkit::dist::standard_normal(&mut a),
///            numkit::dist::standard_normal(&mut b));
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one standard normal deviate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal deviate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev` is negative or non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev.is_finite() && std_dev >= 0.0,
        "standard deviation must be finite and non-negative"
    );
    mean + std_dev * standard_normal(rng)
}

/// Draws a normal deviate truncated to `±clip_sigma` standard deviations
/// by rejection sampling. Used for process parameters that must stay
/// physical (e.g. a mobility multiplier cannot go negative).
///
/// # Panics
///
/// Panics if `clip_sigma <= 0` or `std_dev < 0`.
pub fn truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    clip_sigma: f64,
) -> f64 {
    assert!(clip_sigma > 0.0, "clip_sigma must be positive");
    assert!(
        std_dev.is_finite() && std_dev >= 0.0,
        "standard deviation must be finite and non-negative"
    );
    if std_dev == 0.0 {
        return mean;
    }
    loop {
        let z = standard_normal(rng);
        if z.abs() <= clip_sigma {
            return mean + std_dev * z;
        }
    }
}

/// Draws a uniform deviate in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo > hi` or either bound is non-finite.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
    assert!(lo <= hi, "lower bound must not exceed upper bound");
    lo + (hi - lo) * rng.random::<f64>()
}

/// Fills `out` with a Latin-hypercube sample of `out.len()` points across
/// dimension `bounds.len()`; each inner `Vec` is one point.
///
/// Latin-hypercube sampling stratifies each axis so even small initial
/// populations cover the design space, which matters for the GA seeding.
///
/// # Panics
///
/// Panics if `n == 0`, `bounds` is empty, or any bound pair is invalid.
pub fn latin_hypercube<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    bounds: &[(f64, f64)],
) -> Vec<Vec<f64>> {
    assert!(n > 0, "sample count must be positive");
    assert!(!bounds.is_empty(), "at least one dimension required");
    for &(lo, hi) in bounds {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid bounds"
        );
    }
    let dim = bounds.len();
    let mut points = vec![vec![0.0; dim]; n];
    for (d, &(lo, hi)) in bounds.iter().enumerate() {
        // Permute the n strata for this axis.
        let mut strata: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            strata.swap(i, j);
        }
        for (i, point) in points.iter_mut().enumerate() {
            let frac = (strata[i] as f64 + rng.random::<f64>()) / n as f64;
            point[d] = lo + (hi - lo) * frac;
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..10 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded_rng(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = seeded_rng(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn truncated_normal_respects_clip() {
        let mut rng = seeded_rng(3);
        for _ in 0..5_000 {
            let v = truncated_normal(&mut rng, 0.0, 1.0, 2.0);
            assert!(v.abs() <= 2.0);
        }
    }

    #[test]
    fn truncated_normal_zero_sigma_is_mean() {
        let mut rng = seeded_rng(4);
        assert_eq!(truncated_normal(&mut rng, 5.0, 0.0, 3.0), 5.0);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = seeded_rng(5);
        for _ in 0..1_000 {
            let v = uniform(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn latin_hypercube_stratifies_each_axis() {
        let mut rng = seeded_rng(6);
        let n = 10;
        let pts = latin_hypercube(&mut rng, n, &[(0.0, 1.0), (10.0, 20.0)]);
        assert_eq!(pts.len(), n);
        // Each of the n strata along axis 0 must contain exactly one point.
        let mut seen = vec![false; n];
        for p in &pts {
            let stratum = (p[0] * n as f64).floor() as usize;
            let stratum = stratum.min(n - 1);
            assert!(!seen[stratum], "stratum {stratum} hit twice");
            seen[stratum] = true;
            assert!((10.0..20.0).contains(&p[1]));
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn uniform_rejects_inverted_bounds() {
        let mut rng = seeded_rng(7);
        let _ = uniform(&mut rng, 1.0, 0.0);
    }
}
