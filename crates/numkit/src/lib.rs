//! Small numerical toolkit shared across the hiersizer workspace.
//!
//! This crate provides the numerical primitives the rest of the workspace is
//! built on, implemented from scratch so the reproduction has no external
//! numerical dependencies:
//!
//! * [`matrix::Matrix`] — dense row-major `f64` matrices with LU
//!   factorisation and linear solves ([`matrix::LuFactors`]).
//! * [`complex::Complex`] — complex arithmetic plus a complex dense solver
//!   for small-signal (AC) analysis.
//! * [`stats`] — summary statistics (mean, variance, quantiles) and the
//!   [`stats::Summary`] type used by the Monte-Carlo engine.
//! * [`dist`] — random distributions (standard normal via Box–Muller,
//!   truncated normal, uniform in bounds) layered over [`rand`].
//!
//! # Examples
//!
//! Solving a small linear system:
//!
//! ```
//! use numkit::matrix::Matrix;
//!
//! # fn main() -> Result<(), numkit::matrix::SolveMatrixError> {
//! let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
//! let x = a.solve(&[3.0, 5.0])?;
//! assert!((x[0] - 0.8).abs() < 1e-12);
//! assert!((x[1] - 1.4).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod complex;
pub mod dist;
pub mod matrix;
pub mod stats;

pub use complex::Complex;
pub use matrix::Matrix;

/// Boltzmann constant in J/K, used by thermal-noise calculations.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Default simulation temperature in kelvin (27 °C, the SPICE default).
pub const ROOM_TEMPERATURE: f64 = 300.15;

/// `k·T` at [`ROOM_TEMPERATURE`], in joules.
pub const KT_ROOM: f64 = BOLTZMANN * ROOM_TEMPERATURE;

/// Returns `true` when two floats agree to a relative tolerance `rel`,
/// with an absolute floor `abs` for values near zero.
///
/// # Examples
///
/// ```
/// assert!(numkit::approx_eq(1.0, 1.0 + 1e-12, 1e-9, 1e-12));
/// assert!(!numkit::approx_eq(1.0, 1.1, 1e-9, 1e-12));
/// ```
pub fn approx_eq(a: f64, b: f64, rel: f64, abs: f64) -> bool {
    let diff = (a - b).abs();
    diff <= abs || diff <= rel * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_floor() {
        assert!(approx_eq(0.0, 1e-15, 1e-9, 1e-12));
        assert!(!approx_eq(0.0, 1e-6, 1e-9, 1e-12));
    }

    #[test]
    fn kt_room_magnitude() {
        let kt = KT_ROOM;
        assert!(kt > 4.0e-21 && kt < 4.3e-21);
    }
}
