//! Summary statistics used by the Monte-Carlo engine and the experiment
//! harnesses.

use std::fmt;

/// Summary statistics of a sample: count, mean, standard deviation,
/// extrema and quantiles.
///
/// # Examples
///
/// ```
/// use numkit::stats::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]).expect("non-empty");
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for a single sample).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
}

impl Summary {
    /// Computes summary statistics over `samples`.
    ///
    /// Returns `None` when `samples` is empty or contains a non-finite
    /// value, so callers must handle degenerate Monte-Carlo batches
    /// explicitly.
    pub fn from_samples(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Some(Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: quantile_sorted(&sorted, 0.5)?,
        })
    }

    /// Relative spread `k·σ/|µ|` expressed in percent; the workspace's
    /// ∆ columns use `k = 1` (see `variation::mc::McRun::delta_percent`).
    ///
    /// Returns `None` when the mean is zero (relative spread undefined).
    pub fn delta_percent(&self, k_sigma: f64) -> Option<f64> {
        if self.mean == 0.0 {
            return None;
        }
        Some(100.0 * k_sigma * self.std_dev / self.mean.abs())
    }

    /// Coefficient of variation `σ/|µ|`, or `None` for zero mean.
    pub fn cv(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.std_dev / self.mean.abs())
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6e} std={:.6e} min={:.6e} max={:.6e}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// Quantile `q ∈ [0, 1]` of an already-sorted slice using linear
/// interpolation between order statistics.
///
/// Returns `None` when `sorted` is empty (there is no order statistic
/// to interpolate — previously this indexed `sorted.len() - 1` and
/// panicked) or when `q` lies outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    Some(if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    })
}

/// Wilson score interval for a binomial proportion, used for yield
/// confidence intervals.
///
/// Returns `(low, high)` bounds on the true proportion given `successes`
/// out of `trials` at confidence level `z` standard normal deviates
/// (z = 1.96 for 95 %).
///
/// Returns `None` when `trials == 0` (the proportion is undefined) or
/// `successes > trials` (an impossible count, always a caller bug but
/// one that should surface as a handled condition, not a panic deep in
/// a yield report).
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> Option<(f64, f64)> {
    if trials == 0 || successes > trials {
        return None;
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    Some(((centre - half).max(0.0), (centre + half).min(1.0)))
}

/// Fixed-width histogram of a sample: returns `(bin_edges, counts)` with
/// `bins + 1` edges spanning `[min, max]`.
///
/// Returns `None` when `samples` is empty, contains non-finite values,
/// or `bins == 0` — there is no well-defined binning in any of those
/// cases.
pub fn histogram(samples: &[f64], bins: usize) -> Option<(Vec<f64>, Vec<usize>)> {
    if samples.is_empty() || bins == 0 || samples.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if max > min { max - min } else { 1.0 };
    let edges: Vec<f64> = (0..=bins)
        .map(|i| min + span * i as f64 / bins as f64)
        .collect();
    let mut counts = vec![0usize; bins];
    for &v in samples {
        let idx = (((v - min) / span) * bins as f64) as usize;
        counts[idx.min(bins - 1)] += 1;
    }
    Some((edges, counts))
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `None` if the slices differ in length, have fewer than two
/// points, or either has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Root-mean-square error between predictions and references.
///
/// Returns `None` when the slices differ in length or are empty (a
/// mean over zero points is undefined).
pub fn rmse(pred: &[f64], reference: &[f64]) -> Option<f64> {
    if pred.len() != reference.len() || pred.is_empty() {
        return None;
    }
    let sum: f64 = pred
        .iter()
        .zip(reference)
        .map(|(p, r)| (p - r) * (p - r))
        .sum();
    Some((sum / pred.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ~2.138
        assert!((s.std_dev - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(&[42.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 42.0);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(Summary::from_samples(&[]).is_none());
        assert!(Summary::from_samples(&[1.0, f64::NAN]).is_none());
        assert!(Summary::from_samples(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn delta_percent_matches_hand_calc() {
        let s = Summary::from_samples(&[9.0, 10.0, 11.0]).unwrap();
        // mean 10, std 1 → 3σ/µ = 30 %
        let d = s.delta_percent(3.0).unwrap();
        assert!((d - 30.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&v, 0.0), Some(1.0));
        assert_eq!(quantile_sorted(&v, 1.0), Some(4.0));
        assert!((quantile_sorted(&v, 0.5).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_degenerate_inputs_are_none_not_panics() {
        // Regression: the empty case used to index `sorted.len() - 1`.
        assert_eq!(quantile_sorted(&[], 0.5), None);
        assert_eq!(quantile_sorted(&[1.0], 0.5), Some(1.0));
        assert_eq!(quantile_sorted(&[1.0, 2.0], -0.1), None);
        assert_eq!(quantile_sorted(&[1.0, 2.0], 1.1), None);
        assert_eq!(quantile_sorted(&[1.0, 2.0], f64::NAN), None);
    }

    #[test]
    fn wilson_interval_brackets_estimate() {
        let (lo, hi) = wilson_interval(95, 100, 1.96).unwrap();
        assert!(lo < 0.95 && 0.95 < hi);
        assert!(lo > 0.88 && hi < 0.99);
    }

    #[test]
    fn wilson_interval_full_yield_is_below_one() {
        let (lo, hi) = wilson_interval(500, 500, 1.96).unwrap();
        assert!(hi <= 1.0);
        // With 500/500 the lower bound should still be above 99 %.
        assert!(lo > 0.99);
    }

    #[test]
    fn wilson_interval_degenerate_inputs_are_none_not_panics() {
        assert_eq!(wilson_interval(0, 0, 1.96), None);
        assert_eq!(wilson_interval(5, 3, 1.96), None);
        assert!(wilson_interval(0, 1, 1.96).is_some());
    }

    #[test]
    fn histogram_counts_everything_once() {
        let samples = [0.0, 0.1, 0.5, 0.9, 1.0, 0.5];
        let (edges, counts) = histogram(&samples, 4).unwrap();
        assert_eq!(edges.len(), 5);
        assert_eq!(counts.iter().sum::<usize>(), samples.len());
        assert_eq!(edges[0], 0.0);
        assert_eq!(edges[4], 1.0);
    }

    #[test]
    fn histogram_degenerate_single_value() {
        let (edges, counts) = histogram(&[3.0, 3.0, 3.0], 2).unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 3);
        assert_eq!(edges[0], 3.0);
    }

    #[test]
    fn histogram_degenerate_inputs_are_none_not_panics() {
        assert_eq!(histogram(&[], 4), None);
        assert_eq!(histogram(&[1.0], 0), None);
        assert_eq!(histogram(&[1.0, f64::NAN], 4), None);
        assert_eq!(histogram(&[1.0, f64::INFINITY], 4), None);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }

    #[test]
    fn rmse_zero_for_identical() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), Some(0.0));
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_degenerate_inputs_are_none_not_panics() {
        assert_eq!(rmse(&[], &[]), None);
        assert_eq!(rmse(&[1.0], &[1.0, 2.0]), None);
    }
}
