//! Dense row-major `f64` matrices with LU factorisation.
//!
//! The circuits simulated in this workspace have at most a few dozen MNA
//! unknowns, so a dense solver with partial pivoting is both simpler and
//! faster than a sparse one at this scale.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use numkit::matrix::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 0)] = 4.0;
/// m[(1, 1)] = 2.0;
/// assert_eq!(m[(0, 0)], 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error returned when a linear solve fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveMatrixError {
    /// The matrix is singular to working precision (pivot below threshold).
    Singular {
        /// Elimination step at which the zero pivot was found.
        step: usize,
    },
    /// The right-hand side length does not match the matrix dimension.
    DimensionMismatch {
        /// Matrix dimension.
        expected: usize,
        /// Provided right-hand side length.
        got: usize,
    },
    /// The matrix is not square.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
}

impl fmt::Display for SolveMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveMatrixError::Singular { step } => {
                write!(f, "matrix is singular at elimination step {step}")
            }
            SolveMatrixError::DimensionMismatch { expected, got } => {
                write!(f, "right-hand side has length {got}, expected {expected}")
            }
            SolveMatrixError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, expected square")
            }
        }
    }
}

impl std::error::Error for SolveMatrixError {}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets every entry to zero, retaining the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `value` to entry `(r, c)` — the natural operation for MNA
    /// stamping.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn add_at(&mut self, r: usize, c: usize, value: f64) {
        self[(r, c)] += value;
    }

    /// Multiplies `self` by the vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut y = vec![0.0; self.rows];
        for (r, y_r) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *y_r = acc;
        }
        y
    }

    /// Factorises the matrix as `P·A = L·U` with partial pivoting.
    ///
    /// The factorisation can be reused to solve multiple right-hand sides.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::NotSquare`] for non-square matrices and
    /// [`SolveMatrixError::Singular`] when a pivot falls below `1e-300`.
    pub fn lu(&self) -> Result<LuFactors, SolveMatrixError> {
        if self.rows != self.cols {
            return Err(SolveMatrixError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivot: find the largest magnitude in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[k * n + k].abs();
            for r in (k + 1)..n {
                let v = lu[r * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(SolveMatrixError::Singular { step: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    lu.swap(k * n + c, pivot_row * n + c);
                }
                perm.swap(k, pivot_row);
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                lu[r * n + k] = factor;
                for c in (k + 1)..n {
                    lu[r * n + c] -= factor * lu[k * n + c];
                }
            }
        }
        Ok(LuFactors { n, lu, perm })
    }

    /// Solves `A·x = b` for `x`.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is not square, is singular, or `b`
    /// has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveMatrixError> {
        let factors = self.lu()?;
        factors.solve(b)
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|r| {
                self.data[r * self.cols..(r + 1) * self.cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.4e} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// LU factorisation of a square matrix, reusable across right-hand sides.
///
/// Produced by [`Matrix::lu`].
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` using the stored factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveMatrixError> {
        if b.len() != self.n {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: self.n,
                got: b.len(),
            });
        }
        let n = self.n;
        // Apply permutation and forward-substitute L (unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for (c, &x_c) in x.iter().enumerate().take(r) {
                acc -= self.lu[r * n + c] * x_c;
            }
            x[r] = acc;
        }
        // Back-substitute U.
        for r in (0..n).rev() {
            let mut acc = x[r];
            for (c, &x_c) in x.iter().enumerate().skip(r + 1) {
                acc -= self.lu[r * n + c] * x_c;
            }
            x[r] = acc / self.lu[r * n + r];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let m = Matrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.0];
        let x = m.solve(&b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn solve_known_3x3() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - -1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_reports_error() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match a.solve(&[1.0, 2.0]) {
            Err(SolveMatrixError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn not_square_reports_error() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.lu(),
            Err(SolveMatrixError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        let f = a.lu().unwrap();
        assert!(matches!(
            f.solve(&[1.0]),
            Err(SolveMatrixError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn mul_vec_matches_solve_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[3.0, 6.0, -4.0], &[2.0, 1.0, 8.0]]);
        let x_true = [0.5, -1.25, 2.0];
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xs, xt) in x.iter().zip(x_true.iter()) {
            assert!((xs - xt).abs() < 1e-10);
        }
    }

    #[test]
    fn norm_inf_of_identity_is_one() {
        assert_eq!(Matrix::identity(5).norm_inf(), 1.0);
    }

    #[test]
    fn add_at_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_at(0, 0, 1.5);
        m.add_at(0, 0, 2.5);
        assert_eq!(m[(0, 0)], 4.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }
}
