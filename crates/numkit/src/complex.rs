//! Complex arithmetic and a dense complex linear solver.
//!
//! Used by the AC (small-signal) analysis in `spicesim` and by the
//! s-domain PLL loop analysis in `behavioral`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

use crate::matrix::SolveMatrixError;

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use numkit::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `z == 0`; in release builds the result
    /// contains infinities, matching IEEE-754 division semantics.
    pub fn recip(self) -> Complex {
        debug_assert!(self.abs_sq() > 0.0, "reciprocal of zero complex number");
        let d = self.abs_sq();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Complex {
        Complex::new(self.re * k, self.im * k)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division as multiplication by the reciprocal — intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

/// A dense square complex matrix stored row-major, with an LU solver.
///
/// Only the operations needed for AC analysis are provided: stamping
/// (`add_at`), clearing, and solving.
#[derive(Debug, Clone)]
pub struct ComplexMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl ComplexMatrix {
    /// Creates an `n × n` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix dimension must be nonzero");
        ComplexMatrix {
            n,
            data: vec![Complex::ZERO; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Sets all entries to zero, retaining the allocation.
    pub fn clear(&mut self) {
        self.data.fill(Complex::ZERO);
    }

    /// Adds `value` to entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn add_at(&mut self, r: usize, c: usize, value: Complex) {
        assert!(
            r < self.n && c < self.n,
            "complex matrix index out of bounds"
        );
        self.data[r * self.n + c] += value;
    }

    /// Returns entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Complex {
        assert!(
            r < self.n && c < self.n,
            "complex matrix index out of bounds"
        );
        self.data[r * self.n + c]
    }

    /// Solves `A·x = b` in place via Gaussian elimination with partial
    /// pivoting (by magnitude).
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::Singular`] when a pivot magnitude falls
    /// below `1e-300`, or [`SolveMatrixError::DimensionMismatch`] when `b`
    /// has the wrong length.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, SolveMatrixError> {
        if b.len() != self.n {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: self.n,
                got: b.len(),
            });
        }
        let n = self.n;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_mag = a[k * n + k].abs();
            for r in (k + 1)..n {
                let m = a[r * n + k].abs();
                if m > pivot_mag {
                    pivot_mag = m;
                    pivot_row = r;
                }
            }
            if pivot_mag < 1e-300 {
                return Err(SolveMatrixError::Singular { step: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    a.swap(k * n + c, pivot_row * n + c);
                }
                x.swap(k, pivot_row);
            }
            let pivot = a[k * n + k];
            for r in (k + 1)..n {
                let factor = a[r * n + k] / pivot;
                a[r * n + k] = Complex::ZERO;
                for c in (k + 1)..n {
                    let sub = factor * a[k * n + c];
                    a[r * n + c] = a[r * n + c] - sub;
                }
                let sub = factor * x[k];
                x[r] = x[r] - sub;
            }
        }
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in (r + 1)..n {
                acc = acc - a[r * n + c] * x[c];
            }
            x[r] = acc / a[r * n + r];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(2.0, -3.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        let w = z * z.recip();
        assert!((w.re - 1.0).abs() < 1e-12 && w.im.abs() < 1e-12);
    }

    #[test]
    fn j_squared_is_minus_one() {
        let jj = Complex::J * Complex::J;
        assert_eq!(jj, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn division_matches_hand_computation() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let q = a / b;
        // (1+2j)/(3-j) = (1+2j)(3+j)/10 = (1+7j)/10
        assert!((q.re - 0.1).abs() < 1e-12);
        assert!((q.im - 0.7).abs() < 1e-12);
    }

    #[test]
    fn complex_solve_rc_divider() {
        // Solve [[1, -1], [1, 1]] x = [j, 1]
        let mut m = ComplexMatrix::zeros(2);
        m.add_at(0, 0, Complex::ONE);
        m.add_at(0, 1, -Complex::ONE);
        m.add_at(1, 0, Complex::ONE);
        m.add_at(1, 1, Complex::ONE);
        let x = m.solve(&[Complex::J, Complex::ONE]).unwrap();
        // x0 = (1+j)/2, x1 = (1-j)/2
        assert!((x[0].re - 0.5).abs() < 1e-12 && (x[0].im - 0.5).abs() < 1e-12);
        assert!((x[1].re - 0.5).abs() < 1e-12 && (x[1].im + 0.5).abs() < 1e-12);
    }

    #[test]
    fn complex_solve_singular() {
        let m = ComplexMatrix::zeros(2);
        assert!(matches!(
            m.solve(&[Complex::ONE, Complex::ONE]),
            Err(SolveMatrixError::Singular { .. })
        ));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
    }
}
