//! ULP (units in the last place) distance between floats.
//!
//! Divergence reports quantify *how far apart* two runs drifted, not
//! just that they differ: a 1-ULP divergence points at a reassociated
//! reduction, a 2⁵²-ULP one at a different code path entirely.

/// Whether two floats are the same bit pattern (so NaN == NaN here,
/// and +0.0 != -0.0). This is the identity the differential pairs
/// promise — stricter than `==`.
pub fn bits_identical(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// ULP distance between two finite floats: how many representable
/// doubles lie between them (0 for identical bits). `None` when either
/// value is NaN — NaNs have no meaningful ordering.
///
/// Uses the monotone mapping from IEEE-754 bit patterns to a signed
/// integer line, so the distance is exact across the zero crossing
/// (+0.0 and -0.0 are 0 apart) and saturates instead of overflowing.
pub fn ulp_distance(a: f64, b: f64) -> Option<u64> {
    if a.is_nan() || b.is_nan() {
        return None;
    }
    let ia = monotone_bits(a);
    let ib = monotone_bits(b);
    Some(ia.abs_diff(ib))
}

/// Maps a double to an integer such that the float ordering becomes the
/// integer ordering and adjacent floats map to adjacent integers.
fn monotone_bits(x: f64) -> i64 {
    let bits = x.to_bits() as i64;
    if bits < 0 {
        // Negative floats: two's-complement-style flip so that more
        // negative floats map to more negative integers. -0.0 maps to
        // the same point as +0.0.
        i64::MIN.wrapping_add(bits.wrapping_neg())
    } else {
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_bits_are_zero_ulps() {
        assert_eq!(ulp_distance(1.5, 1.5), Some(0));
        assert!(bits_identical(1.5, 1.5));
        assert!(bits_identical(f64::NAN, f64::NAN));
    }

    #[test]
    fn signed_zeros_are_zero_apart_but_not_bit_identical() {
        assert_eq!(ulp_distance(0.0, -0.0), Some(0));
        assert!(!bits_identical(0.0, -0.0));
    }

    #[test]
    fn adjacent_floats_are_one_ulp() {
        let a = 1.0f64;
        let b = f64::from_bits(a.to_bits() + 1);
        assert_eq!(ulp_distance(a, b), Some(1));
        let c = -1.0f64;
        let d = f64::from_bits(c.to_bits() + 1); // more negative
        assert_eq!(ulp_distance(c, d), Some(1));
    }

    #[test]
    fn distance_crosses_zero_correctly() {
        let tiny = f64::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_distance(tiny, 0.0), Some(1));
        assert_eq!(ulp_distance(tiny, -tiny), Some(2));
    }

    #[test]
    fn nan_has_no_distance() {
        assert_eq!(ulp_distance(f64::NAN, 1.0), None);
        assert_eq!(ulp_distance(1.0, f64::NAN), None);
    }

    #[test]
    fn distance_is_symmetric_and_monotone() {
        let xs = [-2.0, -1.0, -1e-300, 0.0, 1e-300, 1.0, 2.0, 1e300];
        for (i, &a) in xs.iter().enumerate() {
            for &b in &xs[i..] {
                assert_eq!(ulp_distance(a, b), ulp_distance(b, a));
            }
        }
        // Wider float intervals contain more representable doubles.
        let near = ulp_distance(1.0, 1.0 + 1e-15).unwrap();
        let far = ulp_distance(1.0, 1.0 + 1e-12).unwrap();
        assert!(far > near);
    }
}
