//! Flattens a [`FlowReport`] into a stage-ordered list of named
//! scalars.
//!
//! Both halves of the harness walk reports through this single lens:
//! the differential runner compares two flattened lists element by
//! element (so the *first* divergence it reports really is the first
//! differing stage/point/sample in execution order), and the golden
//! checker addresses individual scalars by `(stage, point, sample,
//! metric)` coordinates.
//!
//! Only semantic artifacts are flattened. Observational fields —
//! `events`, `stage_wall`, `profile`, `circuit_evaluations_this_run` —
//! legitimately differ between paired runs (wall-clock, scheduling,
//! resume provenance) and are deliberately excluded from the
//! bit-identity contract.

use hierflow::charmodel::VcoDeltas;
use hierflow::flow::FlowReport;
use hierflow::system_opt::SystemSolution;
use hierflow::VcoPerf;
use netlist::topology::VcoSizing;
use serde::{Deserialize, Serialize};

/// One named scalar from a flow report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Flow stage the scalar belongs to: `circuit_opt`,
    /// `characterize`, `system_opt`, `select` or `verify`.
    pub stage: String,
    /// Pareto-point index within the stage, when applicable.
    pub point: Option<usize>,
    /// Monte-Carlo sample index within the point, when applicable.
    pub sample: Option<usize>,
    /// Dotted field path, e.g. `perf.kvco` or `sizing.wsn`.
    pub metric: String,
    /// The value. Counts and booleans are widened to `f64` (exact for
    /// every magnitude that occurs here).
    pub value: f64,
}

impl MetricSample {
    /// The `(stage, point, sample, metric)` coordinates as a display
    /// string, e.g. `characterize[point 2].delta.ivco`.
    pub fn path(&self) -> String {
        let mut s = self.stage.clone();
        if let Some(p) = self.point {
            s.push_str(&format!("[point {p}]"));
        }
        if let Some(i) = self.sample {
            s.push_str(&format!("[sample {i}]"));
        }
        s.push('.');
        s.push_str(&self.metric);
        s
    }

    /// Whether this sample sits at the given golden coordinates.
    pub fn at(
        &self,
        stage: &str,
        point: Option<usize>,
        sample: Option<usize>,
        metric: &str,
    ) -> bool {
        self.stage == stage && self.point == point && self.sample == sample && self.metric == metric
    }
}

/// Flattens a report into execution-stage order. Two runs of the same
/// configuration must produce identical lists (same paths, same bit
/// patterns) — that is the contract the differential pairs check.
pub fn flatten_report(report: &FlowReport) -> Vec<MetricSample> {
    let mut out = Vec::new();
    let push = |out: &mut Vec<MetricSample>,
                stage: &str,
                point: Option<usize>,
                sample: Option<usize>,
                metric: &str,
                value: f64| {
        out.push(MetricSample {
            stage: stage.to_string(),
            point,
            sample,
            metric: metric.to_string(),
            value,
        });
    };

    // Stage 1: circuit-level optimisation. The front itself is interior
    // to the characterisation artifact; the evaluation budget is the
    // stage's observable. (`circuit_evaluations_this_run` is resume
    // provenance, not a result.)
    push(
        &mut out,
        "circuit_opt",
        None,
        None,
        "circuit_evaluations",
        report.circuit_evaluations as f64,
    );

    // Stage 2: characterised front (the paper's Table 1 data).
    push(
        &mut out,
        "characterize",
        None,
        None,
        "points.len",
        report.front.points.len() as f64,
    );
    for (p, point) in report.front.points.iter().enumerate() {
        let p = Some(p);
        for (name, v) in sizing_fields(&point.sizing) {
            push(
                &mut out,
                "characterize",
                p,
                None,
                &format!("sizing.{name}"),
                v,
            );
        }
        for (name, v) in perf_fields(&point.perf) {
            push(
                &mut out,
                "characterize",
                p,
                None,
                &format!("perf.{name}"),
                v,
            );
        }
        // Derived: tuning range must be positive for a working VCO —
        // a golden band anchors it without naming both endpoints.
        push(
            &mut out,
            "characterize",
            p,
            None,
            "perf.tuning_range",
            point.perf.fmax - point.perf.fmin,
        );
        for (name, v) in delta_fields(&point.delta) {
            push(
                &mut out,
                "characterize",
                p,
                None,
                &format!("delta.{name}"),
                v,
            );
        }
        push(
            &mut out,
            "characterize",
            p,
            None,
            "mc_accepted",
            point.mc_accepted as f64,
        );
        push(
            &mut out,
            "characterize",
            p,
            None,
            "mc_failed",
            point.mc_failed as f64,
        );
    }

    // Stage 4: system-level front (the paper's Table 2 data).
    push(
        &mut out,
        "system_opt",
        None,
        None,
        "system_evaluations",
        report.system_evaluations as f64,
    );
    push(
        &mut out,
        "system_opt",
        None,
        None,
        "system_front.len",
        report.system_front.len() as f64,
    );
    for (p, sol) in report.system_front.iter().enumerate() {
        push_system_solution(&mut out, "system_opt", Some(p), sol, &push);
    }

    // Stage 5a: selection + spec propagation.
    push_system_solution(&mut out, "select", None, &report.selected, &push);
    push(
        &mut out,
        "select",
        None,
        None,
        "selected_x.len",
        report.selected_x.len() as f64,
    );
    for (i, v) in report.selected_x.iter().enumerate() {
        push(
            &mut out,
            "select",
            None,
            None,
            &format!("selected_x[{i}]"),
            *v,
        );
    }
    for (name, v) in sizing_fields(&report.final_sizing) {
        push(
            &mut out,
            "select",
            None,
            None,
            &format!("final_sizing.{name}"),
            v,
        );
    }

    // Stage 5b: bottom-up verification.
    let ver = &report.verification;
    push(&mut out, "verify", None, None, "passed", ver.passed as f64);
    push(&mut out, "verify", None, None, "total", ver.total as f64);
    push(
        &mut out,
        "verify",
        None,
        None,
        "yield_value",
        ver.yield_value,
    );
    push(
        &mut out,
        "verify",
        None,
        None,
        "yield_ci.lo",
        ver.yield_ci.0,
    );
    push(
        &mut out,
        "verify",
        None,
        None,
        "yield_ci.hi",
        ver.yield_ci.1,
    );
    push(
        &mut out,
        "verify",
        None,
        None,
        "evaluation_failures",
        ver.evaluation_failures as f64,
    );
    push(
        &mut out,
        "verify",
        None,
        None,
        "vco_samples.len",
        ver.vco_samples.len() as f64,
    );
    for (i, perf) in ver.vco_samples.iter().enumerate() {
        for (name, v) in perf_fields(perf) {
            push(&mut out, "verify", None, Some(i), &format!("vco.{name}"), v);
        }
    }

    out
}

fn push_system_solution(
    out: &mut Vec<MetricSample>,
    stage: &str,
    point: Option<usize>,
    sol: &SystemSolution,
    push: &impl Fn(&mut Vec<MetricSample>, &str, Option<usize>, Option<usize>, &str, f64),
) {
    for (name, v) in [
        ("kvco", sol.kvco),
        ("kvco_min", sol.kvco_min),
        ("kvco_max", sol.kvco_max),
        ("ivco", sol.ivco),
        ("ivco_min", sol.ivco_min),
        ("ivco_max", sol.ivco_max),
        ("c1", sol.c1),
        ("c2", sol.c2),
        ("r1", sol.r1),
        ("lock_time", sol.lock_time),
        ("lock_time_worst", sol.lock_time_worst),
        ("jitter", sol.jitter),
        ("jitter_min", sol.jitter_min),
        ("jitter_max", sol.jitter_max),
        ("current", sol.current),
        ("current_min", sol.current_min),
        ("current_max", sol.current_max),
    ] {
        push(out, stage, point, None, name, v);
    }
    push(
        out,
        stage,
        point,
        None,
        "meets_spec",
        f64::from(u8::from(sol.meets_spec)),
    );
    // Derived corner margins: non-negative exactly when the nominal
    // value sits inside its [min, max] corner window — the paper's
    // corner behaviour as a single golden-checkable scalar each.
    push(
        out,
        stage,
        point,
        None,
        "kvco_corner_margin",
        corner_margin(sol.kvco, sol.kvco_min, sol.kvco_max),
    );
    push(
        out,
        stage,
        point,
        None,
        "jitter_corner_margin",
        corner_margin(sol.jitter, sol.jitter_min, sol.jitter_max),
    );
    push(
        out,
        stage,
        point,
        None,
        "current_corner_margin",
        corner_margin(sol.current, sol.current_min, sol.current_max),
    );
}

fn corner_margin(nominal: f64, min: f64, max: f64) -> f64 {
    (nominal - min).min(max - nominal)
}

fn sizing_fields(s: &VcoSizing) -> [(&'static str, f64); 7] {
    [
        ("wn", s.wn),
        ("wp", s.wp),
        ("wsn", s.wsn),
        ("wsp", s.wsp),
        ("l_inv", s.l_inv),
        ("l_starve", s.l_starve),
        ("w_bias", s.w_bias),
    ]
}

fn perf_fields(p: &VcoPerf) -> [(&'static str, f64); 5] {
    [
        ("kvco", p.kvco),
        ("ivco", p.ivco),
        ("jvco", p.jvco),
        ("fmin", p.fmin),
        ("fmax", p.fmax),
    ]
}

fn delta_fields(d: &VcoDeltas) -> [(&'static str, f64); 5] {
    [
        ("kvco", d.kvco),
        ("ivco", d.ivco),
        ("jvco", d.jvco),
        ("fmin", d.fmin),
        ("fmax", d.fmax),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_renders_all_coordinates() {
        let m = MetricSample {
            stage: "characterize".into(),
            point: Some(2),
            sample: None,
            metric: "delta.ivco".into(),
            value: 2.7,
        };
        assert_eq!(m.path(), "characterize[point 2].delta.ivco");
        assert!(m.at("characterize", Some(2), None, "delta.ivco"));
        assert!(!m.at("characterize", Some(1), None, "delta.ivco"));
    }

    #[test]
    fn corner_margin_sign_encodes_ordering() {
        assert!(corner_margin(5.0, 4.0, 6.0) > 0.0);
        assert!(corner_margin(3.0, 4.0, 6.0) < 0.0);
        assert!(corner_margin(7.0, 4.0, 6.0) < 0.0);
    }
}
