//! The golden corpus: tolerance-banded oracle vectors in
//! `crates/conformance/golden/`.
//!
//! Each vector is a JSON list of `(stage, point, sample, metric)`
//! coordinates (addressing the [`crate::flatten`] view of a
//! [`FlowReport`]) with an inclusive `[lo, hi]` band. Two kinds of
//! vector live side by side:
//!
//! * **Paper-anchored bands** (`paper_bands.json`): hand-written
//!   ranges distilled from PAPER.md — VCO objective magnitudes, ∆%
//!   spread magnitudes, PLL corner behaviour. These never regenerate;
//!   editing them is a modelling decision.
//! * **Regenerable vectors** (`micro_flow.json`): recorded from a
//!   deterministic reference run with a relative tolerance band, so a
//!   legitimate algorithm change updates them via
//!   `cargo test -p conformance --features regen` and the diff is
//!   reviewable.
//!
//! A failing check names the vector, stage, point and metric — the
//! same provenance the differential reports carry.

use std::fmt;
use std::path::PathBuf;

use hierflow::flow::FlowReport;
use serde::{Deserialize, Serialize};

use crate::flatten::{flatten_report, MetricSample};

/// One banded expectation on a single flow scalar.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoldenEntry {
    /// Flow stage of the scalar (see [`crate::flatten`]).
    pub stage: String,
    /// Pareto-point index, when applicable.
    pub point: Option<usize>,
    /// Monte-Carlo sample index, when applicable.
    pub sample: Option<usize>,
    /// Dotted field path of the scalar.
    pub metric: String,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
    /// Where the band comes from: a PAPER.md citation for hand-written
    /// bands, `regen ±N%` for recorded ones.
    pub note: String,
}

/// A named set of golden entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoldenVector {
    /// Vector name (also its file stem under `golden/`).
    pub name: String,
    /// What this vector anchors and why.
    pub description: String,
    /// The banded expectations.
    pub entries: Vec<GoldenEntry>,
}

/// One violated golden entry.
#[derive(Debug, Clone)]
pub struct GoldenFailure {
    /// Name of the vector the entry came from.
    pub vector: String,
    /// The violated entry.
    pub entry: GoldenEntry,
    /// The observed value, or `None` when the coordinates matched no
    /// scalar in the report (shape drift).
    pub found: Option<f64>,
}

impl fmt::Display for GoldenFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e = &self.entry;
        write!(f, "golden vector `{}`: stage {}", self.vector, e.stage)?;
        if let Some(p) = e.point {
            write!(f, ", point {p}")?;
        }
        if let Some(s) = e.sample {
            write!(f, ", sample {s}")?;
        }
        match self.found {
            Some(v) => write!(
                f,
                ": metric {} = {v:e} outside band [{:e}, {:e}] ({})",
                e.metric, e.lo, e.hi, e.note
            ),
            None => write!(
                f,
                ": metric {} missing from the report ({})",
                e.metric, e.note
            ),
        }
    }
}

/// The on-disk golden corpus directory,
/// `crates/conformance/golden/`.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// Loads a vector by name from [`golden_dir`].
pub fn load_vector(name: &str) -> GoldenVector {
    let path = golden_dir().join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden vector {} unreadable: {e}", path.display()));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("golden vector {} unparsable: {e}", path.display()))
}

/// Writes a vector into [`golden_dir`] (the `--features regen` path).
pub fn save_vector(vector: &GoldenVector) {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("golden dir");
    let path = dir.join(format!("{}.json", vector.name));
    let json = serde_json::to_string_pretty(vector).expect("golden vector serialises");
    std::fs::write(&path, json + "\n")
        .unwrap_or_else(|e| panic!("golden vector {} unwritable: {e}", path.display()));
}

/// Checks a report against a vector; returns every violated entry
/// (empty = pass).
pub fn check_report(vector: &GoldenVector, report: &FlowReport) -> Vec<GoldenFailure> {
    check_samples(vector, &flatten_report(report))
}

/// [`check_report`] over an already-flattened report.
pub fn check_samples(vector: &GoldenVector, samples: &[MetricSample]) -> Vec<GoldenFailure> {
    let mut failures = Vec::new();
    for entry in &vector.entries {
        let found = samples
            .iter()
            .find(|m| m.at(&entry.stage, entry.point, entry.sample, &entry.metric))
            .map(|m| m.value);
        let ok = match found {
            Some(v) => v >= entry.lo && v <= entry.hi, // NaN fails both
            None => false,
        };
        if !ok {
            failures.push(GoldenFailure {
                vector: vector.name.clone(),
                entry: entry.clone(),
                found,
            });
        }
    }
    failures
}

/// Panics with every violated entry if the report misses the vector.
pub fn assert_golden(vector: &GoldenVector, report: &FlowReport) {
    let failures = check_report(vector, report);
    if !failures.is_empty() {
        let lines: Vec<String> = failures.iter().map(GoldenFailure::to_string).collect();
        panic!(
            "{} golden violation(s):\n{}",
            failures.len(),
            lines.join("\n")
        );
    }
}

/// Builds a regen entry banding the observed value of `sample` with a
/// symmetric relative tolerance (plus a small absolute floor so
/// near-zero observations keep a usable band).
pub fn regen_entry(sample: &MetricSample, rel_tol: f64, abs_floor: f64) -> GoldenEntry {
    let half_width = (sample.value.abs() * rel_tol).max(abs_floor);
    GoldenEntry {
        stage: sample.stage.clone(),
        point: sample.point,
        sample: sample.sample,
        metric: sample.metric.clone(),
        lo: sample.value - half_width,
        hi: sample.value + half_width,
        note: format!("regen ±{:.0}%", rel_tol * 100.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(stage: &str, point: Option<usize>, metric: &str, value: f64) -> MetricSample {
        MetricSample {
            stage: stage.into(),
            point,
            sample: None,
            metric: metric.into(),
            value,
        }
    }

    fn vector(entries: Vec<GoldenEntry>) -> GoldenVector {
        GoldenVector {
            name: "unit".into(),
            description: "unit-test vector".into(),
            entries,
        }
    }

    fn entry(stage: &str, point: Option<usize>, metric: &str, lo: f64, hi: f64) -> GoldenEntry {
        GoldenEntry {
            stage: stage.into(),
            point,
            sample: None,
            metric: metric.into(),
            lo,
            hi,
            note: "unit".into(),
        }
    }

    #[test]
    fn in_band_passes_out_of_band_fails_with_provenance() {
        let samples = vec![sample("characterize", Some(1), "delta.ivco", 2.7)];
        let v = vector(vec![entry("characterize", Some(1), "delta.ivco", 0.1, 5.0)]);
        assert!(check_samples(&v, &samples).is_empty());

        let tight = vector(vec![entry("characterize", Some(1), "delta.ivco", 0.1, 1.0)]);
        let failures = check_samples(&tight, &samples);
        assert_eq!(failures.len(), 1);
        let msg = failures[0].to_string();
        assert!(msg.contains("stage characterize"), "{msg}");
        assert!(msg.contains("point 1"), "{msg}");
        assert!(msg.contains("delta.ivco"), "{msg}");
    }

    #[test]
    fn missing_metric_fails() {
        let v = vector(vec![entry("verify", None, "yield_value", 0.0, 1.0)]);
        let failures = check_samples(&v, &[]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].found.is_none());
        assert!(
            failures[0].to_string().contains("missing"),
            "{}",
            failures[0]
        );
    }

    #[test]
    fn nan_never_passes_a_band() {
        let samples = vec![sample("verify", None, "yield_value", f64::NAN)];
        let v = vector(vec![entry("verify", None, "yield_value", 0.0, 1.0)]);
        assert_eq!(check_samples(&v, &samples).len(), 1);
    }

    #[test]
    fn bands_are_inclusive() {
        let samples = vec![sample("verify", None, "yield_value", 1.0)];
        let v = vector(vec![entry("verify", None, "yield_value", 0.0, 1.0)]);
        assert!(check_samples(&v, &samples).is_empty());
    }

    #[test]
    fn regen_entry_bands_the_observation() {
        let s = sample("select", None, "kvco", 2.0e9);
        let e = regen_entry(&s, 0.25, 1e-12);
        assert!(e.lo <= 2.0e9 && 2.0e9 <= e.hi);
        assert!((e.hi - e.lo) > 0.9e9); // ±25 %
        let z = regen_entry(
            &sample("verify", None, "evaluation_failures", 0.0),
            0.25,
            0.5,
        );
        assert!(z.lo <= 0.0 && z.hi >= 0.0 && z.hi > 0.0);
    }

    #[test]
    fn vector_json_round_trips() {
        let v = vector(vec![entry(
            "system_opt",
            Some(0),
            "kvco_corner_margin",
            0.0,
            1e308,
        )]);
        let text = serde_json::to_string_pretty(&v).expect("serialises");
        let back: GoldenVector = serde_json::from_str(&text).expect("parses");
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].metric, "kvco_corner_margin");
        assert_eq!(back.entries[0].hi, 1e308);
    }
}
