//! Conformance harness for the hierarchical flow: differential,
//! metamorphic and golden-oracle testing (DESIGN.md §11).
//!
//! The workspace makes four bit-identity promises — serial ≡ pooled,
//! cache off ≡ exact-key cache, telemetry off ≡ on, fresh ≡
//! checkpoint-resumed — and reproduces a paper whose headline numbers
//! (VCO objective ranges, ∆% Monte-Carlo spreads, PLL corner
//! behaviour) should be machine-checked, not eyeballed. This crate is
//! the substrate for both:
//!
//! * [`diff`] — a [`diff::DiffRunner`] executing one [`hierflow::flow::FlowConfig`]
//!   under paired modes and reporting the first differing
//!   stage/point/sample with ULP distance;
//! * [`flatten`] — the canonical stage-ordered scalar view of a
//!   [`hierflow::flow::FlowReport`] both the differ and the golden
//!   checker address;
//! * [`golden`] — tolerance-banded JSON vectors under
//!   `crates/conformance/golden/`, with a `--features regen`
//!   re-recording path;
//! * [`ulp`] — exact ULP distance between doubles.
//!
//! The metamorphic invariant suite (knot reproduction, extrapolation
//! refusal, query-order and relabelling invariance, duplicated
//! objectives, warm-vs-cold Newton) lives in this crate's
//! `tests/metamorphic.rs`; the paired-mode and golden suites in
//! `tests/differential.rs` and `tests/golden.rs`. Run with
//! `cargo test -p conformance`.

pub mod diff;
pub mod flatten;
pub mod golden;
pub mod ulp;

pub use diff::{
    compare_reports, compare_semantic_values, micro_flow_config, report_output_dir,
    seeded_stage1_front, DiffRunner, Divergence, DivergenceReport, PairMode, PairOutcome,
};
pub use flatten::{flatten_report, MetricSample};
pub use golden::{
    assert_golden, check_report, check_samples, golden_dir, load_vector, regen_entry, save_vector,
    GoldenEntry, GoldenFailure, GoldenVector,
};
pub use ulp::{bits_identical, ulp_distance};
