//! The differential runner: one configuration, paired execution modes,
//! bit-identical results — or a structured divergence report.
//!
//! Each of the repo's equivalence promises (serial ≡ pooled, cached ≡
//! uncached, traced ≡ untraced, fresh ≡ resumed) is exercised by
//! running the *same* [`FlowConfig`] under both modes and flattening
//! the two [`FlowReport`]s through [`crate::flatten`]. Any difference
//! is reported with its stage, point, sample and ULP distance, and the
//! report is serialisable so CI can archive it as an artifact.

use std::path::{Path, PathBuf};

use hierflow::checkpoint::{
    RunDir, Stage1Artifact, MANIFEST_FILE, STAGE1_FRONT, STAGE2_CHARACTERIZED, STAGE4_SYSTEM,
};
use hierflow::flow::{CacheConfig, FlowConfig, FlowReport, HierarchicalFlow, TelemetryConfig};
use hierflow::vco_problem::VcoSizingProblem;
use hierflow::{CancelToken, FlowError, VcoTestbench};
use moea::problem::{Evaluation, Individual};
use netlist::topology::VcoSizing;
use serde::{Deserialize, Serialize};

use crate::flatten::{flatten_report, MetricSample};
use crate::ulp::{bits_identical, ulp_distance};

/// How many individual divergences a report keeps; the total count is
/// always recorded.
const MAX_RECORDED_DIVERGENCES: usize = 32;

/// One differing scalar between two paired runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Divergence {
    /// Flow stage of the diverging scalar.
    pub stage: String,
    /// Pareto-point index, when applicable.
    pub point: Option<usize>,
    /// Monte-Carlo sample index, when applicable.
    pub sample: Option<usize>,
    /// Dotted field path of the scalar.
    pub metric: String,
    /// Value under the left (baseline) mode.
    pub left: f64,
    /// Value under the right (variant) mode.
    pub right: f64,
    /// ULP distance between the two values (`None` when either is NaN).
    pub ulps: Option<u64>,
    /// Set when the two reports disagree on *shape* (different point or
    /// sample counts) rather than on a value — comparison stops there.
    pub structural: bool,
}

/// The outcome of comparing two paired runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DivergenceReport {
    /// Which pair produced this report, e.g. `serial-vs-pooled-4`.
    pub pair: String,
    /// Label of the baseline mode.
    pub left_label: String,
    /// Label of the variant mode.
    pub right_label: String,
    /// How many scalars were compared.
    pub metrics_compared: usize,
    /// Total number of diverging scalars.
    pub total_divergences: usize,
    /// The first [`MAX_RECORDED_DIVERGENCES`] divergences, in
    /// execution-stage order — element 0 is the first differing
    /// stage/point/sample of the whole flow.
    pub divergences: Vec<Divergence>,
}

impl DivergenceReport {
    /// Whether the two runs were bit-identical on every compared
    /// scalar.
    pub fn identical(&self) -> bool {
        self.total_divergences == 0
    }

    /// The first divergence in execution order, if any.
    pub fn first(&self) -> Option<&Divergence> {
        self.divergences.first()
    }

    /// One-paragraph human summary, leading with the first divergence.
    pub fn summary(&self) -> String {
        match self.first() {
            None => format!(
                "{}: {} vs {}: bit-identical across {} scalars",
                self.pair, self.left_label, self.right_label, self.metrics_compared
            ),
            Some(d) => {
                let mut loc = d.stage.clone();
                if let Some(p) = d.point {
                    loc.push_str(&format!("[point {p}]"));
                }
                if let Some(s) = d.sample {
                    loc.push_str(&format!("[sample {s}]"));
                }
                let ulps = match d.ulps {
                    Some(u) => format!("{u} ULPs apart"),
                    None => "NaN involved".to_string(),
                };
                format!(
                    "{}: {} vs {}: {} of {} scalars diverge; first at {}.{}: {:e} vs {:e} ({}{})",
                    self.pair,
                    self.left_label,
                    self.right_label,
                    self.total_divergences,
                    self.metrics_compared,
                    loc,
                    d.metric,
                    d.left,
                    d.right,
                    ulps,
                    if d.structural { ", structural" } else { "" },
                )
            }
        }
    }

    /// Writes the report as pretty JSON into `dir` (created if
    /// missing), named after the pair. Returns the file path.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let name: String = self
            .pair
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("{name}.divergence.json"));
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(&path, json)?;
        Ok(path)
    }
}

/// Where divergence reports land: `$CONFORMANCE_REPORT_DIR` when set
/// (CI points this at an artifact-uploaded directory), otherwise
/// `target/conformance-reports` under the workspace.
pub fn report_output_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CONFORMANCE_REPORT_DIR") {
        if !dir.trim().is_empty() {
            return PathBuf::from(dir);
        }
    }
    // CARGO_MANIFEST_DIR = crates/conformance → workspace target/.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/conformance-reports")
}

/// Compares two parsed JSON trees leaf by leaf — the generic cousin of
/// [`compare_reports`] for artifacts that are JSON on disk rather than
/// in-memory [`FlowReport`]s (the service's `report_semantic.json`
/// differential pairs use this: file-drop run vs TCP-submit run).
///
/// Numeric leaves are compared *bitwise* (ULP distance reported on
/// mismatch); strings/booleans/nulls by equality; arrays index-wise
/// with a length mismatch recorded as structural; objects key-wise
/// with a key-set mismatch recorded as structural. Structural
/// mismatches stop recursion below that node but comparison continues
/// elsewhere, so one missing field does not mask value divergences in
/// its siblings.
pub fn compare_semantic_values(
    pair: &str,
    left_label: &str,
    right_label: &str,
    left: &serde::Value,
    right: &serde::Value,
) -> DivergenceReport {
    struct Walk {
        compared: usize,
        total: usize,
        divergences: Vec<Divergence>,
    }
    impl Walk {
        fn diverge(&mut self, path: &str, left: f64, right: f64, structural: bool) {
            self.total += 1;
            if self.divergences.len() < MAX_RECORDED_DIVERGENCES {
                self.divergences.push(Divergence {
                    stage: "semantic".to_string(),
                    point: None,
                    sample: None,
                    metric: path.to_string(),
                    left,
                    right,
                    ulps: ulp_distance(left, right),
                    structural,
                });
            }
        }
        fn walk(&mut self, path: &str, l: &serde::Value, r: &serde::Value) {
            use serde::Value;
            match (l, r) {
                (Value::Object(a), Value::Object(b)) => {
                    let keys_a: Vec<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
                    let keys_b: Vec<&str> = b.iter().map(|(k, _)| k.as_str()).collect();
                    if keys_a != keys_b {
                        self.diverge(&format!("{path}.<keys>"), f64::NAN, f64::NAN, true);
                        return;
                    }
                    for ((k, va), (_, vb)) in a.iter().zip(b.iter()) {
                        let child = if path.is_empty() {
                            k.clone()
                        } else {
                            format!("{path}.{k}")
                        };
                        self.walk(&child, va, vb);
                    }
                }
                (Value::Array(a), Value::Array(b)) => {
                    if a.len() != b.len() {
                        self.diverge(
                            &format!("{path}.<len>"),
                            a.len() as f64,
                            b.len() as f64,
                            true,
                        );
                        return;
                    }
                    for (i, (va, vb)) in a.iter().zip(b.iter()).enumerate() {
                        self.walk(&format!("{path}[{i}]"), va, vb);
                    }
                }
                _ => match (l.as_f64(), r.as_f64()) {
                    (Some(x), Some(y)) => {
                        self.compared += 1;
                        if !bits_identical(x, y) {
                            self.diverge(path, x, y, false);
                        }
                    }
                    _ => {
                        self.compared += 1;
                        if l != r {
                            // Non-numeric or cross-type mismatch: the
                            // values have no meaningful ULP distance.
                            self.diverge(path, f64::NAN, f64::NAN, true);
                        }
                    }
                },
            }
        }
    }
    let mut walk = Walk {
        compared: 0,
        total: 0,
        divergences: Vec::new(),
    };
    walk.walk("", left, right);
    DivergenceReport {
        pair: pair.to_string(),
        left_label: left_label.to_string(),
        right_label: right_label.to_string(),
        metrics_compared: walk.compared,
        total_divergences: walk.total,
        divergences: walk.divergences,
    }
}

/// Compares two flattened reports scalar by scalar.
pub fn compare_reports(
    pair: &str,
    left_label: &str,
    right_label: &str,
    left: &FlowReport,
    right: &FlowReport,
) -> DivergenceReport {
    let a = flatten_report(left);
    let b = flatten_report(right);
    let mut divergences = Vec::new();
    let mut total = 0usize;
    let compared = a.len().min(b.len());

    for (ma, mb) in a.iter().zip(b.iter()) {
        if ma.stage != mb.stage
            || ma.point != mb.point
            || ma.sample != mb.sample
            || ma.metric != mb.metric
        {
            // Shape drift: after the first structural mismatch the
            // element-wise pairing is meaningless, so record it and
            // stop rather than report a cascade of false diffs.
            total += 1;
            divergences.push(structural_divergence(ma, mb));
            break;
        }
        if !bits_identical(ma.value, mb.value) {
            total += 1;
            if divergences.len() < MAX_RECORDED_DIVERGENCES {
                divergences.push(Divergence {
                    stage: ma.stage.clone(),
                    point: ma.point,
                    sample: ma.sample,
                    metric: ma.metric.clone(),
                    left: ma.value,
                    right: mb.value,
                    ulps: ulp_distance(ma.value, mb.value),
                    structural: false,
                });
            }
        }
    }
    if a.len() != b.len() && divergences.iter().all(|d| !d.structural) {
        // Same prefix, different tails (e.g. one report has extra MC
        // samples): surface the length mismatch explicitly.
        total += 1;
        divergences.push(Divergence {
            stage: "report".to_string(),
            point: None,
            sample: None,
            metric: "flattened.len".to_string(),
            left: a.len() as f64,
            right: b.len() as f64,
            ulps: None,
            structural: true,
        });
    }

    DivergenceReport {
        pair: pair.to_string(),
        left_label: left_label.to_string(),
        right_label: right_label.to_string(),
        metrics_compared: compared,
        total_divergences: total,
        divergences,
    }
}

fn structural_divergence(a: &MetricSample, b: &MetricSample) -> Divergence {
    Divergence {
        stage: a.stage.clone(),
        point: a.point,
        sample: a.sample,
        metric: format!("{} (vs {})", a.path(), b.path()),
        left: a.value,
        right: b.value,
        ulps: None,
        structural: true,
    }
}

/// A paired execution mode for [`DiffRunner::run_pair`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairMode {
    /// Serial (all pools at 1 thread) vs pooled at `n` threads.
    Pooled(usize),
    /// Memo cache off vs exact-key cache on (memory + disk tier).
    Cache,
    /// Telemetry off vs span tracing + metrics on.
    Telemetry,
}

impl PairMode {
    fn pair_name(self) -> String {
        match self {
            PairMode::Pooled(n) => format!("serial-vs-pooled-{n}"),
            PairMode::Cache => "uncached-vs-cached".to_string(),
            PairMode::Telemetry => "untraced-vs-traced".to_string(),
        }
    }

    fn labels(self) -> (String, String) {
        match self {
            PairMode::Pooled(n) => ("serial".to_string(), format!("pooled×{n}")),
            PairMode::Cache => ("cache-off".to_string(), "cache-exact-key".to_string()),
            PairMode::Telemetry => ("telemetry-off".to_string(), "telemetry-on".to_string()),
        }
    }
}

/// The outcome of one differential pair: both reports plus their
/// comparison.
pub struct PairOutcome {
    /// The comparison (pair name, labels, divergences).
    pub report: DivergenceReport,
    /// The baseline run's full report (reusable as a golden subject).
    pub baseline: FlowReport,
}

impl PairOutcome {
    /// Panics with the summary if the pair diverged, writing the JSON
    /// report into [`report_output_dir`] first so CI archives it.
    pub fn assert_identical(&self) {
        if !self.report.identical() {
            let dir = report_output_dir();
            let written = self
                .report
                .write_json(&dir)
                .map(|p| p.display().to_string())
                .unwrap_or_else(|e| format!("unwritable ({e})"));
            panic!("{} — report: {written}", self.report.summary());
        }
    }
}

/// A conformance-scale flow configuration: every stage runs for real,
/// but with budgets tuned so a differential *pair* (two full runs)
/// stays affordable in debug builds. The spec window is loosened the
/// same way the e2e tests loosen it — the subject here is equivalence,
/// not front quality.
pub fn micro_flow_config() -> FlowConfig {
    let mut cfg = FlowConfig::quick();
    cfg.circuit_ga.population = 8;
    cfg.circuit_ga.generations = 2;
    cfg.char_mc.samples = 3;
    cfg.max_char_points = 2;
    cfg.system_ga.population = 16;
    cfg.system_ga.generations = 6;
    cfg.verify_mc.samples = 3;
    cfg.spec.lock_time_max = 5e-6;
    cfg.spec.current_max = 50e-3;
    // A differential pair pays for every transistor-level sim twice,
    // so the oscillator measurement is trimmed hard: fewer warm-up and
    // measured periods, a coarser fine pass, and a narrower coarse
    // search window. Equivalence (the subject under test) is
    // indifferent to measurement fidelity.
    cfg.testbench.osc.warmup_periods = 2;
    cfg.testbench.osc.measure_periods = 5;
    cfg.testbench.osc.points_per_period = 16;
    cfg.testbench.osc.f_min_expected = 100e6;
    cfg
}

/// Runs one [`FlowConfig`] under paired modes and compares the
/// results.
///
/// All runs start from the *same* seeded stage-1 front (a handful of
/// real testbench evaluations of a nominal-family sweep, paid once in
/// the constructor), so a pair costs two stage-2→5 passes, not two GA
/// campaigns. GA pool equivalence is covered separately by the cheap
/// synthetic-problem differential test.
pub struct DiffRunner {
    config: FlowConfig,
    stage1: Stage1Artifact,
    scratch: PathBuf,
}

impl DiffRunner {
    /// A runner over [`micro_flow_config`] with a 3-point seeded
    /// front. `tag` isolates this runner's scratch directories.
    pub fn new(tag: &str) -> Self {
        Self::with_config(tag, micro_flow_config(), 3)
    }

    /// A runner over an explicit configuration with an `n`-point
    /// seeded front.
    pub fn with_config(tag: &str, config: FlowConfig, n: usize) -> Self {
        let stage1 = seeded_stage1_front(&config.testbench, n);
        let scratch =
            std::env::temp_dir().join(format!("conformance_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        DiffRunner {
            config,
            stage1,
            scratch,
        }
    }

    /// The configuration every pair runs under.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Creates a fresh run directory seeded with the shared stage-1
    /// front, and returns its path.
    fn prepare_dir(&self, label: &str) -> PathBuf {
        let dir = self.scratch.join(label);
        let _ = std::fs::remove_dir_all(&dir);
        let run = RunDir::create(&dir).expect("conformance run dir");
        run.save(STAGE1_FRONT, &self.stage1)
            .expect("seed stage-1 artifact");
        dir
    }

    /// Runs one mode of a pair to completion (with checkpoints, so the
    /// cache's disk tier and resume machinery are exercised for real).
    pub fn run_one(&self, label: &str, config: FlowConfig) -> Result<FlowReport, FlowError> {
        let dir = self.prepare_dir(label);
        HierarchicalFlow::new(config).run_with_checkpoints(&dir)
    }

    /// Runs a differential pair and returns both the comparison and
    /// the baseline report.
    pub fn run_pair(&self, mode: PairMode) -> Result<PairOutcome, FlowError> {
        let (left_label, right_label) = mode.labels();
        let pair = mode.pair_name();
        let (left_cfg, right_cfg) = self.pair_configs(mode);
        let left = self.run_one(&format!("{pair}_left"), left_cfg)?;
        let right = self.run_one(&format!("{pair}_right"), right_cfg)?;
        let report = compare_reports(&pair, &left_label, &right_label, &left, &right);
        Ok(PairOutcome {
            report,
            baseline: left,
        })
    }

    fn pair_configs(&self, mode: PairMode) -> (FlowConfig, FlowConfig) {
        let mut left = self.config.clone();
        let mut right = self.config.clone();
        match mode {
            PairMode::Pooled(n) => {
                set_threads(&mut left, 1);
                set_threads(&mut right, n.max(2));
            }
            PairMode::Cache => {
                left.cache.enabled = false;
                right.cache = CacheConfig::enabled();
            }
            PairMode::Telemetry => {
                left.telemetry.enabled = false;
                right.telemetry = TelemetryConfig::enabled();
            }
        }
        (left, right)
    }

    /// The fresh-vs-resumed axis: one fresh checkpointed reference run,
    /// then one resumed run per stage boundary, each starting from a
    /// directory holding exactly the artifacts that existed at that
    /// boundary. Returns one outcome per boundary.
    pub fn run_resume_pairs(&self) -> Result<Vec<PairOutcome>, FlowError> {
        let ref_dir = self.prepare_dir("resume_reference");
        let reference =
            HierarchicalFlow::new(self.config.clone()).run_with_checkpoints(&ref_dir)?;

        // Stage 3 (model build) is folded into the system-opt stage's
        // inputs and stage 5's artifact is terminal, so the resumable
        // boundaries are after stages 1, 2 and 4.
        let boundaries: [(&str, &[&str]); 3] = [
            ("after-stage1", &[MANIFEST_FILE, STAGE1_FRONT]),
            (
                "after-stage2",
                &[MANIFEST_FILE, STAGE1_FRONT, STAGE2_CHARACTERIZED],
            ),
            (
                "after-stage4",
                &[
                    MANIFEST_FILE,
                    STAGE1_FRONT,
                    STAGE2_CHARACTERIZED,
                    STAGE4_SYSTEM,
                ],
            ),
        ];

        let mut outcomes = Vec::new();
        for (name, files) in boundaries {
            let dir = self.scratch.join(format!("resume_{name}"));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("resume boundary dir");
            for file in files {
                std::fs::copy(ref_dir.join(file), dir.join(file))
                    .unwrap_or_else(|e| panic!("copy {file} for {name}: {e}"));
            }
            let resumed = HierarchicalFlow::new(self.config.clone()).resume(&dir)?;
            let report = compare_reports(
                &format!("fresh-vs-resumed-{name}"),
                "fresh",
                &format!("resumed-{name}"),
                &reference,
                &resumed,
            );
            outcomes.push(PairOutcome {
                report,
                baseline: reference.clone(),
            });
        }
        Ok(outcomes)
    }

    /// The kill-resume axis (the service crate's crash model,
    /// in-process): one uninterrupted reference run, then a victim run
    /// whose cancel token fires after `polls` task polls — landing
    /// *mid-stage*, not at a clean boundary — resumed over the same
    /// directory by a second flow instance. The resumed report must be
    /// bit-identical to the reference.
    pub fn run_kill_resume_pair(&self, polls: u64) -> Result<PairOutcome, FlowError> {
        let reference = self.run_one("kill_reference", self.config.clone())?;
        let dir = self.prepare_dir("kill_victim");
        let interrupted = HierarchicalFlow::new(self.config.clone())
            .with_cancel_token(CancelToken::cancel_after(polls))
            .run_with_checkpoints(&dir);
        match interrupted {
            // The interesting case: the token fired mid-stage and the
            // flow unwound through a resumable interruption.
            Err(e) if e.is_resumable_interruption() => {}
            Err(e) => return Err(e),
            // Poll budget outlived the run; the resume below degrades
            // to a pure checkpoint replay, still worth comparing.
            Ok(_) => {}
        }
        let resumed = HierarchicalFlow::new(self.config.clone()).resume(&dir)?;
        let report = compare_reports(
            &format!("fresh-vs-killed-at-{polls}-polls"),
            "fresh",
            "killed+resumed",
            &reference,
            &resumed,
        );
        Ok(PairOutcome {
            report,
            baseline: reference,
        })
    }

    /// Removes this runner's scratch directories.
    pub fn cleanup(&self) {
        let _ = std::fs::remove_dir_all(&self.scratch);
    }
}

fn set_threads(cfg: &mut FlowConfig, n: usize) {
    cfg.circuit_ga.eval_threads = n;
    cfg.char_mc.threads = n;
    cfg.system_ga.eval_threads = n;
    cfg.verify_mc.threads = n;
}

/// A small Pareto front built from real testbench evaluations of a
/// nominal-family sizing sweep — the same seeding the e2e tests use,
/// packaged as a stage-1 checkpoint artifact.
pub fn seeded_stage1_front(testbench: &VcoTestbench, n: usize) -> Stage1Artifact {
    let front: Vec<Individual> = (0..n)
        .map(|i| {
            let mut sizing = VcoSizing::nominal();
            sizing.wsn *= 1.0 + 0.25 * i as f64;
            sizing.wsp *= 1.0 + 0.25 * i as f64;
            let perf = testbench
                .evaluate_sizing(&sizing)
                .expect("nominal-family sizing evaluates");
            Individual::new(
                sizing.to_array().to_vec(),
                Evaluation::feasible(VcoSizingProblem::objectives_of(&perf)),
            )
        })
        .collect();
    Stage1Artifact {
        front,
        evaluations: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_summary_names_stage_point_and_sample() {
        let report = DivergenceReport {
            pair: "demo".into(),
            left_label: "a".into(),
            right_label: "b".into(),
            metrics_compared: 10,
            total_divergences: 1,
            divergences: vec![Divergence {
                stage: "characterize".into(),
                point: Some(2),
                sample: Some(3),
                metric: "vco.kvco".into(),
                left: 1.0,
                right: 1.5,
                ulps: ulp_distance(1.0, 1.5),
                structural: false,
            }],
        };
        let s = report.summary();
        assert!(s.contains("characterize[point 2][sample 3]"), "{s}");
        assert!(s.contains("ULPs"), "{s}");
        assert!(!report.identical());
    }

    #[test]
    fn semantic_value_diff_spots_numeric_and_structural_drift() {
        let left: serde::Value = serde_json::from_str(
            r#"{"verification": {"fom": 1.25, "pass": true},
                "points": [{"f": 1.0e9}, {"f": 2.0e9}],
                "label": "vco"}"#,
        )
        .unwrap();
        // Identical tree → identical report.
        let same = compare_semantic_values("pair", "l", "r", &left, &left);
        assert!(same.identical(), "{}", same.summary());
        assert!(same.metrics_compared >= 5);

        // One leaf nudged by 1 ULP → one non-structural divergence with
        // a dotted path and a ULP count.
        let right: serde::Value = serde_json::from_str(
            r#"{"verification": {"fom": 1.2500000000000002, "pass": true},
                "points": [{"f": 1.0e9}, {"f": 2.0e9}],
                "label": "vco"}"#,
        )
        .unwrap();
        let drift = compare_semantic_values("pair", "l", "r", &left, &right);
        assert_eq!(drift.total_divergences, 1);
        let d = drift.first().unwrap();
        assert_eq!(d.metric, "verification.fom");
        assert!(!d.structural);
        assert_eq!(d.ulps, Some(1));

        // Dropped array element → structural at the length, siblings
        // still compared.
        let short: serde::Value = serde_json::from_str(
            r#"{"verification": {"fom": 1.25, "pass": true},
                "points": [{"f": 1.0e9}],
                "label": "vco"}"#,
        )
        .unwrap();
        let shape = compare_semantic_values("pair", "l", "r", &left, &short);
        assert_eq!(shape.total_divergences, 1);
        let d = shape.first().unwrap();
        assert!(d.structural);
        assert_eq!(d.metric, "points.<len>");

        // String mismatch is structural (no ULP distance to report).
        let relabel: serde::Value = serde_json::from_str(
            r#"{"verification": {"fom": 1.25, "pass": true},
                "points": [{"f": 1.0e9}, {"f": 2.0e9}],
                "label": "lna"}"#,
        )
        .unwrap();
        let lab = compare_semantic_values("pair", "l", "r", &left, &relabel);
        assert_eq!(lab.total_divergences, 1);
        assert!(lab.first().unwrap().structural);
        assert_eq!(lab.first().unwrap().metric, "label");
    }

    #[test]
    fn report_json_round_trips() {
        let report = DivergenceReport {
            pair: "serial-vs-pooled-4".into(),
            left_label: "serial".into(),
            right_label: "pooled×4".into(),
            metrics_compared: 5,
            total_divergences: 0,
            divergences: vec![],
        };
        let dir = std::env::temp_dir().join(format!("conf_report_{}", std::process::id()));
        let path = report.write_json(&dir).expect("report writes");
        let text = std::fs::read_to_string(&path).expect("report readable");
        let back: DivergenceReport = serde_json::from_str(&text).expect("report parses");
        assert!(back.identical());
        assert_eq!(back.pair, report.pair);
        std::fs::remove_dir_all(&dir).ok();
    }
}
