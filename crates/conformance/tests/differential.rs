//! Differential conformance: the same configuration under paired
//! execution modes must produce bit-identical results.
//!
//! Each pair runs the full stage-2→5 flow twice from an identical
//! seeded stage-1 front (see [`conformance::DiffRunner`]); the GA pool
//! itself is covered by a cheap synthetic-problem pair so no test pays
//! for two transistor-level GA campaigns. A diverging pair panics with
//! the first differing stage/point/sample and writes a JSON divergence
//! report into `target/conformance-reports/` (or
//! `$CONFORMANCE_REPORT_DIR`) for CI to archive.

use conformance::{compare_reports, DiffRunner, PairMode};
use moea::problem::{Evaluation, Problem};
use moea::{run_nsga2, Nsga2Config};

/// Serial pools and N-thread pools schedule work differently but must
/// land on the same bits: samples are keyed by index, sample `i`
/// always draws from RNG seed `seed + i`.
#[test]
fn serial_vs_pooled_flow_is_bit_identical() {
    let runner = DiffRunner::new("pooled");
    let threads = exec::threads_from_env(4).max(2);
    let outcome = runner
        .run_pair(PairMode::Pooled(threads))
        .expect("both modes complete");
    outcome.assert_identical();
    runner.cleanup();
}

/// The exact-key memo cache is a speed knob, never a result knob —
/// including its disk tier, exercised here because both runs carry
/// checkpoints.
#[test]
fn cached_vs_uncached_flow_is_bit_identical() {
    let runner = DiffRunner::new("cache");
    let outcome = runner
        .run_pair(PairMode::Cache)
        .expect("both modes complete");
    outcome.assert_identical();

    // The comparator itself must not be vacuous: perturb one scalar of
    // the baseline by a single ULP and the differ must name its exact
    // stage and point.
    let mut perturbed = outcome.baseline.clone();
    let v = &mut perturbed.front.points[0].perf.kvco;
    *v = f64::from_bits(v.to_bits() + 1);
    let report = compare_reports(
        "injected",
        "baseline",
        "perturbed",
        &outcome.baseline,
        &perturbed,
    );
    assert_eq!(report.total_divergences, 1, "{}", report.summary());
    let d = report.first().expect("one divergence");
    assert_eq!(d.stage, "characterize");
    assert_eq!(d.point, Some(0));
    assert_eq!(d.metric, "perf.kvco");
    assert_eq!(d.ulps, Some(1));

    runner.cleanup();
}

/// Telemetry is pure observation: span tracing and the metrics
/// registry must not perturb a single bit of the results.
#[test]
fn traced_vs_untraced_flow_is_bit_identical() {
    let runner = DiffRunner::new("telemetry");
    let outcome = runner
        .run_pair(PairMode::Telemetry)
        .expect("both modes complete");
    outcome.assert_identical();
    runner.cleanup();
}

/// Resuming from a checkpoint directory holding exactly the artifacts
/// of any stage boundary must complete to the same bits as the
/// uninterrupted reference run.
#[test]
fn resumed_runs_at_every_boundary_match_fresh_run() {
    let runner = DiffRunner::new("resume");
    let outcomes = runner.run_resume_pairs().expect("all boundaries complete");
    assert_eq!(outcomes.len(), 3, "three resumable stage boundaries");
    for outcome in &outcomes {
        outcome.assert_identical();
    }
    runner.cleanup();
}

/// The service-layer crash model, in-process: a run cancelled
/// mid-stage (not at a clean boundary) and resumed over the same
/// checkpoint directory must converge on the reference bits. This is
/// the invariant the `service` crate's kill-restart e2e asserts across
/// real processes.
#[test]
fn killed_mid_stage_and_resumed_matches_fresh_run() {
    let runner = DiffRunner::new("kill_resume");
    // 40 polls lands inside stage 2 for the micro budget: past the
    // seeded stage-1 front, before characterisation finishes.
    let outcome = runner
        .run_kill_resume_pair(40)
        .expect("victim resumes to completion");
    outcome.assert_identical();
    runner.cleanup();
}

/// A cheap 2-objective problem with enough arithmetic to expose any
/// order-dependent reduction in the evaluator pool.
struct SyntheticBowl;

impl Problem for SyntheticBowl {
    fn num_vars(&self) -> usize {
        4
    }
    fn bounds(&self, _i: usize) -> (f64, f64) {
        (-2.0, 2.0)
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let f1 = x.iter().map(|v| v * v).sum::<f64>();
        let f2 = x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum::<f64>();
        Evaluation::feasible(vec![f1, f2])
    }
}

/// The NSGA-II evaluator pool at 1 vs N threads: identical final
/// populations, bit for bit — decision vectors and objectives alike.
/// This covers the circuit-level GA axis the flow pairs skip by
/// starting from a seeded stage-1 front.
#[test]
fn nsga2_serial_vs_pooled_is_bit_identical() {
    let mut serial = Nsga2Config {
        population: 24,
        generations: 12,
        seed: 77,
        eval_threads: 1,
        ..Default::default()
    };
    let mut pooled = serial;
    pooled.eval_threads = exec::threads_from_env(4).max(2);

    // Larger budgets in one matrix variant would still be cheap; keep
    // the two configs identical except the thread count.
    serial.axial_seeds = true;
    pooled.axial_seeds = true;

    let a = run_nsga2(&SyntheticBowl, &serial);
    let b = run_nsga2(&SyntheticBowl, &pooled);
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.population.len(), b.population.len());
    for (i, (ia, ib)) in a.population.iter().zip(&b.population).enumerate() {
        assert_eq!(ia.x, ib.x, "decision vector of individual {i}");
        assert_eq!(ia.objectives, ib.objectives, "objectives of individual {i}");
        assert_eq!(
            ia.constraints, ib.constraints,
            "constraints of individual {i}"
        );
    }
}

/// Opt-in diagnostic: prints per-stage wall-clock of one conformance
/// flow run, for tuning the micro budgets. Run with
/// `cargo test -p conformance --test differential -- --ignored --nocapture stage_timing`.
#[test]
#[ignore = "diagnostic probe, not a conformance check"]
fn stage_timing_probe() {
    let runner = DiffRunner::new("timing");
    let report = runner
        .run_one("timing", runner.config().clone())
        .expect("flow completes");
    for s in &report.stage_wall {
        eprintln!("stage {}: {} ms", s.stage, s.wall_us / 1000);
    }
    runner.cleanup();
}
